/root/repo/target/debug/deps/mintopo-f2624bc9b1596c66.d: crates/mintopo/src/lib.rs crates/mintopo/src/combining.rs crates/mintopo/src/irregular.rs crates/mintopo/src/karytree.rs crates/mintopo/src/lca.rs crates/mintopo/src/multiport.rs crates/mintopo/src/reach.rs crates/mintopo/src/route.rs crates/mintopo/src/topology.rs crates/mintopo/src/unimin.rs

/root/repo/target/debug/deps/mintopo-f2624bc9b1596c66: crates/mintopo/src/lib.rs crates/mintopo/src/combining.rs crates/mintopo/src/irregular.rs crates/mintopo/src/karytree.rs crates/mintopo/src/lca.rs crates/mintopo/src/multiport.rs crates/mintopo/src/reach.rs crates/mintopo/src/route.rs crates/mintopo/src/topology.rs crates/mintopo/src/unimin.rs

crates/mintopo/src/lib.rs:
crates/mintopo/src/combining.rs:
crates/mintopo/src/irregular.rs:
crates/mintopo/src/karytree.rs:
crates/mintopo/src/lca.rs:
crates/mintopo/src/multiport.rs:
crates/mintopo/src/reach.rs:
crates/mintopo/src/route.rs:
crates/mintopo/src/topology.rs:
crates/mintopo/src/unimin.rs:
