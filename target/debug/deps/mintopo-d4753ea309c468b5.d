/root/repo/target/debug/deps/mintopo-d4753ea309c468b5.d: crates/mintopo/src/lib.rs crates/mintopo/src/combining.rs crates/mintopo/src/irregular.rs crates/mintopo/src/karytree.rs crates/mintopo/src/lca.rs crates/mintopo/src/multiport.rs crates/mintopo/src/reach.rs crates/mintopo/src/route.rs crates/mintopo/src/topology.rs crates/mintopo/src/unimin.rs Cargo.toml

/root/repo/target/debug/deps/libmintopo-d4753ea309c468b5.rmeta: crates/mintopo/src/lib.rs crates/mintopo/src/combining.rs crates/mintopo/src/irregular.rs crates/mintopo/src/karytree.rs crates/mintopo/src/lca.rs crates/mintopo/src/multiport.rs crates/mintopo/src/reach.rs crates/mintopo/src/route.rs crates/mintopo/src/topology.rs crates/mintopo/src/unimin.rs Cargo.toml

crates/mintopo/src/lib.rs:
crates/mintopo/src/combining.rs:
crates/mintopo/src/irregular.rs:
crates/mintopo/src/karytree.rs:
crates/mintopo/src/lca.rs:
crates/mintopo/src/multiport.rs:
crates/mintopo/src/reach.rs:
crates/mintopo/src/route.rs:
crates/mintopo/src/topology.rs:
crates/mintopo/src/unimin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
