/root/repo/target/debug/deps/properties-db044f6ef2bdbc25.d: tests/properties.rs

/root/repo/target/debug/deps/properties-db044f6ef2bdbc25: tests/properties.rs

tests/properties.rs:
