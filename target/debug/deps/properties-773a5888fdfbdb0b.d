/root/repo/target/debug/deps/properties-773a5888fdfbdb0b.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-773a5888fdfbdb0b.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
