/root/repo/target/debug/deps/proptests-1be0ec8b2544ba02.d: crates/mintopo/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1be0ec8b2544ba02: crates/mintopo/tests/proptests.rs

crates/mintopo/tests/proptests.rs:
