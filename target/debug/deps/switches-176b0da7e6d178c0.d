/root/repo/target/debug/deps/switches-176b0da7e6d178c0.d: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs Cargo.toml

/root/repo/target/debug/deps/libswitches-176b0da7e6d178c0.rmeta: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs Cargo.toml

crates/switches/src/lib.rs:
crates/switches/src/central.rs:
crates/switches/src/config.rs:
crates/switches/src/decode.rs:
crates/switches/src/input_buffered.rs:
crates/switches/src/stats.rs:
crates/switches/src/testutil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
