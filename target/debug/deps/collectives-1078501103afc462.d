/root/repo/target/debug/deps/collectives-1078501103afc462.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

/root/repo/target/debug/deps/libcollectives-1078501103afc462.rlib: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

/root/repo/target/debug/deps/libcollectives-1078501103afc462.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/combining.rs:
crates/collectives/src/host.rs:
crates/collectives/src/recovery.rs:
crates/collectives/src/reduce.rs:
crates/collectives/src/swmcast.rs:
crates/collectives/src/traffic.rs:
crates/collectives/src/umin.rs:
