/root/repo/target/debug/deps/mdw_bench-797f0cda8bfe91a6.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmdw_bench-797f0cda8bfe91a6.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
