/root/repo/target/debug/deps/netsim-743bc63b7ec3f419.d: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libnetsim-743bc63b7ec3f419.rmeta: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/destset.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/flit.rs:
crates/netsim/src/header.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/message.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
