/root/repo/target/debug/deps/proptests-a4b73dfef9073ba9.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a4b73dfef9073ba9: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
