/root/repo/target/debug/deps/mdworm_repro-bb9c9598952e784d.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmdworm_repro-bb9c9598952e784d.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
