/root/repo/target/debug/deps/mdw_bench-dcaabf1b437613a3.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmdw_bench-dcaabf1b437613a3.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libmdw_bench-dcaabf1b437613a3.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
