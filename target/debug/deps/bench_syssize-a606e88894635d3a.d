/root/repo/target/debug/deps/bench_syssize-a606e88894635d3a.d: crates/bench/benches/bench_syssize.rs Cargo.toml

/root/repo/target/debug/deps/libbench_syssize-a606e88894635d3a.rmeta: crates/bench/benches/bench_syssize.rs Cargo.toml

crates/bench/benches/bench_syssize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
