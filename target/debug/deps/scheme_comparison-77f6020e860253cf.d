/root/repo/target/debug/deps/scheme_comparison-77f6020e860253cf.d: tests/scheme_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libscheme_comparison-77f6020e860253cf.rmeta: tests/scheme_comparison.rs Cargo.toml

tests/scheme_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
