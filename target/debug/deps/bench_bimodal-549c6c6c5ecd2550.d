/root/repo/target/debug/deps/bench_bimodal-549c6c6c5ecd2550.d: crates/bench/benches/bench_bimodal.rs Cargo.toml

/root/repo/target/debug/deps/libbench_bimodal-549c6c6c5ecd2550.rmeta: crates/bench/benches/bench_bimodal.rs Cargo.toml

crates/bench/benches/bench_bimodal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
