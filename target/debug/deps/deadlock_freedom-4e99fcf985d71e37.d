/root/repo/target/debug/deps/deadlock_freedom-4e99fcf985d71e37.d: tests/deadlock_freedom.rs Cargo.toml

/root/repo/target/debug/deps/libdeadlock_freedom-4e99fcf985d71e37.rmeta: tests/deadlock_freedom.rs Cargo.toml

tests/deadlock_freedom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
