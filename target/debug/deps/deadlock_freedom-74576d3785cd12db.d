/root/repo/target/debug/deps/deadlock_freedom-74576d3785cd12db.d: tests/deadlock_freedom.rs

/root/repo/target/debug/deps/deadlock_freedom-74576d3785cd12db: tests/deadlock_freedom.rs

tests/deadlock_freedom.rs:
