/root/repo/target/debug/deps/proptests-ba5d62f1db0ca152.d: crates/netsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ba5d62f1db0ca152.rmeta: crates/netsim/tests/proptests.rs Cargo.toml

crates/netsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
