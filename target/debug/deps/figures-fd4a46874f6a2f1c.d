/root/repo/target/debug/deps/figures-fd4a46874f6a2f1c.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-fd4a46874f6a2f1c: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
