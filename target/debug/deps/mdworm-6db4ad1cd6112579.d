/root/repo/target/debug/deps/mdworm-6db4ad1cd6112579.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libmdworm-6db4ad1cd6112579.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/forensics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
