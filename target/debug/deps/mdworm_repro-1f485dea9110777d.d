/root/repo/target/debug/deps/mdworm_repro-1f485dea9110777d.d: src/lib.rs

/root/repo/target/debug/deps/mdworm_repro-1f485dea9110777d: src/lib.rs

src/lib.rs:
