/root/repo/target/debug/deps/figures-49c150a99255435c.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-49c150a99255435c.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
