/root/repo/target/debug/deps/proptests-96c66202f9cc93c1.d: crates/mintopo/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-96c66202f9cc93c1.rmeta: crates/mintopo/tests/proptests.rs Cargo.toml

crates/mintopo/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
