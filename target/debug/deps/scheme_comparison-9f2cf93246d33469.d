/root/repo/target/debug/deps/scheme_comparison-9f2cf93246d33469.d: tests/scheme_comparison.rs

/root/repo/target/debug/deps/scheme_comparison-9f2cf93246d33469: tests/scheme_comparison.rs

tests/scheme_comparison.rs:
