/root/repo/target/debug/deps/collective_protocols-9339f6e88ada129b.d: tests/collective_protocols.rs

/root/repo/target/debug/deps/collective_protocols-9339f6e88ada129b: tests/collective_protocols.rs

tests/collective_protocols.rs:
