/root/repo/target/debug/deps/determinism-fde7a5fa2afdebd0.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-fde7a5fa2afdebd0.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
