/root/repo/target/debug/deps/simulate-fdf9cacf2e03f820.d: crates/core/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-fdf9cacf2e03f820: crates/core/src/bin/simulate.rs

crates/core/src/bin/simulate.rs:
