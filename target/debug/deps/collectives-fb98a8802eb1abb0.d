/root/repo/target/debug/deps/collectives-fb98a8802eb1abb0.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-fb98a8802eb1abb0.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs Cargo.toml

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/combining.rs:
crates/collectives/src/host.rs:
crates/collectives/src/recovery.rs:
crates/collectives/src/reduce.rs:
crates/collectives/src/swmcast.rs:
crates/collectives/src/traffic.rs:
crates/collectives/src/umin.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
