/root/repo/target/debug/deps/simulate-9942627662d08efb.d: crates/core/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-9942627662d08efb.rmeta: crates/core/src/bin/simulate.rs Cargo.toml

crates/core/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
