/root/repo/target/debug/deps/switches-af4b5df4c522a1ec.d: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs Cargo.toml

/root/repo/target/debug/deps/libswitches-af4b5df4c522a1ec.rmeta: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs Cargo.toml

crates/switches/src/lib.rs:
crates/switches/src/central.rs:
crates/switches/src/config.rs:
crates/switches/src/decode.rs:
crates/switches/src/input_buffered.rs:
crates/switches/src/stats.rs:
crates/switches/src/testutil.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
