/root/repo/target/debug/deps/end_to_end-4e96adf116e1f66d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4e96adf116e1f66d: tests/end_to_end.rs

tests/end_to_end.rs:
