/root/repo/target/debug/deps/mdworm-21ed29c5408c0482.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/mdworm-21ed29c5408c0482: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/forensics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/workload.rs:
