/root/repo/target/debug/deps/mdworm_repro-091c627e5151332e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libmdworm_repro-091c627e5151332e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
