/root/repo/target/debug/deps/bench_msglen-3d5c53810f2ad099.d: crates/bench/benches/bench_msglen.rs Cargo.toml

/root/repo/target/debug/deps/libbench_msglen-3d5c53810f2ad099.rmeta: crates/bench/benches/bench_msglen.rs Cargo.toml

crates/bench/benches/bench_msglen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
