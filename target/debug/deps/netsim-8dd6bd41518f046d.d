/root/repo/target/debug/deps/netsim-8dd6bd41518f046d.d: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rlib: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

/root/repo/target/debug/deps/libnetsim-8dd6bd41518f046d.rmeta: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/destset.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/flit.rs:
crates/netsim/src/header.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/message.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/trace.rs:
