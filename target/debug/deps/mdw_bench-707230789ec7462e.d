/root/repo/target/debug/deps/mdw_bench-707230789ec7462e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/mdw_bench-707230789ec7462e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
