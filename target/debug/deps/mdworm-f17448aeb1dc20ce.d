/root/repo/target/debug/deps/mdworm-f17448aeb1dc20ce.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libmdworm-f17448aeb1dc20ce.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

/root/repo/target/debug/deps/libmdworm-f17448aeb1dc20ce.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/forensics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/workload.rs:
