/root/repo/target/debug/deps/switches-44eb16b823d9f51f.d: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

/root/repo/target/debug/deps/libswitches-44eb16b823d9f51f.rlib: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

/root/repo/target/debug/deps/libswitches-44eb16b823d9f51f.rmeta: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

crates/switches/src/lib.rs:
crates/switches/src/central.rs:
crates/switches/src/config.rs:
crates/switches/src/decode.rs:
crates/switches/src/input_buffered.rs:
crates/switches/src/stats.rs:
crates/switches/src/testutil.rs:
