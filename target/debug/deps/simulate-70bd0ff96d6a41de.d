/root/repo/target/debug/deps/simulate-70bd0ff96d6a41de.d: crates/core/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-70bd0ff96d6a41de.rmeta: crates/core/src/bin/simulate.rs Cargo.toml

crates/core/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
