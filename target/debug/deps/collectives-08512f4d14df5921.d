/root/repo/target/debug/deps/collectives-08512f4d14df5921.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

/root/repo/target/debug/deps/collectives-08512f4d14df5921: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/combining.rs:
crates/collectives/src/host.rs:
crates/collectives/src/recovery.rs:
crates/collectives/src/reduce.rs:
crates/collectives/src/swmcast.rs:
crates/collectives/src/traffic.rs:
crates/collectives/src/umin.rs:
