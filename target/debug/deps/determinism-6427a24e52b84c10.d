/root/repo/target/debug/deps/determinism-6427a24e52b84c10.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6427a24e52b84c10: tests/determinism.rs

tests/determinism.rs:
