/root/repo/target/debug/deps/bench_degree-46760f90e12d0f9f.d: crates/bench/benches/bench_degree.rs Cargo.toml

/root/repo/target/debug/deps/libbench_degree-46760f90e12d0f9f.rmeta: crates/bench/benches/bench_degree.rs Cargo.toml

crates/bench/benches/bench_degree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
