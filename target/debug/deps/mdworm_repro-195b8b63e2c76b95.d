/root/repo/target/debug/deps/mdworm_repro-195b8b63e2c76b95.d: src/lib.rs

/root/repo/target/debug/deps/libmdworm_repro-195b8b63e2c76b95.rlib: src/lib.rs

/root/repo/target/debug/deps/libmdworm_repro-195b8b63e2c76b95.rmeta: src/lib.rs

src/lib.rs:
