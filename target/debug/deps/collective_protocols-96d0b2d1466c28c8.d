/root/repo/target/debug/deps/collective_protocols-96d0b2d1466c28c8.d: tests/collective_protocols.rs Cargo.toml

/root/repo/target/debug/deps/libcollective_protocols-96d0b2d1466c28c8.rmeta: tests/collective_protocols.rs Cargo.toml

tests/collective_protocols.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
