/root/repo/target/debug/deps/bench_ablation-68b8fcbcecc08f67.d: crates/bench/benches/bench_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libbench_ablation-68b8fcbcecc08f67.rmeta: crates/bench/benches/bench_ablation.rs Cargo.toml

crates/bench/benches/bench_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
