/root/repo/target/debug/deps/switches-40dcbead3f339ac9.d: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

/root/repo/target/debug/deps/switches-40dcbead3f339ac9: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

crates/switches/src/lib.rs:
crates/switches/src/central.rs:
crates/switches/src/config.rs:
crates/switches/src/decode.rs:
crates/switches/src/input_buffered.rs:
crates/switches/src/stats.rs:
crates/switches/src/testutil.rs:
