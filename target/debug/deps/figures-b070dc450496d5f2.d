/root/repo/target/debug/deps/figures-b070dc450496d5f2.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-b070dc450496d5f2: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
