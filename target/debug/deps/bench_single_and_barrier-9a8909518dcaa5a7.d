/root/repo/target/debug/deps/bench_single_and_barrier-9a8909518dcaa5a7.d: crates/bench/benches/bench_single_and_barrier.rs Cargo.toml

/root/repo/target/debug/deps/libbench_single_and_barrier-9a8909518dcaa5a7.rmeta: crates/bench/benches/bench_single_and_barrier.rs Cargo.toml

crates/bench/benches/bench_single_and_barrier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
