/root/repo/target/debug/deps/bench_multimulticast-dde0933c54029c99.d: crates/bench/benches/bench_multimulticast.rs Cargo.toml

/root/repo/target/debug/deps/libbench_multimulticast-dde0933c54029c99.rmeta: crates/bench/benches/bench_multimulticast.rs Cargo.toml

crates/bench/benches/bench_multimulticast.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
