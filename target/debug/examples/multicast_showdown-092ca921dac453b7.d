/root/repo/target/debug/examples/multicast_showdown-092ca921dac453b7.d: examples/multicast_showdown.rs Cargo.toml

/root/repo/target/debug/examples/libmulticast_showdown-092ca921dac453b7.rmeta: examples/multicast_showdown.rs Cargo.toml

examples/multicast_showdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
