/root/repo/target/debug/examples/multicast_showdown-4764913cb534884a.d: examples/multicast_showdown.rs

/root/repo/target/debug/examples/multicast_showdown-4764913cb534884a: examples/multicast_showdown.rs

examples/multicast_showdown.rs:
