/root/repo/target/debug/examples/inspect_topology-59a2e67469a041e4.d: examples/inspect_topology.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_topology-59a2e67469a041e4.rmeta: examples/inspect_topology.rs Cargo.toml

examples/inspect_topology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
