/root/repo/target/debug/examples/inspect_topology-2e95a6854246e8ed.d: examples/inspect_topology.rs

/root/repo/target/debug/examples/inspect_topology-2e95a6854246e8ed: examples/inspect_topology.rs

examples/inspect_topology.rs:
