/root/repo/target/debug/examples/barrier_sync-71ebee6869d6df77.d: examples/barrier_sync.rs

/root/repo/target/debug/examples/barrier_sync-71ebee6869d6df77: examples/barrier_sync.rs

examples/barrier_sync.rs:
