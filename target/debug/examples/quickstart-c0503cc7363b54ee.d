/root/repo/target/debug/examples/quickstart-c0503cc7363b54ee.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c0503cc7363b54ee: examples/quickstart.rs

examples/quickstart.rs:
