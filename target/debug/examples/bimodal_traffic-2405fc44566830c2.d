/root/repo/target/debug/examples/bimodal_traffic-2405fc44566830c2.d: examples/bimodal_traffic.rs

/root/repo/target/debug/examples/bimodal_traffic-2405fc44566830c2: examples/bimodal_traffic.rs

examples/bimodal_traffic.rs:
