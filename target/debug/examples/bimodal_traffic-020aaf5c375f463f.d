/root/repo/target/debug/examples/bimodal_traffic-020aaf5c375f463f.d: examples/bimodal_traffic.rs Cargo.toml

/root/repo/target/debug/examples/libbimodal_traffic-020aaf5c375f463f.rmeta: examples/bimodal_traffic.rs Cargo.toml

examples/bimodal_traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
