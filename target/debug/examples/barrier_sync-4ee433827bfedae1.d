/root/repo/target/debug/examples/barrier_sync-4ee433827bfedae1.d: examples/barrier_sync.rs Cargo.toml

/root/repo/target/debug/examples/libbarrier_sync-4ee433827bfedae1.rmeta: examples/barrier_sync.rs Cargo.toml

examples/barrier_sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
