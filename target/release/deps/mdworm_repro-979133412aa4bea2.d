/root/repo/target/release/deps/mdworm_repro-979133412aa4bea2.d: src/lib.rs

/root/repo/target/release/deps/libmdworm_repro-979133412aa4bea2.rlib: src/lib.rs

/root/repo/target/release/deps/libmdworm_repro-979133412aa4bea2.rmeta: src/lib.rs

src/lib.rs:
