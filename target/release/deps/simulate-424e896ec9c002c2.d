/root/repo/target/release/deps/simulate-424e896ec9c002c2.d: crates/core/src/bin/simulate.rs

/root/repo/target/release/deps/simulate-424e896ec9c002c2: crates/core/src/bin/simulate.rs

crates/core/src/bin/simulate.rs:
