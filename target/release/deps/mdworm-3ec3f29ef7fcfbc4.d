/root/repo/target/release/deps/mdworm-3ec3f29ef7fcfbc4.d: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libmdworm-3ec3f29ef7fcfbc4.rlib: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

/root/repo/target/release/deps/libmdworm-3ec3f29ef7fcfbc4.rmeta: crates/core/src/lib.rs crates/core/src/build.rs crates/core/src/config.rs crates/core/src/experiments.rs crates/core/src/forensics.rs crates/core/src/report.rs crates/core/src/sim.rs crates/core/src/workload.rs

crates/core/src/lib.rs:
crates/core/src/build.rs:
crates/core/src/config.rs:
crates/core/src/experiments.rs:
crates/core/src/forensics.rs:
crates/core/src/report.rs:
crates/core/src/sim.rs:
crates/core/src/workload.rs:
