/root/repo/target/release/deps/netsim-a529a0dbf410e1c9.d: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-a529a0dbf410e1c9.rlib: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

/root/repo/target/release/deps/libnetsim-a529a0dbf410e1c9.rmeta: crates/netsim/src/lib.rs crates/netsim/src/destset.rs crates/netsim/src/engine.rs crates/netsim/src/fault.rs crates/netsim/src/flit.rs crates/netsim/src/header.rs crates/netsim/src/ids.rs crates/netsim/src/link.rs crates/netsim/src/message.rs crates/netsim/src/packet.rs crates/netsim/src/rng.rs crates/netsim/src/stats.rs crates/netsim/src/trace.rs

crates/netsim/src/lib.rs:
crates/netsim/src/destset.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/fault.rs:
crates/netsim/src/flit.rs:
crates/netsim/src/header.rs:
crates/netsim/src/ids.rs:
crates/netsim/src/link.rs:
crates/netsim/src/message.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/rng.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/trace.rs:
