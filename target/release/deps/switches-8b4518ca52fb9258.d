/root/repo/target/release/deps/switches-8b4518ca52fb9258.d: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

/root/repo/target/release/deps/libswitches-8b4518ca52fb9258.rlib: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

/root/repo/target/release/deps/libswitches-8b4518ca52fb9258.rmeta: crates/switches/src/lib.rs crates/switches/src/central.rs crates/switches/src/config.rs crates/switches/src/decode.rs crates/switches/src/input_buffered.rs crates/switches/src/stats.rs crates/switches/src/testutil.rs

crates/switches/src/lib.rs:
crates/switches/src/central.rs:
crates/switches/src/config.rs:
crates/switches/src/decode.rs:
crates/switches/src/input_buffered.rs:
crates/switches/src/stats.rs:
crates/switches/src/testutil.rs:
