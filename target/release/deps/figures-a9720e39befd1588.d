/root/repo/target/release/deps/figures-a9720e39befd1588.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-a9720e39befd1588: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
