/root/repo/target/release/deps/mdw_bench-99e7ad5349deac95.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmdw_bench-99e7ad5349deac95.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libmdw_bench-99e7ad5349deac95.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
