/root/repo/target/release/deps/collectives-ecac0fbf3dc8d33f.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

/root/repo/target/release/deps/libcollectives-ecac0fbf3dc8d33f.rlib: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

/root/repo/target/release/deps/libcollectives-ecac0fbf3dc8d33f.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/combining.rs crates/collectives/src/host.rs crates/collectives/src/recovery.rs crates/collectives/src/reduce.rs crates/collectives/src/swmcast.rs crates/collectives/src/traffic.rs crates/collectives/src/umin.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/combining.rs:
crates/collectives/src/host.rs:
crates/collectives/src/recovery.rs:
crates/collectives/src/reduce.rs:
crates/collectives/src/swmcast.rs:
crates/collectives/src/traffic.rs:
crates/collectives/src/umin.rs:
