//! Facade crate for the mdworm reproduction workspace.
//!
//! Re-exports the member crates so the repository-level examples and
//! integration tests can use a single dependency. See the individual crates
//! for documentation:
//!
//! * [`netsim`] — flit-level simulation substrate
//! * [`mintopo`] — topologies, routing, reachability
//! * [`switches`] — central-buffer and input-buffer switch architectures
//! * [`collectives`] — host model, software/hardware multicast, barriers
//! * [`mdworm`] — system builder, workloads, experiment harness

pub use collectives;
pub use mdworm;
pub use mintopo;
pub use netsim;
pub use switches;
