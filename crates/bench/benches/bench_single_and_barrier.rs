//! E10/E11 smoke bench: single-multicast latency and barrier rounds.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_bench::{base_system, defaults, Scale};
use mdworm::config::{McastImpl, SystemConfig, TopologyKind};
use mdworm::experiments::{run_barrier, single_multicast_latency};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_e11");
    g.sample_size(10);
    let base = base_system();
    g.bench_function("e10_single_multicast_d16", |b| {
        b.iter(|| single_multicast_latency(&base, 16, defaults::LEN))
    });
    let barrier_cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        ..base_system()
    };
    g.bench_function("e11_barrier_hw_16procs", |b| {
        b.iter(|| run_barrier(&barrier_cfg, Scale::Quick.barrier_rounds()))
    });
    let sw_cfg = SystemConfig {
        mcast: McastImpl::SwBinomial,
        ..barrier_cfg.clone()
    };
    g.bench_function("e11_barrier_sw_16procs", |b| {
        b.iter(|| run_barrier(&sw_cfg, Scale::Quick.barrier_rounds()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
