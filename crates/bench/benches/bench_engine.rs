//! Raw simulator performance: simulated cycles per second for each switch
//! architecture under steady traffic (useful for sizing full-scale runs).

use collectives::TrafficSource;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mdw_bench::base_system;
use mdworm::build::build_system;
use mdworm::config::SwitchArch;
use mdworm::workload::{make_sources, TrafficSpec};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_cycles");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1_000));
    for (label, arch) in [
        ("central_buffer", SwitchArch::CentralBuffer),
        ("input_buffered", SwitchArch::InputBuffered),
    ] {
        let cfg = mdworm::SystemConfig {
            arch,
            ..base_system()
        };
        let spec = TrafficSpec::bimodal(0.4, 0.1, 16, 64);
        let sources: Vec<Box<dyn TrafficSource>> =
            make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
        let mut sys = build_system(cfg, sources, None);
        g.bench_function(label, |b| {
            b.iter(|| {
                sys.engine.run_for(1_000);
                sys.engine.now()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
