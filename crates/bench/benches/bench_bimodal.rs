//! E4/E5 smoke bench: bimodal traffic, all three schemes plus the
//! no-multicast reference.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_bench::{base_system, defaults, Scale};
use mdworm::experiments::scheme_configs;
use mdworm::sim::run_experiment;
use mdworm::workload::TrafficSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_bimodal");
    g.sample_size(10);
    let run = Scale::Quick.run();
    let spec = TrafficSpec::bimodal(
        0.4,
        defaults::MCAST_FRACTION,
        defaults::DEGREE,
        defaults::LEN,
    );
    for (label, cfg) in scheme_configs(&base_system()) {
        g.bench_function(label, |b| {
            b.iter(|| {
                let out = run_experiment(&cfg, &spec, &run);
                assert!(!out.deadlocked);
                out
            })
        });
    }
    let reference = base_system();
    g.bench_function("CB-none", |b| {
        let spec = TrafficSpec::unicast(0.36, defaults::LEN);
        b.iter(|| run_experiment(&reference, &spec, &run))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
