//! E8 smoke bench: system-size scaling (16 and 64 processors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdw_bench::{base_system, defaults, Scale};
use mdworm::config::TopologyKind;
use mdworm::sim::run_experiment;
use mdworm::workload::TrafficSpec;
use mdworm::SystemConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_syssize");
    g.sample_size(10);
    let run = Scale::Quick.run();
    for n in [2usize, 3] {
        let cfg = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n },
            ..base_system()
        };
        let hosts = cfg.n_hosts();
        let spec = TrafficSpec::multiple_multicast(defaults::SWEEP_LOAD, hosts / 4, defaults::LEN);
        g.bench_with_input(BenchmarkId::new("CB-HW", hosts), &spec, |b, spec| {
            b.iter(|| run_experiment(&cfg, spec, &run))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
