//! E2/E3 smoke bench: multiple-multicast traffic, all three schemes.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_bench::{base_system, defaults, Scale};
use mdworm::experiments::scheme_configs;
use mdworm::sim::run_experiment;
use mdworm::workload::TrafficSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_multiple_multicast");
    g.sample_size(10);
    let run = Scale::Quick.run();
    let spec = TrafficSpec::multiple_multicast(0.4, defaults::DEGREE, defaults::LEN);
    for (label, cfg) in scheme_configs(&base_system()) {
        g.bench_function(label, |b| {
            b.iter(|| {
                let out = run_experiment(&cfg, &spec, &run);
                assert!(!out.deadlocked);
                out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
