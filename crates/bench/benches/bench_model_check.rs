//! Checker timing: the bounded model check (DESIGN.md §11/§14) that
//! `mdw-lint --model-check` and the `FaultResponder`'s reroute gate run.
//!
//! The acceptance budget is "all shipped configs at the 2-switch bound
//! in under 30 s"; these benches keep the real number visible so a
//! regression in the state encoding (a hash blow-up, a lost symmetry)
//! shows up as a timing cliff long before it threatens the budget. The
//! `scale_*` entries time the §14 reductions at the 8/16-switch tiers
//! the unreduced oracle cannot finish — the sub-second reroute-vet
//! numbers `mdw-routed` banks on.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_analysis::{
    check_model, check_model_opts, ArchClass, CheckOutcome, ModelBounds, ModelMode, ModelOptions,
};
use mintopo::route::ReplicatePolicy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_check");
    g.sample_size(10);
    let bounds = ModelBounds::default();

    // The two verifying architectures the shipped configs exercise.
    g.bench_function("cb_async_return_only", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::CentralBuffer,
                false,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(out.is_verified());
            out
        })
    });
    g.bench_function("ib_async_return_only", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::InputBuffered,
                false,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(out.is_verified());
            out
        })
    });

    // The counterexample path: BFS must stop at the first violation and
    // reconstruct a minimal trace, so this is expected to be the fastest.
    g.bench_function("ib_sync_counterexample", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::InputBuffered,
                true,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(matches!(out, CheckOutcome::Violated(_)));
            out
        })
    });

    // The deepest exploration: four switches, replication revisits.
    let quad = ModelBounds {
        max_switches: 4,
        ..ModelBounds::default()
    };
    g.bench_function("cb_async_quad_fabric", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::CentralBuffer,
                false,
                ReplicatePolicy::ReturnOnly,
                &quad,
            );
            assert!(out.is_verified());
            out
        })
    });

    // The §14 scale tiers: fabrics the unreduced oracle cannot finish
    // inside the 50k-state budget. Symmetry + POR (exact) and the
    // compositional per-switch decomposition both must stay sub-second
    // here for the reroute deep vet to hold its latency budget.
    for switches in [8usize, 16] {
        let bounds = ModelBounds {
            max_switches: switches,
            max_states: 50_000,
            ..ModelBounds::default()
        };
        let run = |opts: ModelOptions| {
            let out = check_model_opts(
                ArchClass::CentralBuffer,
                false,
                ReplicatePolicy::ReturnOnly,
                &bounds,
                &opts,
            );
            assert!(out.is_verified(), "{out:?}");
            out
        };
        g.bench_function(format!("scale_{switches}sw_reduced_exact"), |b| {
            b.iter(|| {
                run(ModelOptions {
                    mode: ModelMode::Exact,
                    ..ModelOptions::default()
                })
            })
        });
        g.bench_function(format!("scale_{switches}sw_reduced_exact_jobs4"), |b| {
            b.iter(|| {
                run(ModelOptions {
                    mode: ModelMode::Exact,
                    jobs: 4,
                    ..ModelOptions::default()
                })
            })
        });
        g.bench_function(format!("scale_{switches}sw_compositional"), |b| {
            b.iter(|| {
                run(ModelOptions {
                    mode: ModelMode::Compositional,
                    ..ModelOptions::default()
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
