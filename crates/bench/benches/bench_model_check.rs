//! Checker timing: the bounded model check (DESIGN.md §11) that
//! `mdw-lint --model-check` and the `FaultResponder`'s reroute gate run.
//!
//! The acceptance budget is "all shipped configs at the 2-switch bound
//! in under 30 s"; these benches keep the real number visible so a
//! regression in the state encoding (a hash blow-up, a lost symmetry)
//! shows up as a timing cliff long before it threatens the budget.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_analysis::{check_model, ArchClass, CheckOutcome, ModelBounds};
use mintopo::route::ReplicatePolicy;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_check");
    g.sample_size(10);
    let bounds = ModelBounds::default();

    // The two verifying architectures the shipped configs exercise.
    g.bench_function("cb_async_return_only", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::CentralBuffer,
                false,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(out.is_verified());
            out
        })
    });
    g.bench_function("ib_async_return_only", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::InputBuffered,
                false,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(out.is_verified());
            out
        })
    });

    // The counterexample path: BFS must stop at the first violation and
    // reconstruct a minimal trace, so this is expected to be the fastest.
    g.bench_function("ib_sync_counterexample", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::InputBuffered,
                true,
                ReplicatePolicy::ReturnOnly,
                &bounds,
            );
            assert!(matches!(out, CheckOutcome::Violated(_)));
            out
        })
    });

    // The deepest exploration: four switches, replication revisits.
    let quad = ModelBounds {
        max_switches: 4,
        ..ModelBounds::default()
    };
    g.bench_function("cb_async_quad_fabric", |b| {
        b.iter(|| {
            let out = check_model(
                ArchClass::CentralBuffer,
                false,
                ReplicatePolicy::ReturnOnly,
                &quad,
            );
            assert!(out.is_verified());
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
