//! E9 smoke bench: design ablations of the central-buffer switch.

use criterion::{criterion_group, criterion_main, Criterion};
use mdw_bench::{base_system, Scale};
use mdworm::experiments::e9_ablations;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_ablations");
    g.sample_size(10);
    let run = Scale::Quick.run();
    let base = base_system();
    g.bench_function("all_variants", |b| {
        b.iter(|| {
            let rows = e9_ablations(&base, &run, 0.3);
            // Every variant except the deliberately unsafe synchronous-
            // replication one must stay deadlock-free.
            assert!(rows
                .iter()
                .filter(|r| !r.variant.contains("synchronous"))
                .all(|r| !r.deadlocked));
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
