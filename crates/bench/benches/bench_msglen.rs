//! E7 smoke bench: message-length sweep on the central-buffer scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdw_bench::{base_system, defaults, Scale};
use mdworm::sim::run_experiment;
use mdworm::workload::TrafficSpec;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_msglen");
    g.sample_size(10);
    let run = Scale::Quick.run();
    let cfg = base_system();
    for len in Scale::Quick.lengths() {
        let spec = TrafficSpec::multiple_multicast(defaults::SWEEP_LOAD, defaults::DEGREE, len);
        g.bench_with_input(BenchmarkId::new("CB-HW", len), &spec, |b, spec| {
            b.iter(|| run_experiment(&cfg, spec, &run))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
