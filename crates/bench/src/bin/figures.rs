//! Regenerates every evaluation table/figure of the reproduction
//! (E1..E16, see DESIGN.md) and writes markdown + CSV into `results/`.
//!
//! ```text
//! cargo run --release -p mdw-bench --bin figures -- --exp all --scale full
//! cargo run --release -p mdw-bench --bin figures -- --exp e2 --scale quick
//! cargo run --release -p mdw-bench --bin figures -- --scale quick --jobs 4 --bench
//! ```
//!
//! `--jobs N` sizes the sweep worker pool (default: `MDWORM_JOBS`, else
//! available parallelism). `--shards N` runs every experiment on the
//! compiled sharded engine (default: `MDWORM_SHARDS`, else the config's
//! `engine.shards`; 1 = sequential oracle) — outputs must be byte-
//! identical at any shard count, which CI checks by diffing `--shards 1`
//! against `--shards 2`. `--bench` runs the selected suite twice —
//! serial then parallel — verifies the outputs are byte-identical, times
//! the raw engine and the sharded-vs-sequential scale sweep, and writes
//! `BENCH_sweep.json` next to the tables.

use mdw_bench::perf::bench_sweep;
use mdw_bench::suite::{run_suite, Table};
use mdw_bench::{base_system, Scale};
use mdworm::sweep;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

/// Engine-microbench length for `--bench` (cycles).
const ENGINE_BENCH_CYCLES: u64 = 200_000;

struct Args {
    exp: String,
    scale: Scale,
    out: PathBuf,
    jobs: Option<usize>,
    shards: Option<usize>,
    bench: bool,
}

fn parse_args() -> Args {
    let mut exp = "all".to_string();
    let mut scale = Scale::Full;
    let mut out = PathBuf::from("results");
    let mut jobs = None;
    let mut shards = None;
    let mut bench = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                exp = argv.get(i + 1).expect("--exp needs a value").clone();
                i += 2;
            }
            "--scale" => {
                let v = argv.get(i + 1).expect("--scale needs a value");
                scale = Scale::parse(v).unwrap_or_else(|| panic!("unknown scale {v}"));
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(argv.get(i + 1).expect("--out needs a value"));
                i += 2;
            }
            "--jobs" => {
                let v = argv.get(i + 1).expect("--jobs needs a value");
                let n: usize = v.parse().unwrap_or_else(|_| panic!("bad --jobs value {v}"));
                assert!(n > 0, "--jobs must be at least 1");
                jobs = Some(n);
                i += 2;
            }
            "--shards" => {
                let v = argv.get(i + 1).expect("--shards needs a value");
                let n: usize = v
                    .parse()
                    .unwrap_or_else(|_| panic!("bad --shards value {v}"));
                assert!(n > 0, "--shards must be at least 1 (1 = sequential oracle)");
                shards = Some(n);
                i += 2;
            }
            "--bench" => {
                bench = true;
                i += 1;
            }
            other => {
                panic!("unknown argument {other} (use --exp/--scale/--out/--jobs/--shards/--bench)")
            }
        }
    }
    Args {
        exp,
        scale,
        out,
        jobs,
        shards,
        bench,
    }
}

fn emit(out: &PathBuf, tables: &[Table]) {
    fs::create_dir_all(out).expect("create output directory");
    for t in tables {
        println!("\n## {}\n\n{}", t.title, t.md);
        fs::write(out.join(format!("{}.csv", t.name)), &t.csv).expect("write csv");
        fs::write(
            out.join(format!("{}.md", t.name)),
            format!("## {}\n\n{}", t.title, t.md),
        )
        .expect("write md");
    }
}

/// Statically lints every scheme configuration the suite will sweep
/// (CB-HW, IB-HW, SW-CB over the base system) before a single cycle
/// runs. Errors abort the whole suite — a provably-deadlocking config
/// would only waste hours before the watchdog fired; warnings are
/// printed and tolerated.
fn prelint(base: &mdworm::SystemConfig) -> Result<(), ()> {
    let mut failed = false;
    for (label, cfg) in mdworm::experiments::scheme_configs(base) {
        let report = cfg.report();
        for d in &report.diagnostics {
            eprintln!("prelint {label}: {d}");
        }
        failed |= report.has_errors();
    }
    if failed {
        eprintln!("prelint: provably unsafe configuration — refusing to run the suite");
        Err(())
    } else {
        Ok(())
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let base = base_system();
    if let Some(n) = args.jobs {
        sweep::set_jobs(n);
    }
    if let Some(n) = args.shards {
        mdworm::sim::set_engine_shards(n);
    }
    if prelint(&base).is_err() {
        return ExitCode::FAILURE;
    }
    let started = std::time::Instant::now();

    if args.bench {
        let jobs_parallel = args.jobs.unwrap_or_else(sweep::jobs).max(2);
        let (report, tables) = bench_sweep(
            &base,
            args.scale,
            &args.exp,
            jobs_parallel,
            ENGINE_BENCH_CYCLES,
        );
        emit(&args.out, &tables);
        let json = report.json();
        fs::create_dir_all(&args.out).expect("create output directory");
        fs::write(args.out.join("BENCH_sweep.json"), &json).expect("write BENCH_sweep.json");
        eprintln!("bench: {json}");
        eprintln!(
            "figures: bench done in {:.1}s (exp={}, scale={:?}, out={})",
            started.elapsed().as_secs_f64(),
            args.exp,
            args.scale,
            args.out.display()
        );
        if !report.outputs_identical {
            eprintln!("bench: FAILURE — serial and parallel outputs diverge");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let tables = run_suite(&base, args.scale, &args.exp);
    emit(&args.out, &tables);
    eprintln!(
        "figures: done in {:.1}s (exp={}, scale={:?}, jobs={}, out={})",
        started.elapsed().as_secs_f64(),
        args.exp,
        args.scale,
        sweep::jobs(),
        args.out.display()
    );
    ExitCode::SUCCESS
}
