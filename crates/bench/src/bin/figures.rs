//! Regenerates every evaluation table/figure of the reproduction
//! (E1..E16, see DESIGN.md) and writes markdown + CSV into `results/`.
//!
//! ```text
//! cargo run --release -p mdw-bench --bin figures -- --exp all --scale full
//! cargo run --release -p mdw-bench --bin figures -- --exp e2 --scale quick
//! ```

use mdw_bench::{base_system, defaults, Scale};
use mdworm::experiments as exp;
use mdworm::report::{csv, markdown_table, TableRow};
use std::fs;
use std::path::PathBuf;

struct Args {
    exp: String,
    scale: Scale,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut exp = "all".to_string();
    let mut scale = Scale::Full;
    let mut out = PathBuf::from("results");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                exp = argv.get(i + 1).expect("--exp needs a value").clone();
                i += 2;
            }
            "--scale" => {
                let v = argv.get(i + 1).expect("--scale needs a value");
                scale = Scale::parse(v).unwrap_or_else(|| panic!("unknown scale {v}"));
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(argv.get(i + 1).expect("--out needs a value"));
                i += 2;
            }
            other => panic!("unknown argument {other} (use --exp/--scale/--out)"),
        }
    }
    Args { exp, scale, out }
}

fn emit<T: TableRow>(out: &PathBuf, name: &str, title: &str, rows: &[T]) {
    let md = markdown_table(rows);
    println!("\n## {title}\n\n{md}");
    fs::create_dir_all(out).expect("create output directory");
    fs::write(out.join(format!("{name}.csv")), csv(rows)).expect("write csv");
    fs::write(
        out.join(format!("{name}.md")),
        format!("## {title}\n\n{md}"),
    )
    .expect("write md");
}

fn main() {
    let args = parse_args();
    let base = base_system();
    let run = args.scale.run();
    let want = |e: &str| args.exp == "all" || args.exp == e;
    let started = std::time::Instant::now();

    if want("e1") {
        emit(
            &args.out,
            "e1_parameters",
            "E1: simulation parameters",
            &exp::e1_parameters(&base, &run),
        );
    }
    if want("e2") || want("e3") {
        let rows = exp::e2_e3_multiple_multicast(
            &base,
            &run,
            &args.scale.loads(),
            defaults::DEGREE,
            defaults::LEN,
        );
        emit(
            &args.out,
            "e2_e3_multiple_multicast",
            "E2+E3: multiple multicast — latency & throughput vs offered load (64 procs, degree 16, 64 flits)",
            &rows,
        );
    }
    if want("e4") || want("e5") {
        let rows = exp::e4_e5_bimodal(
            &base,
            &run,
            &args.scale.bimodal_loads(),
            defaults::MCAST_FRACTION,
            defaults::DEGREE,
            defaults::LEN,
        );
        emit(
            &args.out,
            "e4_e5_bimodal",
            "E4+E5: bimodal traffic — background unicast & multicast latency vs load (10% multicast, degree 16)",
            &rows,
        );
    }
    if want("e6") {
        let rows = exp::e6_degree_sweep(
            &base,
            &run,
            defaults::SWEEP_LOAD,
            &args.scale.degrees(),
            defaults::LEN,
        );
        emit(
            &args.out,
            "e6_degree",
            "E6: multicast latency vs degree (load 0.4, 64 flits)",
            &rows,
        );
    }
    if want("e7") {
        let rows = exp::e7_length_sweep(
            &base,
            &run,
            defaults::SWEEP_LOAD,
            &args.scale.lengths(),
            defaults::DEGREE,
        );
        emit(
            &args.out,
            "e7_msglen",
            "E7: multicast latency vs message length (load 0.4, degree 16)",
            &rows,
        );
    }
    if want("e8") {
        let rows = exp::e8_size_sweep(
            &base,
            &run,
            defaults::SWEEP_LOAD,
            &args.scale.stages(),
            defaults::LEN,
        );
        emit(
            &args.out,
            "e8_syssize",
            "E8: multicast latency vs system size (4-ary trees, degree N/4, load 0.4)",
            &rows,
        );
    }
    if want("e9") {
        let rows = exp::e9_ablations(&base, &run, defaults::SWEEP_LOAD);
        emit(
            &args.out,
            "e9_ablations",
            "E9: central-buffer design ablations (bimodal load 0.4)",
            &rows,
        );
    }
    if want("e10") {
        let rows = exp::e10_single_multicast(&base, &args.scale.degrees(), defaults::LEN);
        emit(
            &args.out,
            "e10_single_multicast",
            "E10: single multicast on an idle network — latency vs degree",
            &rows,
        );
    }
    if want("e11") {
        let rows = exp::e11_barrier(
            &base,
            &args.scale.barrier_stages(),
            args.scale.barrier_rounds(),
        );
        emit(
            &args.out,
            "e11_barrier",
            "E11: barrier rounds — hardware vs software release",
            &rows,
        );
    }

    if want("e12") {
        let rows = exp::e12_hotspot(
            &base,
            &run,
            0.2,
            &args.scale.hotspot_fractions(),
            defaults::LEN,
        );
        emit(
            &args.out,
            "e12_hotspot",
            "E12 (extension): hot-spot unicast traffic — latency vs hot-spot fraction (load 0.2)",
            &rows,
        );
    }

    if want("e13") {
        let rows = exp::e13_allreduce(
            &base,
            &args.scale.barrier_stages(),
            args.scale.barrier_rounds(),
        );
        emit(
            &args.out,
            "e13_allreduce",
            "E13 (extension): all-reduce rounds — hardware vs software broadcast phase",
            &rows,
        );
    }

    if want("e14") {
        let rows = exp::e14_combining_barrier(
            &base,
            &args.scale.barrier_stages(),
            args.scale.barrier_rounds(),
        );
        emit(
            &args.out,
            "e14_combining_barrier",
            "E14 (extension): switch-combining barrier vs host-level barrier protocols",
            &rows,
        );
    }

    if want("e15") {
        let rows = exp::e15_patterns(&base, &run, 0.5, defaults::LEN);
        emit(
            &args.out,
            "e15_patterns",
            "E15 (extension): permutation unicast patterns at load 0.5 — CB vs IB",
            &rows,
        );
    }

    if want("e16") {
        let rows = exp::e16_fault_sweep(
            &base,
            &run,
            0.2,
            &args.scale.drop_rates(),
            defaults::DEGREE,
            defaults::LEN,
        );
        emit(
            &args.out,
            "e16_fault_sweep",
            "E16 (robustness extension): degradation vs per-flit drop rate with end-to-end recovery (load 0.2)",
            &rows,
        );
    }

    eprintln!(
        "figures: done in {:.1}s (exp={}, scale={:?}, out={})",
        started.elapsed().as_secs_f64(),
        args.exp,
        args.scale,
        args.out.display()
    );
}
