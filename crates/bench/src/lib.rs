//! Shared scales and parameter sets for the benchmark harness.
//!
//! Every evaluation axis of the paper has a *full* parameter set (used by
//! the `figures` binary to regenerate the tables recorded in
//! EXPERIMENTS.md) and a *smoke* set (used by the Criterion benches so
//! `cargo bench` exercises every experiment in minutes, not hours).

use mdworm::sim::RunConfig;
use mdworm::SystemConfig;

pub mod perf;
pub mod suite;

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full measurement windows and sweeps (the recorded results).
    Full,
    /// Shrunk windows and sweeps for smoke benchmarking.
    Quick,
}

impl Scale {
    /// Parses `"full"` / `"quick"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "full" => Some(Scale::Full),
            "quick" => Some(Scale::Quick),
            _ => None,
        }
    }

    /// The run-length configuration for this scale.
    pub fn run(self) -> RunConfig {
        match self {
            Scale::Full => RunConfig {
                warmup: 5_000,
                measure: 40_000,
                drain_max: 300_000,
                watchdog_grace: 30_000,
                faults: None,
                outages: Vec::new(),
            },
            Scale::Quick => RunConfig {
                warmup: 1_000,
                measure: 5_000,
                drain_max: 80_000,
                watchdog_grace: 20_000,
                faults: None,
                outages: Vec::new(),
            },
        }
    }

    /// Offered-load sweep for E2/E3.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
            Scale::Quick => vec![0.2, 0.6],
        }
    }

    /// Offered-load sweep for E4/E5.
    pub fn bimodal_loads(self) -> Vec<f64> {
        match self {
            Scale::Full => vec![0.1, 0.3, 0.5, 0.7, 0.9],
            Scale::Quick => vec![0.3],
        }
    }

    /// Degree sweep for E6 / E10 (64-processor system).
    pub fn degrees(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![2, 4, 8, 16, 32, 63],
            Scale::Quick => vec![4, 16],
        }
    }

    /// Message-length sweep for E7.
    pub fn lengths(self) -> Vec<u16> {
        match self {
            Scale::Full => vec![16, 32, 64, 128, 256, 512],
            Scale::Quick => vec![32, 128],
        }
    }

    /// Tree stages for E8 (16 / 64 / 256 processors).
    pub fn stages(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![2, 3, 4],
            Scale::Quick => vec![2],
        }
    }

    /// Tree stages for E11 (barrier).
    pub fn barrier_stages(self) -> Vec<usize> {
        match self {
            Scale::Full => vec![2, 3, 4],
            Scale::Quick => vec![2],
        }
    }

    /// Barrier rounds for E11.
    pub fn barrier_rounds(self) -> u64 {
        match self {
            Scale::Full => 10,
            Scale::Quick => 3,
        }
    }

    /// Hot-spot fractions for E12.
    pub fn hotspot_fractions(self) -> Vec<f64> {
        match self {
            Scale::Full => vec![0.0, 0.02, 0.05, 0.08],
            Scale::Quick => vec![0.0, 0.05],
        }
    }

    /// Per-flit drop rates for the E16 fault-degradation sweep.
    pub fn drop_rates(self) -> Vec<f64> {
        match self {
            Scale::Full => vec![0.0, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3],
            Scale::Quick => vec![0.0, 1e-4, 1e-3],
        }
    }

    /// Per-phase window length for the E17 fault-response timeline
    /// (healthy / rerouted / degraded / healed) and the E18 storm script.
    pub fn fault_phase_len(self) -> u64 {
        match self {
            Scale::Full => 8_000,
            Scale::Quick => 2_500,
        }
    }

    /// Per-phase window length for the E19 crash-sweep storm script. The
    /// sweep re-runs the whole experiment once per protocol boundary, so
    /// the phase stays short at both scales; it must still clear the
    /// responder's debounce + drain-wait + purge budget (~600 cycles at
    /// defaults) or every episode goes stale before the install window.
    pub fn crash_phase_len(self) -> u64 {
        match self {
            Scale::Full => 800,
            Scale::Quick => 400,
        }
    }
}

/// The paper's default 64-processor base system.
pub fn base_system() -> SystemConfig {
    SystemConfig::default()
}

/// Default workload constants shared by the experiments.
pub mod defaults {
    /// Multicast degree for the load sweeps.
    pub const DEGREE: usize = 16;
    /// Message payload length in flits.
    pub const LEN: u16 = 64;
    /// Multicast share of bimodal traffic.
    pub const MCAST_FRACTION: f64 = 0.10;
    /// Fixed load for the degree/length/size sweeps.
    pub const SWEEP_LOAD: f64 = 0.4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("nope"), None);
    }

    #[test]
    fn quick_is_smaller_than_full() {
        assert!(Scale::Quick.run().measure < Scale::Full.run().measure);
        assert!(Scale::Quick.loads().len() < Scale::Full.loads().len());
    }
}
