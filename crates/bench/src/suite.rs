//! The full E1..E19 table suite as data: every experiment rendered to
//! markdown + CSV strings, with no file IO.
//!
//! The `figures` binary writes these tables to `results/`; the bench mode
//! (`figures --bench`) renders the suite twice — serial and parallel — and
//! compares the strings byte-for-byte to prove the parallel sweep harness
//! changes nothing but wall-clock time.

use crate::{defaults, Scale};
use mdworm::experiments as exp;
use mdworm::report::{csv, markdown_table, TableRow};
use mdworm::{SystemConfig, TopologyKind};

/// One rendered result table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// File stem (`results/<name>.{md,csv}`).
    pub name: &'static str,
    /// Human-readable heading.
    pub title: &'static str,
    /// GitHub-flavored markdown rendering.
    pub md: String,
    /// CSV rendering.
    pub csv: String,
}

fn table<T: TableRow>(name: &'static str, title: &'static str, rows: &[T]) -> Table {
    Table {
        name,
        title,
        md: markdown_table(rows),
        csv: csv(rows),
    }
}

/// Renders every experiment selected by `exp_filter` (`"all"` or an
/// experiment id like `"e2"`) at the given scale.
///
/// Runs fan out over the sweep worker pool configured through
/// [`mdworm::sweep::set_jobs`] / `MDWORM_JOBS`; table contents are
/// identical for every pool size.
pub fn run_suite(base: &SystemConfig, scale: Scale, exp_filter: &str) -> Vec<Table> {
    let run = scale.run();
    let want = |e: &str| exp_filter == "all" || exp_filter == e;
    let mut tables = Vec::new();

    if want("e1") {
        tables.push(table(
            "e1_parameters",
            "E1: simulation parameters",
            &exp::e1_parameters(base, &run),
        ));
    }
    if want("e2") || want("e3") {
        tables.push(table(
            "e2_e3_multiple_multicast",
            "E2+E3: multiple multicast — latency & throughput vs offered load (64 procs, degree 16, 64 flits)",
            &exp::e2_e3_multiple_multicast(base, &run, &scale.loads(), defaults::DEGREE, defaults::LEN),
        ));
    }
    if want("e4") || want("e5") {
        tables.push(table(
            "e4_e5_bimodal",
            "E4+E5: bimodal traffic — background unicast & multicast latency vs load (10% multicast, degree 16)",
            &exp::e4_e5_bimodal(
                base,
                &run,
                &scale.bimodal_loads(),
                defaults::MCAST_FRACTION,
                defaults::DEGREE,
                defaults::LEN,
            ),
        ));
    }
    if want("e6") {
        tables.push(table(
            "e6_degree",
            "E6: multicast latency vs degree (load 0.4, 64 flits)",
            &exp::e6_degree_sweep(
                base,
                &run,
                defaults::SWEEP_LOAD,
                &scale.degrees(),
                defaults::LEN,
            ),
        ));
    }
    if want("e7") {
        tables.push(table(
            "e7_msglen",
            "E7: multicast latency vs message length (load 0.4, degree 16)",
            &exp::e7_length_sweep(
                base,
                &run,
                defaults::SWEEP_LOAD,
                &scale.lengths(),
                defaults::DEGREE,
            ),
        ));
    }
    if want("e8") {
        tables.push(table(
            "e8_syssize",
            "E8: multicast latency vs system size (4-ary trees, degree N/4, load 0.4)",
            &exp::e8_size_sweep(
                base,
                &run,
                defaults::SWEEP_LOAD,
                &scale.stages(),
                defaults::LEN,
            ),
        ));
    }
    if want("e9") {
        tables.push(table(
            "e9_ablations",
            "E9: central-buffer design ablations (bimodal load 0.4)",
            &exp::e9_ablations(base, &run, defaults::SWEEP_LOAD),
        ));
    }
    if want("e10") {
        tables.push(table(
            "e10_single_multicast",
            "E10: single multicast on an idle network — latency vs degree",
            &exp::e10_single_multicast(base, &scale.degrees(), defaults::LEN),
        ));
    }
    if want("e11") {
        tables.push(table(
            "e11_barrier",
            "E11: barrier rounds — hardware vs software release",
            &exp::e11_barrier(base, &scale.barrier_stages(), scale.barrier_rounds()),
        ));
    }
    if want("e12") {
        tables.push(table(
            "e12_hotspot",
            "E12 (extension): hot-spot unicast traffic — latency vs hot-spot fraction (load 0.2)",
            &exp::e12_hotspot(base, &run, 0.2, &scale.hotspot_fractions(), defaults::LEN),
        ));
    }
    if want("e13") {
        tables.push(table(
            "e13_allreduce",
            "E13 (extension): all-reduce rounds — hardware vs software broadcast phase",
            &exp::e13_allreduce(base, &scale.barrier_stages(), scale.barrier_rounds()),
        ));
    }
    if want("e14") {
        tables.push(table(
            "e14_combining_barrier",
            "E14 (extension): switch-combining barrier vs host-level barrier protocols",
            &exp::e14_combining_barrier(base, &scale.barrier_stages(), scale.barrier_rounds()),
        ));
    }
    if want("e15") {
        tables.push(table(
            "e15_patterns",
            "E15 (extension): permutation unicast patterns at load 0.5 — CB vs IB",
            &exp::e15_patterns(base, &run, 0.5, defaults::LEN),
        ));
    }
    if want("e16") {
        tables.push(table(
            "e16_fault_sweep",
            "E16 (robustness extension): degradation vs per-flit drop rate with end-to-end recovery (load 0.2)",
            &exp::e16_fault_sweep(base, &run, 0.2, &scale.drop_rates(), defaults::DEGREE, defaults::LEN),
        ));
    }
    if want("e17") {
        // The four-phase outage script runs on a 2-stage tree so that a
        // crossed root cut can defeat every single-worm covering.
        let e17_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            ..base.clone()
        };
        tables.push(table(
            "e17_fault_response",
            "E17 (robustness extension): online fault response — healthy / rerouted / degraded / healed phases (16 procs, load 0.04)",
            &exp::e17_fault_response(&e17_base, scale.fault_phase_len(), 0.04, 4, 16),
        ));
    }
    if want("e18") {
        // Same 2-stage tree as E17; the storm needs a crossed cut plus a
        // spare fabric link to flap.
        let e18_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 4, n: 2 },
            ..base.clone()
        };
        tables.push(table(
            "e18_fault_storm",
            "E18 (robustness extension): fault storm under the resident control plane — overlapping cuts + flapping link, with flap damping, retry backoff, degradation ladder, and p50/p99 detect→install latency (16 procs, load 0.04)",
            &exp::e18_fault_storm(&e18_base, scale.fault_phase_len(), 0.04, 4, 16),
        ));
    }
    if want("e19") {
        // Smallest multi-root tree: the sweep re-runs the full experiment
        // once per (protocol boundary × tear variant), so the fabric and
        // the load stay deliberately tiny.
        let e19_base = SystemConfig {
            topology: TopologyKind::KaryTree { k: 2, n: 2 },
            ..base.clone()
        };
        tables.push(table(
            "e19_crash_storm",
            "E19 (crash tolerance): deterministic responder crash at every protocol boundary of a seeded outage storm, clean and with a torn journal tail — recovered runs must match the uncrashed oracle byte-for-byte with zero torn installs (4 procs, load 0.02)",
            &exp::e19_crash_storm(&e19_base, scale.crash_phase_len(), 0.02, 2, 8),
        ));
    }
    tables
}
