//! Perf measurement: times the sweep suite serial vs parallel, the raw
//! engine cycle rate, and the compiled sharded engine against the
//! sequential oracle, and serializes the result as `BENCH_sweep.json` —
//! the repo's recorded performance trajectory.

use crate::suite::{run_suite, Table};
use crate::Scale;
use mdworm::{build_system, make_sources, sweep, SystemConfig, TopologyKind, TrafficSpec};
use std::time::Instant;

/// Outcome of one `figures --bench` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale the suite ran at (`full` / `quick`).
    pub scale: String,
    /// Experiment filter (`all` or one id).
    pub exp: String,
    /// Worker-pool size of the parallel pass.
    pub jobs_parallel: usize,
    /// CPUs available on the benchmarking host — the speedup ceiling.
    /// On a single-core host the parallel pass cannot beat serial.
    pub host_cpus: usize,
    /// Wall-clock of the serial pass (jobs = 1), seconds.
    pub serial_secs: f64,
    /// Wall-clock of the parallel pass, seconds.
    pub parallel_secs: f64,
    /// serial_secs / parallel_secs.
    pub speedup: f64,
    /// Serial and parallel passes produced byte-identical tables.
    pub outputs_identical: bool,
    /// Number of tables rendered per pass.
    pub tables: usize,
    /// Cycles simulated by the single-engine microbench.
    pub engine_cycles: u64,
    /// Wall-clock of the microbench, seconds.
    pub engine_secs: f64,
    /// Simulated cycles per wall-clock second (single engine, one core).
    pub engine_cycles_per_sec: f64,
    /// Detect→install episodes in the storm microbench.
    pub storm_episodes: usize,
    /// p50 detect→install latency of the storm microbench, cycles.
    pub storm_p50_cycles: u64,
    /// p99 detect→install latency of the storm microbench, cycles.
    pub storm_p99_cycles: u64,
    /// p50 wall time of a structural reroute vet, nanoseconds.
    pub storm_vet_p50_ns: u64,
    /// p99 wall time of a structural reroute vet, nanoseconds.
    pub storm_vet_p99_ns: u64,
    /// Protocol boundaries the crash-recovery microbench swept (E19
    /// shape, CB-HW scheme).
    pub crash_boundaries: u64,
    /// Responder recoveries completed across the crash microbench.
    pub crash_recoveries: u64,
    /// p50 restart→caught-up recovery latency (journal replay + episode
    /// re-drive), nanoseconds.
    pub crash_recovery_p50_ns: u64,
    /// p99 restart→caught-up recovery latency, nanoseconds.
    pub crash_recovery_p99_ns: u64,
    /// Shard count of the headline sharded measurement.
    pub engine_shards: usize,
    /// Sequential-oracle cycles/sec on the scale fabric (light load) —
    /// the baseline the compiled engine is judged against, side-by-side.
    pub sequential_cycles_per_sec: f64,
    /// Compiled-engine cycles/sec on the same fabric and workload at
    /// [`BenchReport::engine_shards`] shards.
    pub sharded_cycles_per_sec: f64,
    /// Full cycles/sec-vs-shard-count sweep over several fabric sizes.
    pub bench_scale: Vec<ScaleFabric>,
    /// Reduced-vs-unreduced model-check state counts and wall time at
    /// the 8/16-switch scale tiers (DESIGN.md §14).
    pub bench_model_check: Vec<ModelCheckBench>,
    /// Certificate-vs-explicit deadlock-verdict wall times at the
    /// 64/4K/64K-host fat-tree tiers (DESIGN.md §16).
    pub bench_certify: Vec<CertifyBench>,
}

/// One fabric tier of the deadlock-verdict benchmark: the O(routes)
/// rank-certificate checker over compressed reach sets against the
/// explicit channel-dependency-graph analysis, bounded at the default
/// `certify.cdg_budget` (DESIGN.md §16). At the 64K tier dense routing
/// tables are infeasible (gigabytes of bit-strings), so only the
/// symbolic compact path runs and the explicit columns record the skip.
#[derive(Debug, Clone)]
pub struct CertifyBench {
    /// Host count of the fabric (`k^n` for the k-ary n-tree tier).
    pub hosts: usize,
    /// Switch count of the fabric.
    pub switches: usize,
    /// Channels the certificate checker enumerated.
    pub channels: usize,
    /// Dependency edges the certificate checker verified for rank
    /// descent (each visited exactly once, never stored).
    pub dependencies: usize,
    /// The certificate accepted the fabric.
    pub certify_ok: bool,
    /// Wall time of the certificate path (table compression + descent
    /// check), seconds.
    pub certify_secs: f64,
    /// Dependency-edge budget the explicit enumeration ran under (0
    /// when it was not attempted).
    pub explicit_budget: usize,
    /// Dependency edges the explicit enumeration actually built (0 when
    /// it was not attempted).
    pub explicit_deps: usize,
    /// The explicit enumeration finished inside its budget.
    pub explicit_completed: bool,
    /// The explicit analysis accepted the fabric (meaningful only when
    /// it completed).
    pub explicit_ok: bool,
    /// Wall time of the explicit path, seconds (0 when not attempted).
    pub explicit_secs: f64,
    /// Dense per-port destination bit-strings fit in memory at this
    /// tier; `false` = the symbolic compact path only, no explicit CDG.
    pub dense_feasible: bool,
    /// Certificate and explicit verdicts agree wherever both were
    /// reached (vacuously true past the explicit path's budget).
    pub verdicts_agree: bool,
}

/// One fabric tier of the model-check scale benchmark: the unreduced
/// oracle, the symmetry+POR-reduced exact checker, and the
/// compositional checker over the same scenarios and state budget.
#[derive(Debug, Clone)]
pub struct ModelCheckBench {
    /// Fabric-size bound of the tier (largest scenario explored).
    pub switches: usize,
    /// States the unreduced oracle explored before finishing or
    /// exhausting the budget.
    pub unreduced_states: usize,
    /// Whether the oracle delivered a verdict (`false` = state-bound
    /// exhausted; `unreduced_states` is then the budget it burned).
    pub unreduced_completed: bool,
    /// Wall time of the unreduced run, seconds.
    pub unreduced_secs: f64,
    /// States the symmetry+POR-reduced exact checker explored.
    pub reduced_states: usize,
    /// Wall time of the reduced run, seconds.
    pub reduced_secs: f64,
    /// `unreduced_states / reduced_states` — a lower bound on the true
    /// reduction when the oracle did not complete.
    pub reduction_factor: f64,
    /// States the compositional (per-switch) checker explored.
    pub compositional_states: usize,
    /// Wall time of the compositional run, seconds.
    pub compositional_secs: f64,
}

/// Cycle rate of one fabric size at one shard count.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Shard count the compiled schedule was cut into.
    pub shards: usize,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Component ticks actually executed.
    pub ticks_run: u64,
    /// Component ticks skipped as provably idle.
    pub ticks_skipped: u64,
}

/// One fabric's cycles/sec-vs-shards sweep, with the sequential oracle as
/// the shared baseline.
#[derive(Debug, Clone)]
pub struct ScaleFabric {
    /// Host count of the fabric.
    pub hosts: usize,
    /// Switch count of the fabric.
    pub switches: usize,
    /// Cycles each measurement simulated.
    pub cycles: u64,
    /// Sequential (uncompiled) cycles/sec on this fabric.
    pub sequential_cycles_per_sec: f64,
    /// Compiled-engine rates at each shard count.
    pub points: Vec<ScalePoint>,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON (hand-rolled; the
    /// workspace carries no serde dependency).
    pub fn json(&self) -> String {
        let mut fabrics = String::new();
        for (i, f) in self.bench_scale.iter().enumerate() {
            let mut points = String::new();
            for (j, p) in f.points.iter().enumerate() {
                points.push_str(&format!(
                    "        {{\"shards\": {}, \"cycles_per_sec\": {:.0}, \
                     \"ticks_run\": {}, \"ticks_skipped\": {}}}{}\n",
                    p.shards,
                    p.cycles_per_sec,
                    p.ticks_run,
                    p.ticks_skipped,
                    if j + 1 < f.points.len() { "," } else { "" },
                ));
            }
            fabrics.push_str(&format!(
                "    {{\n      \"hosts\": {},\n      \"switches\": {},\n      \
                 \"cycles\": {},\n      \"sequential_cycles_per_sec\": {:.0},\n      \
                 \"points\": [\n{points}      ]\n    }}{}\n",
                f.hosts,
                f.switches,
                f.cycles,
                f.sequential_cycles_per_sec,
                if i + 1 < self.bench_scale.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        let mut model_rows = String::new();
        for (i, m) in self.bench_model_check.iter().enumerate() {
            model_rows.push_str(&format!(
                "    {{\"switches\": {}, \"unreduced_states\": {}, \
                 \"unreduced_completed\": {}, \"unreduced_secs\": {:.3}, \
                 \"reduced_states\": {}, \"reduced_secs\": {:.3}, \
                 \"reduction_factor\": {:.1}, \"compositional_states\": {}, \
                 \"compositional_secs\": {:.3}}}{}\n",
                m.switches,
                m.unreduced_states,
                m.unreduced_completed,
                m.unreduced_secs,
                m.reduced_states,
                m.reduced_secs,
                m.reduction_factor,
                m.compositional_states,
                m.compositional_secs,
                if i + 1 < self.bench_model_check.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        let mut certify_rows = String::new();
        for (i, c) in self.bench_certify.iter().enumerate() {
            certify_rows.push_str(&format!(
                "    {{\"hosts\": {}, \"switches\": {}, \"channels\": {}, \
                 \"dependencies\": {}, \"certify_ok\": {}, \
                 \"certify_secs\": {:.3}, \"explicit_budget\": {}, \
                 \"explicit_deps\": {}, \"explicit_completed\": {}, \
                 \"explicit_ok\": {}, \"explicit_secs\": {:.3}, \
                 \"dense_feasible\": {}, \"verdicts_agree\": {}}}{}\n",
                c.hosts,
                c.switches,
                c.channels,
                c.dependencies,
                c.certify_ok,
                c.certify_secs,
                c.explicit_budget,
                c.explicit_deps,
                c.explicit_completed,
                c.explicit_ok,
                c.explicit_secs,
                c.dense_feasible,
                c.verdicts_agree,
                if i + 1 < self.bench_certify.len() {
                    ","
                } else {
                    ""
                },
            ));
        }
        format!(
            "{{\n  \"scale\": \"{}\",\n  \"exp\": \"{}\",\n  \"jobs_serial\": 1,\n  \
             \"jobs_parallel\": {},\n  \"host_cpus\": {},\n  \"serial_secs\": {:.3},\n  \
             \"parallel_secs\": {:.3},\n  \"speedup\": {:.3},\n  \
             \"outputs_identical\": {},\n  \"tables\": {},\n  \
             \"engine_cycles\": {},\n  \"engine_secs\": {:.3},\n  \
             \"engine_cycles_per_sec\": {:.0},\n  \
             \"storm_episodes\": {},\n  \"storm_p50_cycles\": {},\n  \
             \"storm_p99_cycles\": {},\n  \"storm_vet_p50_ns\": {},\n  \
             \"storm_vet_p99_ns\": {},\n  \
             \"crash_boundaries\": {},\n  \"crash_recoveries\": {},\n  \
             \"crash_recovery_p50_ns\": {},\n  \"crash_recovery_p99_ns\": {},\n  \
             \"engine_shards\": {},\n  \"sequential_cycles_per_sec\": {:.0},\n  \
             \"sharded_cycles_per_sec\": {:.0},\n  \
             \"bench_scale\": [\n{fabrics}  ],\n  \
             \"bench_model_check\": [\n{model_rows}  ],\n  \
             \"bench_certify\": [\n{certify_rows}  ]\n}}\n",
            self.scale,
            self.exp,
            self.jobs_parallel,
            self.host_cpus,
            self.serial_secs,
            self.parallel_secs,
            self.speedup,
            self.outputs_identical,
            self.tables,
            self.engine_cycles,
            self.engine_secs,
            self.engine_cycles_per_sec,
            self.storm_episodes,
            self.storm_p50_cycles,
            self.storm_p99_cycles,
            self.storm_vet_p50_ns,
            self.storm_vet_p99_ns,
            self.crash_boundaries,
            self.crash_recoveries,
            self.crash_recovery_p50_ns,
            self.crash_recovery_p99_ns,
            self.engine_shards,
            self.sequential_cycles_per_sec,
            self.sharded_cycles_per_sec,
        )
    }
}

/// Detect→vet→install latency of the resident control plane under a
/// short scripted storm: p50/p99 in cycles (deterministic) plus the
/// wall-clock cost of the structural vet (host-dependent — the perf
/// number that moves when the analyzer moves).
///
/// Returns `(episodes, p50_cycles, p99_cycles, vet_p50_ns, vet_p99_ns)`.
pub fn storm_latency() -> (usize, u64, u64, u64, u64) {
    use mdworm::respond::ResponseConfig;
    use mdworm::routed::{RoutedConfig, StormResponder};
    use mdworm::TopologyKind;

    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        recovery: Some(collectives::RecoveryConfig::default()),
        response: Some(ResponseConfig::default()),
        routed: Some(RoutedConfig::default()),
        ..SystemConfig::default()
    };
    let spec = TrafficSpec::multiple_multicast(0.04, 4, 16);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, Some(8_000));
    let mut sys = build_system(cfg, sources, None);
    // One cut per fabric-link pair boundary: fail, heal, fail the next —
    // enough episodes for stable percentiles without a long run.
    let fabric: Vec<_> = sys.links.fabric.iter().copied().take(4).collect();
    for (i, link) in fabric.iter().enumerate() {
        let start = 1_000 + 3_000 * i as u64;
        sys.engine.script_outage(*link, start, start + 1_500);
    }
    let mut storm =
        StormResponder::new(RoutedConfig::default(), ResponseConfig::default(), &mut sys);
    let end = 1_000 + 3_000 * fabric.len() as u64 + 4_000;
    while sys.engine.now() < end {
        sys.engine.run_for(32);
        storm.tick(&mut sys);
    }
    let resp = storm.responder();
    let lat = resp.latency();
    let vet = resp.vet_stats();
    (
        lat.count(),
        lat.percentile(50.0),
        lat.percentile(99.0),
        vet.structural_ns.percentile(50.0),
        vet.structural_ns.percentile(99.0),
    )
}

/// Restart→caught-up cost of the journaled control plane: a small
/// exhaustive crash sweep (the E19 shape — every protocol boundary,
/// clean and torn-tail) on the smallest multi-root tree, reporting the
/// CB-HW scheme's recovery-latency percentiles. This is the perf number
/// that moves when journal replay or episode re-drive moves.
///
/// Returns `(boundaries, recoveries, p50_ns, p99_ns)`.
pub fn crash_recovery_latency() -> (u64, u64, u64, u64) {
    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 2, n: 2 },
        ..SystemConfig::default()
    };
    let rows = mdworm::experiments::e19_crash_storm(&cfg, 400, 0.02, 2, 8);
    let r = rows.first().expect("e19 produces a CB-HW row");
    assert_eq!(
        (r.mismatches, r.torn_cycles),
        (0, 0),
        "the bench host reproduced a crash-recovery divergence: {r:?}"
    );
    (r.boundaries, r.recoveries, r.rec_p50_ns, r.rec_p99_ns)
}

/// Times one 64-processor engine under the default multiple-multicast
/// workload for `cycles` cycles; returns elapsed seconds.
///
/// This is the engine hot-path number: one engine, one core, no sweep
/// parallelism — it moves when `begin_cycle` skipping, counter
/// maintenance, and buffer preallocation move, not when the worker pool
/// grows.
pub fn engine_secs(cycles: u64) -> f64 {
    let cfg = SystemConfig::default();
    let spec = TrafficSpec::multiple_multicast(0.3, 16, 64);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
    let mut sys = build_system(cfg, sources, None);
    let t = Instant::now();
    sys.engine.run_for(cycles);
    t.elapsed().as_secs_f64()
}

/// Times one fabric for `cycles` cycles of the scale workload at a given
/// shard count (`0` = the sequential, uncompiled oracle). Returns elapsed
/// seconds plus the compiled engine's `(ticks_run, ticks_skipped)`.
fn scale_run(cfg: &SystemConfig, cycles: u64, shards: usize) -> (f64, u64, u64) {
    // Light load: the regime the compiled schedule is built for — most
    // switches are provably idle most cycles, so the quiescence skipping
    // that makes the sharded engine fast actually has idleness to harvest.
    let spec = TrafficSpec::multiple_multicast(0.02, 4, 16);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
    let mut sys = build_system(cfg.clone(), sources, None);
    if shards > 0 {
        sys.engine.set_shards(shards);
    }
    let t = Instant::now();
    sys.engine.run_for(cycles);
    let secs = t.elapsed().as_secs_f64();
    let (run, skipped) = sys
        .engine
        .sharding_stats()
        .map_or((0, 0), |s| (s.ticks_run, s.ticks_skipped));
    (secs, run, skipped)
}

/// Sweeps cycles/sec against shard count on several fabric sizes, with
/// the sequential oracle measured side-by-side on each fabric. The
/// per-fabric baseline and the shard points run the identical workload,
/// so the ratio is purely the engine's scheduling overhead vs the ticks
/// it avoids.
pub fn bench_scale(cycles: u64) -> Vec<ScaleFabric> {
    let fabrics = [
        TopologyKind::KaryTree { k: 2, n: 4 }, // 16 hosts
        TopologyKind::KaryTree { k: 4, n: 3 }, // 64 hosts, the default
    ];
    fabrics
        .iter()
        .map(|&topology| {
            let cfg = SystemConfig {
                topology,
                ..SystemConfig::default()
            };
            let switches = {
                let spec = TrafficSpec::multiple_multicast(0.02, 4, 16);
                let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
                build_system(cfg.clone(), sources, None)
                    .topology
                    .n_switches()
            };
            let (seq_secs, _, _) = scale_run(&cfg, cycles, 0);
            let points = [1usize, 2, 4]
                .iter()
                .map(|&shards| {
                    let (secs, run, skipped) = scale_run(&cfg, cycles, shards);
                    ScalePoint {
                        shards,
                        cycles_per_sec: cycles as f64 / secs.max(1e-9),
                        ticks_run: run,
                        ticks_skipped: skipped,
                    }
                })
                .collect();
            ScaleFabric {
                hosts: cfg.n_hosts(),
                switches,
                cycles,
                sequential_cycles_per_sec: cycles as f64 / seq_secs.max(1e-9),
                points,
            }
        })
        .collect()
}

/// Measures the model checker's reductions at the 8/16-switch scale
/// tiers (DESIGN.md §14): the unreduced sequential oracle against the
/// symmetry+POR-reduced exact checker and the compositional per-switch
/// checker, all on the shipped default architecture (central-buffer,
/// asynchronous, return-only) with a 50k-state budget. The oracle is
/// *expected* to exhaust the budget at these tiers — that is recorded
/// honestly (`unreduced_completed: false`) rather than hidden, and the
/// reduction factor is then a lower bound.
pub fn bench_model_check() -> Vec<ModelCheckBench> {
    use mdw_analysis::{check_model_opts, ArchClass, CheckOutcome, ModelBounds, ModelOptions};
    use mintopo::route::ReplicatePolicy;

    let timed = |bounds: &ModelBounds, opts: &ModelOptions| {
        let t = Instant::now();
        let out = check_model_opts(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            bounds,
            opts,
        );
        (out, t.elapsed().as_secs_f64())
    };
    [8usize, 16]
        .iter()
        .map(|&switches| {
            let bounds = ModelBounds {
                max_switches: switches,
                max_states: 50_000,
                ..ModelBounds::default()
            };
            let (oracle, unreduced_secs) = timed(&bounds, &ModelOptions::oracle());
            let (unreduced_states, unreduced_completed) = match &oracle {
                CheckOutcome::Verified(stats) => (stats.states, true),
                // The only violation the known-good default config can
                // produce is the state-bound; the budget it burned is
                // the honest state count.
                CheckOutcome::Violated(_) => (bounds.max_states, false),
            };
            let exact = ModelOptions {
                mode: mdw_analysis::ModelMode::Exact,
                ..ModelOptions::default()
            };
            let (reduced, reduced_secs) = timed(&bounds, &exact);
            let CheckOutcome::Verified(reduced_stats) = reduced else {
                panic!("reduced checker must verify the {switches}-switch tier: {reduced:?}");
            };
            let compositional = ModelOptions {
                mode: mdw_analysis::ModelMode::Compositional,
                ..ModelOptions::default()
            };
            let (comp, compositional_secs) = timed(&bounds, &compositional);
            let CheckOutcome::Verified(comp_stats) = comp else {
                panic!("compositional checker must verify the {switches}-switch tier: {comp:?}");
            };
            ModelCheckBench {
                switches,
                unreduced_states,
                unreduced_completed,
                unreduced_secs,
                reduced_states: reduced_stats.states,
                reduced_secs,
                reduction_factor: unreduced_states as f64 / reduced_stats.states.max(1) as f64,
                compositional_states: comp_stats.states,
                compositional_secs,
            }
        })
        .collect()
}

/// Times both deadlock-verdict paths (DESIGN.md §16) at three fat-tree
/// tiers: 64 hosts (explicit CDG completes, the verdicts must agree),
/// 4096 hosts (the explicit pass is *expected* to exhaust the default
/// `certify.cdg_budget` — recorded honestly, the certificate carries
/// the verdict), and 65 536 hosts, where dense destination bit-strings
/// would need gigabytes, so the tier runs only the symbolic compact
/// path (`dense_feasible: false`).
pub fn bench_certify() -> Vec<CertifyBench> {
    vec![
        certify_dense_tier(4, 3),
        certify_dense_tier(4, 6),
        certify_symbolic_tier(4, 8),
    ]
}

/// One tier where dense tables fit: both paths run and are timed via
/// [`SystemConfig::certify_comparison`].
fn certify_dense_tier(k: usize, n: usize) -> CertifyBench {
    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k, n },
        ..SystemConfig::default()
    };
    let cmp = cfg.certify_comparison();
    CertifyBench {
        hosts: k.pow(n as u32),
        switches: n * k.pow(n as u32 - 1),
        channels: cmp.channels,
        dependencies: cmp.dependencies,
        certify_ok: cmp.certify_ok,
        certify_secs: cmp.certify_secs,
        explicit_budget: cmp.explicit_budget,
        explicit_deps: cmp.explicit_deps,
        explicit_completed: cmp.explicit_completed,
        explicit_ok: cmp.explicit_ok,
        explicit_secs: cmp.explicit_secs,
        dense_feasible: true,
        verdicts_agree: cmp.agree,
    }
}

/// One tier past dense feasibility: closed-form compressed tables and
/// the parametric certificate, no dense strings ever materialized. The
/// explicit columns are zeroed — the comparison point at this scale is
/// that there *is* no affordable explicit run.
fn certify_symbolic_tier(k: usize, n: usize) -> CertifyBench {
    use mdw_analysis::{Certificate, CompactTables};
    use mintopo::KaryTree;

    let tree = KaryTree::new(k, n);
    let t = Instant::now();
    let tables = CompactTables::for_karytree(&tree);
    let cert = Certificate::for_karytree(&tree);
    let out = cert.check(tree.topology(), &tables);
    let certify_secs = t.elapsed().as_secs_f64();
    CertifyBench {
        hosts: tree.n_hosts(),
        switches: tree.topology().n_switches(),
        channels: out.channels,
        dependencies: out.dependencies,
        certify_ok: out.mismatch.is_none() && out.violations.is_empty(),
        certify_secs,
        explicit_budget: 0,
        explicit_deps: 0,
        explicit_completed: false,
        explicit_ok: false,
        explicit_secs: 0.0,
        dense_feasible: false,
        verdicts_agree: true,
    }
}

/// Runs the suite serially (jobs = 1), then with `jobs_parallel` workers,
/// verifies the outputs are byte-identical, and times the raw engine.
/// Returns the report and the parallel pass's tables (for writing to
/// `results/`).
///
/// Restores the worker-pool override to `jobs_parallel` on return.
pub fn bench_sweep(
    base: &SystemConfig,
    scale: Scale,
    exp: &str,
    jobs_parallel: usize,
    engine_cycles: u64,
) -> (BenchReport, Vec<Table>) {
    sweep::set_jobs(1);
    let t = Instant::now();
    let serial = run_suite(base, scale, exp);
    let serial_secs = t.elapsed().as_secs_f64();

    sweep::set_jobs(jobs_parallel);
    // Record the pool the pass actually ran with: `jobs()` clamps the
    // request to the host's CPU count (see the 0.888 "speedup" this file
    // once recorded from oversubscribing a 1-core host).
    let jobs_parallel = sweep::jobs();
    let t = Instant::now();
    let parallel = run_suite(base, scale, exp);
    let parallel_secs = t.elapsed().as_secs_f64();

    let outputs_identical = serial == parallel;
    let eng_secs = engine_secs(engine_cycles);
    let (storm_episodes, storm_p50, storm_p99, vet_p50, vet_p99) = storm_latency();
    let (crash_boundaries, crash_recoveries, crash_p50, crash_p99) = crash_recovery_latency();
    let scale_fabrics = bench_scale(engine_cycles / 10);
    // Headline: the 2-shard compiled engine vs the sequential oracle on
    // the largest fabric swept.
    let headline = scale_fabrics.last().expect("bench_scale is non-empty");
    let engine_shards = 2;
    let sequential_cycles_per_sec = headline.sequential_cycles_per_sec;
    let sharded_cycles_per_sec = headline
        .points
        .iter()
        .find(|p| p.shards == engine_shards)
        .expect("2-shard point present")
        .cycles_per_sec;
    let report = BenchReport {
        scale: format!("{scale:?}").to_lowercase(),
        exp: exp.to_string(),
        jobs_parallel,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs.max(1e-9),
        outputs_identical,
        tables: parallel.len(),
        engine_cycles,
        engine_secs: eng_secs,
        engine_cycles_per_sec: engine_cycles as f64 / eng_secs.max(1e-9),
        storm_episodes,
        storm_p50_cycles: storm_p50,
        storm_p99_cycles: storm_p99,
        storm_vet_p50_ns: vet_p50,
        storm_vet_p99_ns: vet_p99,
        crash_boundaries,
        crash_recoveries,
        crash_recovery_p50_ns: crash_p50,
        crash_recovery_p99_ns: crash_p99,
        engine_shards,
        sequential_cycles_per_sec,
        sharded_cycles_per_sec,
        bench_scale: scale_fabrics,
        bench_model_check: bench_model_check(),
        bench_certify: bench_certify(),
    };
    (report, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_wellformed() {
        let r = BenchReport {
            scale: "quick".into(),
            exp: "all".into(),
            jobs_parallel: 4,
            host_cpus: 8,
            serial_secs: 10.0,
            parallel_secs: 4.0,
            speedup: 2.5,
            outputs_identical: true,
            tables: 14,
            engine_cycles: 30_000,
            engine_secs: 0.5,
            engine_cycles_per_sec: 60_000.0,
            storm_episodes: 8,
            storm_p50_cycles: 256,
            storm_p99_cycles: 257,
            storm_vet_p50_ns: 1_000,
            storm_vet_p99_ns: 2_000,
            crash_boundaries: 40,
            crash_recoveries: 80,
            crash_recovery_p50_ns: 12_000,
            crash_recovery_p99_ns: 48_000,
            engine_shards: 2,
            sequential_cycles_per_sec: 50_000.0,
            sharded_cycles_per_sec: 90_000.0,
            bench_scale: vec![ScaleFabric {
                hosts: 16,
                switches: 8,
                cycles: 20_000,
                sequential_cycles_per_sec: 50_000.0,
                points: vec![
                    ScalePoint {
                        shards: 1,
                        cycles_per_sec: 88_000.0,
                        ticks_run: 1_000,
                        ticks_skipped: 9_000,
                    },
                    ScalePoint {
                        shards: 2,
                        cycles_per_sec: 90_000.0,
                        ticks_run: 1_000,
                        ticks_skipped: 9_000,
                    },
                ],
            }],
            bench_model_check: vec![ModelCheckBench {
                switches: 16,
                unreduced_states: 50_000,
                unreduced_completed: false,
                unreduced_secs: 1.25,
                reduced_states: 2_000,
                reduced_secs: 0.05,
                reduction_factor: 25.0,
                compositional_states: 500,
                compositional_secs: 0.01,
            }],
            bench_certify: vec![CertifyBench {
                hosts: 65_536,
                switches: 131_072,
                channels: 1_310_720,
                dependencies: 5_242_880,
                certify_ok: true,
                certify_secs: 0.42,
                explicit_budget: 0,
                explicit_deps: 0,
                explicit_completed: false,
                explicit_ok: false,
                explicit_secs: 0.0,
                dense_feasible: false,
                verdicts_agree: true,
            }],
        };
        let j = r.json();
        assert!(j.contains("\"speedup\": 2.500"));
        assert!(j.contains("\"outputs_identical\": true"));
        assert!(j.contains("\"jobs_serial\": 1"));
        assert!(j.contains("\"storm_p99_cycles\": 257"));
        assert!(j.contains("\"crash_recovery_p99_ns\": 48000"));
        assert!(j.contains("\"crash_boundaries\": 40"));
        assert!(j.contains("\"engine_shards\": 2"));
        assert!(j.contains("\"sharded_cycles_per_sec\": 90000"));
        assert!(j.contains("\"bench_scale\": ["));
        assert!(j.contains("{\"shards\": 2, \"cycles_per_sec\": 90000"));
        assert!(j.contains("\"ticks_skipped\": 9000}"));
        assert!(j.contains("\"bench_model_check\": ["));
        assert!(j.contains("\"switches\": 16, \"unreduced_states\": 50000"));
        assert!(j.contains("\"unreduced_completed\": false"));
        assert!(j.contains("\"reduction_factor\": 25.0"));
        assert!(j.contains("\"bench_certify\": ["));
        assert!(j.contains("{\"hosts\": 65536, \"switches\": 131072"));
        assert!(j.contains("\"dense_feasible\": false"));
        assert!(j.contains("\"verdicts_agree\": true}"));
        assert!(j.ends_with("}\n"));
    }

    /// The small dense tier runs both verdict paths to completion and
    /// they agree; the symbolic tier at the same shape enumerates the
    /// identical channel and dependency counts without ever building a
    /// dense table.
    #[test]
    fn certify_tiers_agree_where_both_paths_reach() {
        let dense = certify_dense_tier(4, 3);
        assert!(dense.dense_feasible && dense.certify_ok, "{dense:?}");
        assert!(dense.explicit_completed && dense.explicit_ok, "{dense:?}");
        assert!(dense.verdicts_agree, "{dense:?}");
        assert_eq!((dense.hosts, dense.switches), (64, 48));

        let sym = certify_symbolic_tier(4, 3);
        assert!(!sym.dense_feasible && sym.certify_ok, "{sym:?}");
        assert_eq!(sym.explicit_budget, 0, "explicit path never attempted");
        assert_eq!(
            (sym.channels, sym.dependencies),
            (dense.channels, dense.dependencies),
            "symbolic and dense enumerations must count the same fabric"
        );
    }

    /// The model-check scale benchmark records the §14 claim: at both
    /// tiers the unreduced oracle exhausts its budget while the reduced
    /// and compositional checkers verify with ≥10× fewer states.
    #[test]
    fn bench_model_check_shows_the_reduction() {
        let rows = bench_model_check();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(
                !row.unreduced_completed,
                "{}-switch tier: the oracle finishing means the tier is too easy",
                row.switches
            );
            assert!(row.reduction_factor >= 10.0, "{row:?}");
            assert!(row.reduced_states * 10 <= row.unreduced_states, "{row:?}");
            assert!(row.compositional_states > 0, "{row:?}");
        }
    }

    #[test]
    fn engine_microbench_runs() {
        assert!(engine_secs(200) > 0.0);
    }

    /// The scale sweep runs, skips real work on every fabric, and its
    /// compiled points simulated exactly `cycles` cycles' worth of ticks.
    #[test]
    fn bench_scale_skips_ticks_on_every_fabric() {
        let fabrics = bench_scale(400);
        assert_eq!(fabrics.len(), 2);
        for f in &fabrics {
            assert!(f.switches > 1, "scale fabric must be multi-switch");
            assert!(f.sequential_cycles_per_sec > 0.0);
            assert_eq!(f.points.len(), 3);
            for p in &f.points {
                assert!(p.cycles_per_sec > 0.0);
                assert!(p.ticks_skipped > 0, "{}h/{} shards", f.hosts, p.shards);
                let comps = (f.hosts + f.switches) as u64;
                assert_eq!(p.ticks_run + p.ticks_skipped, comps * f.cycles);
            }
        }
    }

    #[test]
    fn storm_microbench_records_episodes_and_ordered_percentiles() {
        let (episodes, p50, p99, vet_p50, vet_p99) = storm_latency();
        assert!(episodes >= 4, "{episodes} episodes");
        assert!(p50 > 0 && p99 >= p50, "cycle percentiles ordered");
        assert!(vet_p99 >= vet_p50, "vet percentiles ordered");
    }
}
