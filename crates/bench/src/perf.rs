//! Perf measurement: times the sweep suite serial vs parallel and the raw
//! engine cycle rate, and serializes the result as `BENCH_sweep.json` —
//! the repo's recorded performance trajectory.

use crate::suite::{run_suite, Table};
use crate::Scale;
use mdworm::{build_system, make_sources, sweep, SystemConfig, TrafficSpec};
use std::time::Instant;

/// Outcome of one `figures --bench` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale the suite ran at (`full` / `quick`).
    pub scale: String,
    /// Experiment filter (`all` or one id).
    pub exp: String,
    /// Worker-pool size of the parallel pass.
    pub jobs_parallel: usize,
    /// CPUs available on the benchmarking host — the speedup ceiling.
    /// On a single-core host the parallel pass cannot beat serial.
    pub host_cpus: usize,
    /// Wall-clock of the serial pass (jobs = 1), seconds.
    pub serial_secs: f64,
    /// Wall-clock of the parallel pass, seconds.
    pub parallel_secs: f64,
    /// serial_secs / parallel_secs.
    pub speedup: f64,
    /// Serial and parallel passes produced byte-identical tables.
    pub outputs_identical: bool,
    /// Number of tables rendered per pass.
    pub tables: usize,
    /// Cycles simulated by the single-engine microbench.
    pub engine_cycles: u64,
    /// Wall-clock of the microbench, seconds.
    pub engine_secs: f64,
    /// Simulated cycles per wall-clock second (single engine, one core).
    pub engine_cycles_per_sec: f64,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON (hand-rolled; the
    /// workspace carries no serde dependency).
    pub fn json(&self) -> String {
        format!(
            "{{\n  \"scale\": \"{}\",\n  \"exp\": \"{}\",\n  \"jobs_serial\": 1,\n  \
             \"jobs_parallel\": {},\n  \"host_cpus\": {},\n  \"serial_secs\": {:.3},\n  \
             \"parallel_secs\": {:.3},\n  \"speedup\": {:.3},\n  \
             \"outputs_identical\": {},\n  \"tables\": {},\n  \
             \"engine_cycles\": {},\n  \"engine_secs\": {:.3},\n  \
             \"engine_cycles_per_sec\": {:.0}\n}}\n",
            self.scale,
            self.exp,
            self.jobs_parallel,
            self.host_cpus,
            self.serial_secs,
            self.parallel_secs,
            self.speedup,
            self.outputs_identical,
            self.tables,
            self.engine_cycles,
            self.engine_secs,
            self.engine_cycles_per_sec,
        )
    }
}

/// Times one 64-processor engine under the default multiple-multicast
/// workload for `cycles` cycles; returns elapsed seconds.
///
/// This is the engine hot-path number: one engine, one core, no sweep
/// parallelism — it moves when `begin_cycle` skipping, counter
/// maintenance, and buffer preallocation move, not when the worker pool
/// grows.
pub fn engine_secs(cycles: u64) -> f64 {
    let cfg = SystemConfig::default();
    let spec = TrafficSpec::multiple_multicast(0.3, 16, 64);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
    let mut sys = build_system(cfg, sources, None);
    let t = Instant::now();
    sys.engine.run_for(cycles);
    t.elapsed().as_secs_f64()
}

/// Runs the suite serially (jobs = 1), then with `jobs_parallel` workers,
/// verifies the outputs are byte-identical, and times the raw engine.
/// Returns the report and the parallel pass's tables (for writing to
/// `results/`).
///
/// Restores the worker-pool override to `jobs_parallel` on return.
pub fn bench_sweep(
    base: &SystemConfig,
    scale: Scale,
    exp: &str,
    jobs_parallel: usize,
    engine_cycles: u64,
) -> (BenchReport, Vec<Table>) {
    sweep::set_jobs(1);
    let t = Instant::now();
    let serial = run_suite(base, scale, exp);
    let serial_secs = t.elapsed().as_secs_f64();

    sweep::set_jobs(jobs_parallel);
    let t = Instant::now();
    let parallel = run_suite(base, scale, exp);
    let parallel_secs = t.elapsed().as_secs_f64();

    let outputs_identical = serial == parallel;
    let eng_secs = engine_secs(engine_cycles);
    let report = BenchReport {
        scale: format!("{scale:?}").to_lowercase(),
        exp: exp.to_string(),
        jobs_parallel,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs.max(1e-9),
        outputs_identical,
        tables: parallel.len(),
        engine_cycles,
        engine_secs: eng_secs,
        engine_cycles_per_sec: engine_cycles as f64 / eng_secs.max(1e-9),
    };
    (report, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_wellformed() {
        let r = BenchReport {
            scale: "quick".into(),
            exp: "all".into(),
            jobs_parallel: 4,
            host_cpus: 8,
            serial_secs: 10.0,
            parallel_secs: 4.0,
            speedup: 2.5,
            outputs_identical: true,
            tables: 14,
            engine_cycles: 30_000,
            engine_secs: 0.5,
            engine_cycles_per_sec: 60_000.0,
        };
        let j = r.json();
        assert!(j.contains("\"speedup\": 2.500"));
        assert!(j.contains("\"outputs_identical\": true"));
        assert!(j.contains("\"jobs_serial\": 1"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn engine_microbench_runs() {
        assert!(engine_secs(200) > 0.0);
    }
}
