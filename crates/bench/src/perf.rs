//! Perf measurement: times the sweep suite serial vs parallel and the raw
//! engine cycle rate, and serializes the result as `BENCH_sweep.json` —
//! the repo's recorded performance trajectory.

use crate::suite::{run_suite, Table};
use crate::Scale;
use mdworm::{build_system, make_sources, sweep, SystemConfig, TrafficSpec};
use std::time::Instant;

/// Outcome of one `figures --bench` run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale the suite ran at (`full` / `quick`).
    pub scale: String,
    /// Experiment filter (`all` or one id).
    pub exp: String,
    /// Worker-pool size of the parallel pass.
    pub jobs_parallel: usize,
    /// CPUs available on the benchmarking host — the speedup ceiling.
    /// On a single-core host the parallel pass cannot beat serial.
    pub host_cpus: usize,
    /// Wall-clock of the serial pass (jobs = 1), seconds.
    pub serial_secs: f64,
    /// Wall-clock of the parallel pass, seconds.
    pub parallel_secs: f64,
    /// serial_secs / parallel_secs.
    pub speedup: f64,
    /// Serial and parallel passes produced byte-identical tables.
    pub outputs_identical: bool,
    /// Number of tables rendered per pass.
    pub tables: usize,
    /// Cycles simulated by the single-engine microbench.
    pub engine_cycles: u64,
    /// Wall-clock of the microbench, seconds.
    pub engine_secs: f64,
    /// Simulated cycles per wall-clock second (single engine, one core).
    pub engine_cycles_per_sec: f64,
    /// Detect→install episodes in the storm microbench.
    pub storm_episodes: usize,
    /// p50 detect→install latency of the storm microbench, cycles.
    pub storm_p50_cycles: u64,
    /// p99 detect→install latency of the storm microbench, cycles.
    pub storm_p99_cycles: u64,
    /// p50 wall time of a structural reroute vet, nanoseconds.
    pub storm_vet_p50_ns: u64,
    /// p99 wall time of a structural reroute vet, nanoseconds.
    pub storm_vet_p99_ns: u64,
}

impl BenchReport {
    /// Serializes the report as pretty-printed JSON (hand-rolled; the
    /// workspace carries no serde dependency).
    pub fn json(&self) -> String {
        format!(
            "{{\n  \"scale\": \"{}\",\n  \"exp\": \"{}\",\n  \"jobs_serial\": 1,\n  \
             \"jobs_parallel\": {},\n  \"host_cpus\": {},\n  \"serial_secs\": {:.3},\n  \
             \"parallel_secs\": {:.3},\n  \"speedup\": {:.3},\n  \
             \"outputs_identical\": {},\n  \"tables\": {},\n  \
             \"engine_cycles\": {},\n  \"engine_secs\": {:.3},\n  \
             \"engine_cycles_per_sec\": {:.0},\n  \
             \"storm_episodes\": {},\n  \"storm_p50_cycles\": {},\n  \
             \"storm_p99_cycles\": {},\n  \"storm_vet_p50_ns\": {},\n  \
             \"storm_vet_p99_ns\": {}\n}}\n",
            self.scale,
            self.exp,
            self.jobs_parallel,
            self.host_cpus,
            self.serial_secs,
            self.parallel_secs,
            self.speedup,
            self.outputs_identical,
            self.tables,
            self.engine_cycles,
            self.engine_secs,
            self.engine_cycles_per_sec,
            self.storm_episodes,
            self.storm_p50_cycles,
            self.storm_p99_cycles,
            self.storm_vet_p50_ns,
            self.storm_vet_p99_ns,
        )
    }
}

/// Detect→vet→install latency of the resident control plane under a
/// short scripted storm: p50/p99 in cycles (deterministic) plus the
/// wall-clock cost of the structural vet (host-dependent — the perf
/// number that moves when the analyzer moves).
///
/// Returns `(episodes, p50_cycles, p99_cycles, vet_p50_ns, vet_p99_ns)`.
pub fn storm_latency() -> (usize, u64, u64, u64, u64) {
    use mdworm::respond::ResponseConfig;
    use mdworm::routed::{RoutedConfig, StormResponder};
    use mdworm::TopologyKind;

    let cfg = SystemConfig {
        topology: TopologyKind::KaryTree { k: 4, n: 2 },
        recovery: Some(collectives::RecoveryConfig::default()),
        response: Some(ResponseConfig::default()),
        routed: Some(RoutedConfig::default()),
        ..SystemConfig::default()
    };
    let spec = TrafficSpec::multiple_multicast(0.04, 4, 16);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, Some(8_000));
    let mut sys = build_system(cfg, sources, None);
    // One cut per fabric-link pair boundary: fail, heal, fail the next —
    // enough episodes for stable percentiles without a long run.
    let fabric: Vec<_> = sys.links.fabric.iter().copied().take(4).collect();
    for (i, link) in fabric.iter().enumerate() {
        let start = 1_000 + 3_000 * i as u64;
        sys.engine.script_outage(*link, start, start + 1_500);
    }
    let mut storm =
        StormResponder::new(RoutedConfig::default(), ResponseConfig::default(), &mut sys);
    let end = 1_000 + 3_000 * fabric.len() as u64 + 4_000;
    while sys.engine.now() < end {
        sys.engine.run_for(32);
        storm.tick(&mut sys);
    }
    let resp = storm.responder();
    let lat = resp.latency();
    let vet = resp.vet_stats();
    (
        lat.count(),
        lat.percentile(50.0),
        lat.percentile(99.0),
        vet.structural_ns.percentile(50.0),
        vet.structural_ns.percentile(99.0),
    )
}

/// Times one 64-processor engine under the default multiple-multicast
/// workload for `cycles` cycles; returns elapsed seconds.
///
/// This is the engine hot-path number: one engine, one core, no sweep
/// parallelism — it moves when `begin_cycle` skipping, counter
/// maintenance, and buffer preallocation move, not when the worker pool
/// grows.
pub fn engine_secs(cycles: u64) -> f64 {
    let cfg = SystemConfig::default();
    let spec = TrafficSpec::multiple_multicast(0.3, 16, 64);
    let sources = make_sources(&spec, cfg.n_hosts(), cfg.seed, None);
    let mut sys = build_system(cfg, sources, None);
    let t = Instant::now();
    sys.engine.run_for(cycles);
    t.elapsed().as_secs_f64()
}

/// Runs the suite serially (jobs = 1), then with `jobs_parallel` workers,
/// verifies the outputs are byte-identical, and times the raw engine.
/// Returns the report and the parallel pass's tables (for writing to
/// `results/`).
///
/// Restores the worker-pool override to `jobs_parallel` on return.
pub fn bench_sweep(
    base: &SystemConfig,
    scale: Scale,
    exp: &str,
    jobs_parallel: usize,
    engine_cycles: u64,
) -> (BenchReport, Vec<Table>) {
    sweep::set_jobs(1);
    let t = Instant::now();
    let serial = run_suite(base, scale, exp);
    let serial_secs = t.elapsed().as_secs_f64();

    sweep::set_jobs(jobs_parallel);
    let t = Instant::now();
    let parallel = run_suite(base, scale, exp);
    let parallel_secs = t.elapsed().as_secs_f64();

    let outputs_identical = serial == parallel;
    let eng_secs = engine_secs(engine_cycles);
    let (storm_episodes, storm_p50, storm_p99, vet_p50, vet_p99) = storm_latency();
    let report = BenchReport {
        scale: format!("{scale:?}").to_lowercase(),
        exp: exp.to_string(),
        jobs_parallel,
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        speedup: serial_secs / parallel_secs.max(1e-9),
        outputs_identical,
        tables: parallel.len(),
        engine_cycles,
        engine_secs: eng_secs,
        engine_cycles_per_sec: engine_cycles as f64 / eng_secs.max(1e-9),
        storm_episodes,
        storm_p50_cycles: storm_p50,
        storm_p99_cycles: storm_p99,
        storm_vet_p50_ns: vet_p50,
        storm_vet_p99_ns: vet_p99,
    };
    (report, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_is_wellformed() {
        let r = BenchReport {
            scale: "quick".into(),
            exp: "all".into(),
            jobs_parallel: 4,
            host_cpus: 8,
            serial_secs: 10.0,
            parallel_secs: 4.0,
            speedup: 2.5,
            outputs_identical: true,
            tables: 14,
            engine_cycles: 30_000,
            engine_secs: 0.5,
            engine_cycles_per_sec: 60_000.0,
            storm_episodes: 8,
            storm_p50_cycles: 256,
            storm_p99_cycles: 257,
            storm_vet_p50_ns: 1_000,
            storm_vet_p99_ns: 2_000,
        };
        let j = r.json();
        assert!(j.contains("\"speedup\": 2.500"));
        assert!(j.contains("\"outputs_identical\": true"));
        assert!(j.contains("\"jobs_serial\": 1"));
        assert!(j.contains("\"storm_p99_cycles\": 257"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn engine_microbench_runs() {
        assert!(engine_secs(200) > 0.0);
    }

    #[test]
    fn storm_microbench_records_episodes_and_ordered_percentiles() {
        let (episodes, p50, p99, vet_p50, vet_p99) = storm_latency();
        assert!(episodes >= 4, "{episodes} episodes");
        assert!(p50 > 0 && p99 >= p50, "cycle percentiles ordered");
        assert!(vet_p99 >= vet_p50, "vet percentiles ordered");
    }
}
