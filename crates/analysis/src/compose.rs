//! Compositional (assume-guarantee) model checking (DESIGN.md §14).
//!
//! Instead of exploring a fabric's joint state space, [`check_scenario`]
//! decomposes a scenario plan per switch and checks each switch against
//! an **abstracted environment** whose behavior is bounded by the
//! chunk/credit interface invariants the exact checker establishes on
//! the two-switch fabrics:
//!
//! * **Upstream feed** — a parent visit on a neighboring switch delivers
//!   chunks *monotonically*: the cut-through fill of a visit only ever
//!   grows, one chunk at a time, up to the worm length, at any
//!   interleaving. The stub ([`Target`]-feeding `env_fed` visits plus the
//!   `EnvDeliver` transition) does exactly that, nondeterministically —
//!   covering every schedule a real neighbor could produce, including
//!   ones where it never delivers more (which is when local deadlocks
//!   must still be detectable).
//! * **Downstream acceptance** — a child switch eventually grants buffer
//!   space/credits for a stream crossing the link, and once granted the
//!   one-way flow-control state never revokes it (the head packet fits
//!   completely in its buffer — the paper's acceptance condition). The
//!   stub is the `env_ready` bit set by `EnvAccept`, required before a
//!   branch may advance into the environment.
//!
//! Both stub transitions are finite and strictly monotone, so the
//! sub-plan's state space stays a DAG and a per-switch deadlock,
//! conservation breach, or leak surfaces against *some* environment
//! schedule iff it can occur under a real neighbor obeying the
//! interface. The guarantee direction (each switch *provides* those
//! interface behaviors to its neighbors) is exactly what the exact
//! checker proves per architecture on the `pair-*` scenarios, once —
//! structurally identical sub-plans are deduplicated by signature and
//! proved a single time per scenario.

use crate::checks::ArchClass;
use crate::model::{
    run_plan, ModelBounds, ModelOptions, Plan, PlanBranch, ScenarioStats, Target, Violation, Visit,
};
use std::collections::HashSet;

/// One switch of a decomposed scenario: the local plan with environment
/// stubs, and a structural signature for dedup.
pub(crate) struct SubPlan {
    /// Global switch index the sub-plan models (local index 0).
    pub(crate) sw: usize,
    /// The per-switch plan: all visits at `sw`, cross-switch branches
    /// replaced by [`Target::Env`] stubs, upstream feeds marked
    /// `env_fed`.
    pub(crate) plan: Plan,
    /// Structural signature: sub-plans with equal signatures are
    /// isomorphic and need only one proof.
    pub(crate) sig: Vec<u8>,
}

impl std::fmt::Debug for SubPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubPlan")
            .field("sw", &self.sw)
            .field("visits", &self.plan.visits.len())
            .finish()
    }
}

/// Decomposes a full scenario plan into one [`SubPlan`] per switch that
/// hosts at least one visit.
pub(crate) fn decompose(plan: &Plan) -> Vec<SubPlan> {
    let mut switches: Vec<usize> = plan.visits.iter().map(|v| v.sw).collect();
    switches.sort_unstable();
    switches.dedup();
    switches
        .into_iter()
        .map(|sw| {
            let mut local_of = vec![usize::MAX; plan.visits.len()];
            let locals: Vec<usize> = plan
                .visits
                .iter()
                .enumerate()
                .filter(|(_, v)| v.sw == sw)
                .map(|(i, _)| i)
                .collect();
            for (li, &gi) in locals.iter().enumerate() {
                local_of[gi] = li;
            }
            let mut env_slots = 0usize;
            let mut visits = Vec::with_capacity(locals.len());
            let mut sig = Vec::new();
            for &gi in &locals {
                let v = &plan.visits[gi];
                let env_fed = v.parent.is_some();
                let branches: Vec<PlanBranch> = v
                    .branches
                    .iter()
                    .map(|b| PlanBranch {
                        out_port: b.out_port,
                        target: match b.target {
                            Target::Host(h) => Target::Host(h),
                            // Cross-switch hop: one fresh one-way stub
                            // slot per crossing branch.
                            Target::Visit(_) | Target::Env(_) => {
                                let slot = env_slots;
                                env_slots += 1;
                                Target::Env(slot)
                            }
                        },
                    })
                    .collect();
                // Structural signature of the localized visit.
                sig.extend_from_slice(&(v.in_port as u32).to_le_bytes());
                sig.push(u8::from(v.descending));
                sig.push(u8::from(env_fed));
                sig.push(branches.len() as u8);
                for b in &branches {
                    sig.extend_from_slice(&(b.out_port as u32).to_le_bytes());
                    sig.push(match b.target {
                        Target::Host(_) => 0,
                        Target::Env(_) => 1,
                        Target::Visit(_) => unreachable!("just replaced"),
                    });
                }
                visits.push(Visit {
                    worm: v.worm,
                    sw: 0,
                    in_port: v.in_port,
                    descending: v.descending,
                    branches,
                    parent: None,
                    env_fed,
                });
            }
            let entries = visits
                .iter()
                .enumerate()
                .filter(|(_, v)| !v.env_fed)
                .map(|(i, _)| i)
                .collect();
            SubPlan {
                sw,
                plan: Plan {
                    visits,
                    entries,
                    worm_desc: plan.worm_desc.clone(),
                    env_slots,
                },
                sig,
            }
        })
        .collect()
}

/// Checks every structurally distinct per-switch sub-plan of a scenario.
/// Sub-scenario names are `"{name}@s{switch}"`, so a violation pinpoints
/// the concrete switch whose local plan fails (and
/// [`crate::replay_model_violation`] can rebuild exactly that sub-plan).
pub(crate) fn check_scenario(
    name: &str,
    plan: &Plan,
    arch: ArchClass,
    sync: bool,
    bounds: &ModelBounds,
    opts: &ModelOptions,
) -> Result<ScenarioStats, Box<Violation>> {
    let mut total = ScenarioStats::default();
    let mut proved: HashSet<Vec<u8>> = HashSet::new();
    for sub in decompose(plan) {
        if !proved.insert(sub.sig.clone()) {
            continue;
        }
        let sub_name = format!("{name}@s{}", sub.sw);
        // Symmetry is off for sub-plans: every visit shares switch 0, so
        // no worm is separable and rebuilding the group per sub-plan
        // would buy nothing.
        let s = run_plan(&sub_name, &sub.plan, arch, sync, bounds, opts, false)?;
        total.states += s.states;
        total.transitions += s.transitions;
        total.orbit_hits += s.orbit_hits;
        total.ample_skips += s.ample_skips;
    }
    Ok(total)
}
