//! Trace-conformance replay: a recorded simulator run re-driven through
//! the pure transition cores.
//!
//! The bounded model checker ([`crate::model`]) explores the *abstract*
//! machines in `switches::semantics`; this module closes the loop in the
//! other direction — a **refinement check** that the live switches
//! actually implement those machines. Each [`SemEvent`] recorded by a
//! `CentralBufferSwitch` carries both the transition *input* (who asked
//! for how many chunks, in which space class) and the *observable
//! outcome* (was the reservation granted, how many chunks were free
//! afterwards). Replay folds [`cq_step`] over the same inputs and demands
//! the same outcomes, event for event; any divergence means the simulator
//! and the model-checked semantics have drifted apart, and the trace
//! index pinpoints the first offending step.
//!
//! The `invariant-audit` feature runs this after every experiment
//! (`mdworm::sim::run_experiment`), so every CI simulation doubles as a
//! conformance test of the refactored step cores.

use crate::checks::ArchClass;
use crate::model::{self, ModelBounds, Violation};
use mintopo::route::ReplicatePolicy;
use netsim::trace::SemEvent;
use netsim::Cycle;
use std::collections::HashMap;
use switches::semantics::{cq_step, CqEffect, CqEvent, CqState};

/// The first point where a recorded trace and the abstract machine
/// disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// Index of the offending event in the recorded trace.
    pub index: usize,
    /// Simulation cycle the event was recorded at.
    pub cycle: Cycle,
    /// Raw id of the switch whose trace diverged.
    pub sw: u32,
    /// Human-readable description of the divergence.
    pub detail: String,
}

impl std::fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace event #{} (cycle {}, switch {}): {}",
            self.index, self.cycle, self.sw, self.detail
        )
    }
}

/// Coverage counters of a successful replay.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplayReport {
    /// Total events replayed.
    pub events: usize,
    /// Distinct switches that produced events.
    pub switches: usize,
    /// Reservation attempts replayed.
    pub reserves: usize,
    /// Chunk releases replayed.
    pub releases: usize,
    /// Quiesce purges replayed.
    pub purges: usize,
}

/// Replays a recorded central-queue trace against the pure [`CqState`]
/// machine.
///
/// `capacity` and `reserve` must match the `cq_chunks` /
/// `cq_down_reserve()` of the switches that produced the trace (every
/// switch of a fabric shares them). Events from different switches may be
/// interleaved in one trace; each switch is folded independently.
///
/// # Errors
///
/// Returns the first [`ReplayMismatch`] — the earliest event whose
/// recorded outcome differs from what the abstract transition produces.
pub fn replay_cq_trace(
    events: &[(Cycle, SemEvent)],
    capacity: usize,
    reserve: usize,
) -> Result<ReplayReport, Box<ReplayMismatch>> {
    let mut states: HashMap<u32, CqState> = HashMap::new();
    let mut report = ReplayReport::default();
    for (index, (cycle, ev)) in events.iter().enumerate() {
        report.events += 1;
        let fail = |sw: u32, detail: String| {
            Box::new(ReplayMismatch {
                index,
                cycle: *cycle,
                sw,
                detail,
            })
        };
        match ev {
            SemEvent::CqReserve {
                sw,
                input,
                need,
                descending,
                granted,
                free_after,
            } => {
                report.reserves += 1;
                let st = states
                    .entry(*sw)
                    .or_insert_with(|| CqState::new(capacity, reserve));
                let (next, effect) = cq_step(
                    st,
                    CqEvent::Reserve {
                        input: *input,
                        need: *need,
                        descending: *descending,
                    },
                );
                let model_granted = matches!(effect, CqEffect::Granted);
                if model_granted != *granted {
                    return Err(fail(
                        *sw,
                        format!(
                            "reservation (input {input}, need {need}, descending \
                             {descending}) recorded granted={granted} but the \
                             model says granted={model_granted}"
                        ),
                    ));
                }
                if next.free() != *free_after {
                    return Err(fail(
                        *sw,
                        format!(
                            "reservation left {free_after} chunks free in the \
                             simulator but {} in the model",
                            next.free()
                        ),
                    ));
                }
                *st = next;
            }
            SemEvent::CqRelease { sw, free_after } => {
                report.releases += 1;
                let Some(st) = states.get_mut(sw) else {
                    return Err(fail(
                        *sw,
                        "chunk release before any reservation — the simulator \
                         freed a chunk the model never allocated"
                            .to_string(),
                    ));
                };
                let (next, _) = cq_step(st, CqEvent::Release);
                if next.free() != *free_after {
                    return Err(fail(
                        *sw,
                        format!(
                            "release left {free_after} chunks free in the \
                             simulator but {} in the model",
                            next.free()
                        ),
                    ));
                }
                *st = next;
            }
            SemEvent::CqPurge { sw } => {
                report.purges += 1;
                states.insert(*sw, CqState::new(capacity, reserve));
            }
        }
    }
    report.switches = states.len();
    Ok(report)
}

/// Outcome of a successful [`replay_model_violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelReplay {
    /// Counterexample transitions re-executed against the rebuilt model.
    pub steps: usize,
    /// Report of the central-queue semantic-event replay, when the
    /// violation carried events (central-buffer scenarios).
    pub cq: Option<ReplayReport>,
}

/// Re-validates a model-checker counterexample end to end:
///
/// 1. rebuilds the violating scenario's plan (resolving compositional
///    `@s<switch>` sub-scenarios to the same per-switch decomposition)
///    and re-executes the trace transition by transition with the
///    *unreduced* successor relation, confirming every step is enabled
///    and the final state exhibits the claimed violation — this is what
///    makes reduced-mode traces trustworthy: whatever canonicalization
///    found them, the shipped trace is concrete and executable;
/// 2. when the violation carries [`SemEvent`]s, folds them through
///    [`replay_cq_trace`] so the counterexample's central-queue behavior
///    is also conformant with the pure machine the live switches run.
///
/// `arch`, `sync_replication`, `policy`, and `bounds` must match the
/// check that produced the violation.
///
/// # Errors
///
/// A description of the first divergence: a trace step that is not
/// enabled, a final state without the claimed violation, a violation
/// kind that carries no trace (`plan`, `state-bound`), or a
/// [`ReplayMismatch`] from the event replay.
pub fn replay_model_violation(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
    violation: &Violation,
) -> Result<ModelReplay, String> {
    let steps = model::reexecute_violation(arch, sync_replication, policy, bounds, violation)?;
    let cq = if violation.events.is_empty() {
        None
    } else {
        Some(
            replay_cq_trace(&violation.events, bounds.cq_chunks, bounds.cq_reserve)
                .map_err(|m| format!("counterexample event replay diverged: {m}"))?,
        )
    };
    Ok(ModelReplay { steps, cq })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserve(sw: u32, input: usize, need: usize, granted: bool, free_after: usize) -> SemEvent {
        SemEvent::CqReserve {
            sw,
            input,
            need,
            descending: false,
            granted,
            free_after,
        }
    }

    #[test]
    fn faithful_trace_replays_clean() {
        // Capacity 8, reserve 2 => the ascending pool is 6 chunks. Input 1
        // cannot reserve 4 more: it sweeps the 2 chunks above the floor
        // into its accumulator, collects 2 releases, then is granted.
        let events = vec![
            (1, reserve(0, 0, 4, true, 4)),
            (2, reserve(0, 1, 4, false, 2)),
            (
                3,
                SemEvent::CqRelease {
                    sw: 0,
                    free_after: 2,
                },
            ), // fed to waiter
            (
                4,
                SemEvent::CqRelease {
                    sw: 0,
                    free_after: 2,
                },
            ),
            (5, reserve(0, 1, 4, true, 2)), // owner collects
            (6, SemEvent::CqPurge { sw: 0 }),
            (7, reserve(0, 0, 1, true, 7)),
        ];
        let report = replay_cq_trace(&events, 8, 2).expect("faithful trace");
        assert_eq!(report.events, 7);
        assert_eq!(report.reserves, 4);
        assert_eq!(report.releases, 2);
        assert_eq!(report.purges, 1);
        assert_eq!(report.switches, 1);
    }

    #[test]
    fn wrong_grant_is_caught() {
        // Claims a 7-chunk ascending grant with only 6 above the floor.
        let events = vec![(1, reserve(0, 0, 7, true, 1))];
        let err = replay_cq_trace(&events, 8, 2).expect_err("impossible grant");
        assert_eq!(err.index, 0);
        assert!(err.detail.contains("granted=false"), "{}", err.detail);
    }

    #[test]
    fn wrong_free_count_is_caught() {
        let events = vec![(1, reserve(0, 0, 4, true, 3))];
        let err = replay_cq_trace(&events, 8, 2).expect_err("free miscount");
        assert!(err.detail.contains("3 chunks free"), "{}", err.detail);
    }

    #[test]
    fn release_without_reservation_is_caught() {
        let events = vec![(
            9,
            SemEvent::CqRelease {
                sw: 3,
                free_after: 8,
            },
        )];
        let err = replay_cq_trace(&events, 8, 2).expect_err("phantom release");
        assert_eq!(err.sw, 3);
        assert!(err.detail.contains("never allocated"), "{}", err.detail);
    }

    #[test]
    fn switches_fold_independently() {
        let events = vec![
            (1, reserve(0, 0, 4, true, 4)),
            (1, reserve(1, 0, 6, true, 2)),
            (
                2,
                SemEvent::CqRelease {
                    sw: 1,
                    free_after: 3,
                },
            ),
        ];
        let report = replay_cq_trace(&events, 8, 2).expect("independent switches");
        assert_eq!(report.switches, 2);
    }
}
