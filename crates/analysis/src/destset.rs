//! Hierarchical compressed destination sets for the analysis path.
//!
//! The paper's reachability strings are dense `N`-bit vectors — right for
//! switch hardware, wrong for static analysis of ROADMAP item-2 fabrics:
//! at 64K endpoints a single fabric's tables hold gigabytes of mostly
//! contiguous bits. On a k-ary n-tree every per-port reach set is one
//! contiguous host interval (see
//! [`mintopo::karytree::KaryTree::down_port_interval`]), so this module
//! stores destination sets as sorted disjoint half-open **runs** and keeps
//! every analysis operation O(runs) instead of O(N).
//!
//! [`RunSet`] is exact — [`RunSet::from_dense`]/[`RunSet::to_dense`]
//! round-trip bit for bit, which the property tests enforce on random
//! sets — and [`CompactTables`] mirrors `mintopo::reach`'s dense table
//! builders (including the masked rebuild used by reroutes) over the
//! compressed encoding, plus an O(1)-per-port symbolic builder for the
//! k-ary n-tree family that never materializes a dense string at all.

use mintopo::karytree::KaryTree;
use mintopo::reach::PortClass;
use mintopo::route::RouteTables;
use mintopo::topology::{Attach, Topology};
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};

/// A destination set over hosts `0..universe`, stored as sorted, disjoint,
/// non-adjacent half-open runs `[start, end)`.
///
/// The normalized representation makes structural equality set equality,
/// so `RunSet` derives `PartialEq`/`Eq`/`Hash` directly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunSet {
    len: usize,
    runs: Vec<(u32, u32)>,
}

impl RunSet {
    /// The empty set over `len` hosts.
    pub fn empty(len: usize) -> Self {
        RunSet {
            len,
            runs: Vec::new(),
        }
    }

    /// The full set over `len` hosts.
    pub fn full(len: usize) -> Self {
        RunSet::interval(len, 0, len)
    }

    /// The singleton `{node}` over `len` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the universe.
    pub fn singleton(len: usize, node: NodeId) -> Self {
        RunSet::interval(len, node.index(), node.index() + 1)
    }

    /// The half-open interval `[lo, hi)` over `len` hosts (empty when
    /// `lo >= hi`).
    ///
    /// # Panics
    ///
    /// Panics if `hi > len`.
    pub fn interval(len: usize, lo: usize, hi: usize) -> Self {
        assert!(hi <= len, "interval [{lo}, {hi}) exceeds universe {len}");
        let runs = if lo < hi {
            vec![(lo as u32, hi as u32)]
        } else {
            Vec::new()
        };
        RunSet { len, runs }
    }

    /// Exact compression of a dense bit-string: consecutive set bits
    /// coalesce into one run.
    pub fn from_dense(dense: &DestSet) -> Self {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for node in dense.iter() {
            let i = node.index() as u32;
            match runs.last_mut() {
                Some((_, end)) if *end == i => *end = i + 1,
                _ => runs.push((i, i + 1)),
            }
        }
        RunSet {
            len: dense.universe(),
            runs,
        }
    }

    /// Exact expansion back to the dense bit-string encoding.
    pub fn to_dense(&self) -> DestSet {
        let mut d = DestSet::empty(self.len);
        for &(lo, hi) in &self.runs {
            for i in lo..hi {
                d.insert(NodeId(i));
            }
        }
        d
    }

    /// Number of addressable hosts (the dense string length `N`).
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of runs in the compressed representation.
    pub fn n_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of hosts in the set.
    pub fn count(&self) -> usize {
        self.runs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum()
    }

    /// `true` when no host is in the set.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// `true` when `node` is in the set.
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index() as u32;
        self.runs
            .binary_search_by(|&(lo, hi)| {
                if i < lo {
                    std::cmp::Ordering::Greater
                } else if i >= hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// `true` when the two sets share at least one host.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ (mirrors the dense encoding).
    pub fn intersects(&self, other: &RunSet) -> bool {
        self.check_universe(other);
        let (mut a, mut b) = (self.runs.iter().peekable(), other.runs.iter().peekable());
        while let (Some(&&(alo, ahi)), Some(&&(blo, bhi))) = (a.peek(), b.peek()) {
            if alo < bhi && blo < ahi {
                return true;
            }
            if ahi <= bhi {
                a.next();
            } else {
                b.next();
            }
        }
        false
    }

    /// `true` when every host of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ (mirrors the dense encoding).
    pub fn is_subset_of(&self, other: &RunSet) -> bool {
        self.check_universe(other);
        let mut b = other.runs.iter().peekable();
        'outer: for &(alo, ahi) in &self.runs {
            while let Some(&&(blo, bhi)) = b.peek() {
                if bhi <= alo {
                    b.next();
                    continue;
                }
                if blo <= alo && ahi <= bhi {
                    continue 'outer;
                }
                return false;
            }
            return false;
        }
        true
    }

    /// Adds every host of `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ (mirrors the dense encoding).
    pub fn union_with(&mut self, other: &RunSet) {
        self.check_universe(other);
        if other.runs.is_empty() {
            return;
        }
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.runs.len() + other.runs.len());
        let (mut a, mut b) = (self.runs.iter().peekable(), other.runs.iter().peekable());
        let push = |merged: &mut Vec<(u32, u32)>, (lo, hi): (u32, u32)| match merged.last_mut() {
            Some((_, end)) if *end >= lo => *end = (*end).max(hi),
            _ => merged.push((lo, hi)),
        };
        loop {
            let next = match (a.peek(), b.peek()) {
                (Some(&&ra), Some(&&rb)) => {
                    if ra.0 <= rb.0 {
                        a.next();
                        ra
                    } else {
                        b.next();
                        rb
                    }
                }
                (Some(&&ra), None) => {
                    a.next();
                    ra
                }
                (None, Some(&&rb)) => {
                    b.next();
                    rb
                }
                (None, None) => break,
            };
            push(&mut merged, next);
        }
        self.runs = merged;
    }

    /// The hosts *not* in the set: the complement over the universe.
    pub fn complement(&self) -> RunSet {
        let mut runs = Vec::with_capacity(self.runs.len() + 1);
        let mut cursor = 0u32;
        for &(lo, hi) in &self.runs {
            if cursor < lo {
                runs.push((cursor, lo));
            }
            cursor = hi;
        }
        if (cursor as usize) < self.len {
            runs.push((cursor, self.len as u32));
        }
        RunSet {
            len: self.len,
            runs,
        }
    }

    /// Iterates the hosts of the set in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.runs.iter().flat_map(|&(lo, hi)| (lo..hi).map(NodeId))
    }

    fn check_universe(&self, other: &RunSet) {
        assert_eq!(
            self.len, other.len,
            "destination-set universe mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl switches::ReachEncoding for RunSet {
    fn universe(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        RunSet::is_empty(self)
    }

    fn to_dense(&self) -> DestSet {
        RunSet::to_dense(self)
    }
}

/// Classification and compressed reach set of one output port: the
/// run-encoded mirror of [`mintopo::reach::PortInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactPort {
    /// Routing role.
    pub class: PortClass,
    /// Hosts reachable through this port, run-encoded.
    pub reach: RunSet,
}

/// One switch's compressed routing metadata: per-port reach sets plus the
/// cached union of the down-port sets (the LCA-completion test).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactTable {
    ports: Vec<CompactPort>,
    down_union: RunSet,
}

impl CompactTable {
    /// Builds a table from per-port entries, caching the down-union.
    pub fn from_ports(ports: Vec<CompactPort>, universe: usize) -> Self {
        let mut down_union = RunSet::empty(universe);
        for p in &ports {
            if p.class == PortClass::Down {
                down_union.union_with(&p.reach);
            }
        }
        CompactTable { ports, down_union }
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.ports.len()
    }

    /// Entry for port `p`.
    pub fn port(&self, p: usize) -> &CompactPort {
        &self.ports[p]
    }

    /// Union of all down-port reach sets.
    pub fn down_union(&self) -> &RunSet {
        &self.down_union
    }
}

/// Compressed routing tables for a whole fabric: the analysis-path mirror
/// of [`mintopo::route::RouteTables`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactTables {
    tables: Vec<CompactTable>,
    n_hosts: usize,
}

impl CompactTables {
    /// Exact compression of dense route tables — every reach string is
    /// run-encoded, classes and port order preserved.
    pub fn from_dense(tables: &RouteTables) -> Self {
        let n = tables.n_hosts();
        let compact = (0..tables.n_switches())
            .map(|s| {
                let t = tables.table(SwitchId::from(s));
                CompactTable::from_ports(
                    (0..t.n_ports())
                        .map(|p| {
                            let info = t.port(p);
                            CompactPort {
                                class: info.class,
                                reach: RunSet::from_dense(&info.reach),
                            }
                        })
                        .collect(),
                    n,
                )
            })
            .collect();
        CompactTables {
            tables: compact,
            n_hosts: n,
        }
    }

    /// Derives compressed tables from an arbitrary topology: the
    /// run-encoded mirror of [`mintopo::reach::build_port_info`] (one
    /// deepest-first pass; up ports optimistically reach every host).
    pub fn build(topo: &Topology) -> Self {
        CompactTables::build_inner(topo, &[], false)
    }

    /// Derives compressed tables with dead directed output ports masked
    /// out and **exact** up-port reach sets: the run-encoded mirror of
    /// [`mintopo::reach::build_port_info_masked`].
    pub fn build_masked(topo: &Topology, dead: &[(SwitchId, usize)]) -> Self {
        CompactTables::build_inner(topo, dead, true)
    }

    fn build_inner(topo: &Topology, dead: &[(SwitchId, usize)], exact_up: bool) -> Self {
        let n = topo.n_hosts();
        let n_sw = topo.n_switches();
        let dead: std::collections::BTreeSet<(usize, usize)> =
            dead.iter().map(|&(sw, p)| (sw.index(), p)).collect();

        let mut eject_at = vec![Vec::new(); n_sw];
        for h in 0..n {
            let node = NodeId::from(h);
            let (sw, port) = topo.host_eject(node);
            eject_at[sw.index()].push((port, node));
        }

        // Downward pass, deepest-first: every down-neighbor's cone is
        // already known (down-hops strictly increase (depth, id)).
        let mut down_order: Vec<usize> = (0..n_sw).collect();
        down_order.sort_by_key(|&s| {
            (
                std::cmp::Reverse(topo.depth(SwitchId::from(s))),
                std::cmp::Reverse(s),
            )
        });

        let mut cone: Vec<RunSet> = vec![RunSet::empty(n); n_sw];
        let mut info: Vec<Vec<CompactPort>> = (0..n_sw)
            .map(|s| {
                (0..topo.ports(SwitchId::from(s)))
                    .map(|_| CompactPort {
                        class: PortClass::Unused,
                        reach: RunSet::empty(n),
                    })
                    .collect()
            })
            .collect();

        for &s in &down_order {
            let sw = SwitchId::from(s);
            let mut my_cone = RunSet::empty(n);
            for (port, node) in &eject_at[s] {
                if dead.contains(&(s, *port)) {
                    continue;
                }
                let reach = RunSet::singleton(n, *node);
                my_cone.union_with(&reach);
                info[s][*port] = CompactPort {
                    class: PortClass::Down,
                    reach,
                };
            }
            for (port, slot) in info[s].iter_mut().enumerate() {
                if dead.contains(&(s, port)) {
                    continue;
                }
                match topo.attach(sw, port) {
                    Attach::Switch(other, _) if topo.is_down_hop(sw, port) => {
                        let reach = cone[other.index()].clone();
                        my_cone.union_with(&reach);
                        *slot = CompactPort {
                            class: PortClass::Down,
                            reach,
                        };
                    }
                    Attach::Switch(..) => {
                        *slot = CompactPort {
                            class: PortClass::Up,
                            reach: if exact_up {
                                RunSet::empty(n) // exact reach from the up pass
                            } else {
                                RunSet::full(n)
                            },
                        };
                    }
                    Attach::Host(_) | Attach::Unused => {}
                }
            }
            cone[s] = my_cone;
        }

        if exact_up {
            // Upward pass, shallowest-first: R(s) = cone(s) ∪ ⋃ R(up-nbrs).
            let mut up_order: Vec<usize> = (0..n_sw).collect();
            up_order.sort_by_key(|&s| (topo.depth(SwitchId::from(s)), s));
            let mut up_reach: Vec<RunSet> = vec![RunSet::empty(n); n_sw];
            for &s in &up_order {
                let sw = SwitchId::from(s);
                let mut r = cone[s].clone();
                for (port, slot) in info[s].iter_mut().enumerate() {
                    if slot.class != PortClass::Up {
                        continue;
                    }
                    if let Attach::Switch(other, _) = topo.attach(sw, port) {
                        let reach = up_reach[other.index()].clone();
                        r.union_with(&reach);
                        slot.reach = reach;
                    }
                }
                up_reach[s] = r;
            }
        }

        CompactTables {
            tables: info
                .into_iter()
                .map(|ports| CompactTable::from_ports(ports, n))
                .collect(),
            n_hosts: n,
        }
    }

    /// Symbolic builder for the k-ary n-tree family: every reach set is a
    /// single closed-form interval
    /// ([`KaryTree::down_port_interval`]), so the whole fabric's tables
    /// cost O(switches · ports) with no per-host work — this is what lets
    /// the certificate checker touch 64K-endpoint fabrics where a dense
    /// string per port would need gigabytes.
    pub fn for_karytree(tree: &KaryTree) -> Self {
        let n = tree.n_hosts();
        let k = tree.k();
        let stages = tree.stages();
        let per_stage = tree.switches_per_stage();
        let mut tables = Vec::with_capacity(stages * per_stage);
        for stage in 0..stages {
            for idx in 0..per_stage {
                let mut ports = Vec::with_capacity(2 * k);
                for p in 0..k {
                    let (lo, hi) = tree.down_port_interval(stage, idx, p);
                    ports.push(CompactPort {
                        class: PortClass::Down,
                        reach: RunSet::interval(n, lo, hi),
                    });
                }
                for _ in 0..k {
                    ports.push(if stage + 1 < stages {
                        CompactPort {
                            class: PortClass::Up,
                            reach: RunSet::full(n),
                        }
                    } else {
                        CompactPort {
                            class: PortClass::Unused,
                            reach: RunSet::empty(n),
                        }
                    });
                }
                tables.push(CompactTable::from_ports(ports, n));
            }
        }
        CompactTables { tables, n_hosts: n }
    }

    /// Number of hosts.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.tables.len()
    }

    /// Compressed table of switch `sw`.
    pub fn table(&self, sw: SwitchId) -> &CompactTable {
        &self.tables[sw.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(len: usize, bits: &[usize]) -> RunSet {
        RunSet::from_dense(&DestSet::from_nodes(
            len,
            bits.iter().map(|&b| NodeId::from(b)),
        ))
    }

    #[test]
    fn dense_roundtrip_is_exact() {
        for bits in [
            &[][..],
            &[0usize],
            &[7],
            &[0, 1, 2],
            &[1, 3, 5],
            &[0, 1, 5, 6, 7],
        ] {
            let d = DestSet::from_nodes(8, bits.iter().map(|&b| NodeId::from(b)));
            let r = RunSet::from_dense(&d);
            assert_eq!(r.to_dense(), d, "{bits:?}");
            assert_eq!(r.count(), d.count());
            assert_eq!(r.is_empty(), d.is_empty());
        }
    }

    #[test]
    fn runs_coalesce_adjacent_bits() {
        let r = rs(10, &[2, 3, 4, 7, 8]);
        assert_eq!(r.n_runs(), 2);
        assert_eq!(RunSet::full(10).n_runs(), 1);
        assert_eq!(RunSet::empty(10).n_runs(), 0);
    }

    #[test]
    fn contains_matches_dense() {
        let r = rs(16, &[0, 3, 4, 5, 9, 15]);
        let d = r.to_dense();
        for h in 0..16usize {
            assert_eq!(
                r.contains(NodeId::from(h)),
                d.contains(NodeId::from(h)),
                "{h}"
            );
        }
    }

    #[test]
    fn set_algebra_matches_dense() {
        let sets = [
            rs(12, &[]),
            rs(12, &[0, 1, 2]),
            rs(12, &[2, 3, 4]),
            rs(12, &[5, 7, 9, 11]),
            RunSet::full(12),
        ];
        for a in &sets {
            for b in &sets {
                let (da, db) = (a.to_dense(), b.to_dense());
                assert_eq!(a.intersects(b), da.intersects(&db), "{a:?} ∩ {b:?}");
                assert_eq!(a.is_subset_of(b), da.is_subset_of(&db), "{a:?} ⊆ {b:?}");
                let mut u = a.clone();
                u.union_with(b);
                let mut du = da.clone();
                du.union_with(&db);
                assert_eq!(u.to_dense(), du, "{a:?} ∪ {b:?}");
            }
        }
    }

    #[test]
    fn complement_partitions_the_universe() {
        for r in [rs(9, &[]), rs(9, &[0, 4, 5, 8]), RunSet::full(9)] {
            let c = r.complement();
            assert!(!r.intersects(&c) || r.is_empty() || c.is_empty());
            let mut all = r.clone();
            all.union_with(&c);
            assert_eq!(all, RunSet::full(9), "{r:?}");
        }
    }

    #[test]
    fn equality_is_set_equality() {
        assert_eq!(rs(8, &[1, 2, 3]), RunSet::interval(8, 1, 4));
        assert_ne!(rs(8, &[1, 2]), rs(8, &[1, 2, 3]));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let _ = RunSet::full(4).intersects(&RunSet::full(8));
    }

    /// The three compact builders agree with the dense ones, table for
    /// table, on a real tree.
    #[test]
    fn compact_builders_mirror_dense() {
        let tree = KaryTree::new(3, 2);
        let topo = tree.topology();
        let dense = RouteTables::build(topo);
        for compact in [
            CompactTables::from_dense(&dense),
            CompactTables::build(topo),
            CompactTables::for_karytree(&tree),
        ] {
            assert_eq!(compact.n_switches(), dense.n_switches());
            for s in 0..dense.n_switches() {
                let (ct, dt) = (
                    compact.table(SwitchId::from(s)),
                    dense.table(SwitchId::from(s)),
                );
                assert_eq!(ct.n_ports(), dt.n_ports(), "switch {s}");
                assert_eq!(ct.down_union().to_dense(), *dt.down_union(), "switch {s}");
                for p in 0..dt.n_ports() {
                    assert_eq!(ct.port(p).class, dt.port(p).class, "switch {s} port {p}");
                    assert_eq!(
                        ct.port(p).reach.to_dense(),
                        dt.port(p).reach,
                        "switch {s} port {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn masked_compact_build_mirrors_dense_masked() {
        let tree = KaryTree::new(2, 3);
        let topo = tree.topology();
        let dead = [(tree.switch_at(0, 0), 2), (tree.switch_at(1, 0), 0)];
        let dense = RouteTables::build_masked(topo, &dead);
        let compact = CompactTables::build_masked(topo, &dead);
        for s in 0..dense.n_switches() {
            let (ct, dt) = (
                compact.table(SwitchId::from(s)),
                dense.table(SwitchId::from(s)),
            );
            for p in 0..dt.n_ports() {
                assert_eq!(ct.port(p).class, dt.port(p).class, "switch {s} port {p}");
                assert_eq!(
                    ct.port(p).reach.to_dense(),
                    dt.port(p).reach,
                    "switch {s} port {p}"
                );
            }
        }
    }

    #[test]
    fn karytree_reaches_are_single_runs() {
        let tree = KaryTree::new(4, 3);
        let compact = CompactTables::for_karytree(&tree);
        for s in 0..compact.n_switches() {
            let t = compact.table(SwitchId::from(s));
            for p in 0..t.n_ports() {
                assert!(t.port(p).reach.n_runs() <= 1, "switch {s} port {p}");
            }
            assert!(t.down_union().n_runs() <= 1, "switch {s}");
        }
    }
}
