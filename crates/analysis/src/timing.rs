//! Wall-clock accounting for the reroute admission-control path.
//!
//! The analyzer and model-check vets execute in **zero simulated cycles**
//! — from the fabric's point of view they are instantaneous, which keeps
//! runs deterministic. A resident control plane, however, budgets its
//! detect→vet→install pipeline in *wall* time: a vet that takes tens of
//! milliseconds on a big topology eats directly into the service's
//! latency budget. This module times the vet entry points and provides
//! the percentile accumulator ([`Samples`]) that `mdw-routed` uses for
//! its p50/p99 service metrics — for wall-clock nanoseconds here and for
//! cycle-domain detect→install latencies in `core`.
//!
//! Timing is *observability only*: durations are recorded beside the
//! verdicts, never branched on, so identical runs still produce
//! bit-identical simulation results.

use crate::certify::{vet_reroute_certified, Certificate};
use crate::model::{check_model, check_model_opts, CheckOutcome, ModelBounds, ModelOptions};
use crate::report::{AnalysisStats, ConfigReport};
use crate::{checks::ArchClass, vet_reroute};
use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::topology::Topology;
use std::time::{Duration, Instant};

/// An accumulator of `u64` latency samples with nearest-rank percentile
/// extraction. Unit-agnostic: the vet path records wall-clock
/// nanoseconds, the responder records cycle counts.
///
/// Optionally bounded ([`Samples::with_cap`]): once `cap` samples are
/// held each record evicts the oldest and bumps a drop counter, so a
/// resident service accumulating latencies for weeks holds steady-state
/// memory. Percentiles then describe the most recent `cap` episodes —
/// exactly the window an operator asks about — and the drop counter
/// keeps the total episode count auditable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Samples {
    values: Vec<u64>,
    cap: usize,
    dropped: u64,
}

impl Default for Samples {
    fn default() -> Self {
        Samples {
            values: Vec::new(),
            cap: usize::MAX,
            dropped: 0,
        }
    }
}

impl Samples {
    /// An empty, unbounded accumulator.
    pub fn new() -> Self {
        Samples::default()
    }

    /// An empty accumulator retaining at most `cap` samples (floor 1).
    pub fn with_cap(cap: usize) -> Self {
        Samples {
            cap: cap.max(1),
            ..Samples::default()
        }
    }

    /// Records one sample, evicting the oldest if the ring is full.
    pub fn record(&mut self, value: u64) {
        if self.values.len() == self.cap {
            self.values.remove(0);
            self.dropped += 1;
        }
        self.values.push(value);
    }

    /// Samples evicted to stay within the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Rebuilds an accumulator from snapshot state (crash recovery):
    /// the retained window plus the historical drop count.
    pub fn restore(cap: usize, values: &[u64], dropped: u64) -> Self {
        Samples {
            values: values.to_vec(),
            cap: cap.max(1),
            dropped,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Largest sample, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all samples.
    pub fn total(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`); 0 when empty. The
    /// nearest-rank definition always returns an *observed* sample, so
    /// p50/p99 readings correspond to real episodes rather than
    /// interpolated values.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.values.is_empty() {
            return 0;
        }
        let mut sorted = self.values.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Folds another accumulator's samples (and drop count) into this
    /// one, respecting this accumulator's own ring bound.
    pub fn merge(&mut self, other: &Samples) {
        self.dropped += other.dropped;
        for &v in &other.values {
            self.record(v);
        }
    }

    /// The raw samples, in record order.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// Wall-clock totals of the two vet halves across a responder's lifetime.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct VetStats {
    /// Per-invocation durations of the structural vet
    /// ([`vet_reroute`]), in nanoseconds.
    pub structural_ns: Samples,
    /// Per-invocation durations of the behavioral vet
    /// ([`check_model`]), in nanoseconds. With memoization this
    /// typically holds exactly one sample per run.
    pub model_ns: Samples,
}

impl VetStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        VetStats::default()
    }

    /// Total wall time spent in both vet halves.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.structural_ns.total() + self.model_ns.total())
    }
}

/// Runs [`vet_reroute`] under a timer, recording the duration into
/// `stats` and returning the untouched verdict.
///
/// # Errors
///
/// Exactly as [`vet_reroute`]: the full report when any error-severity
/// finding exists.
pub fn vet_reroute_timed(
    topo: &Topology,
    candidate: &RouteTables,
    policy: ReplicatePolicy,
    stats: &mut VetStats,
) -> Result<AnalysisStats, Box<ConfigReport>> {
    let start = Instant::now();
    let verdict = vet_reroute(topo, candidate, policy);
    stats
        .structural_ns
        .record(start.elapsed().as_nanos() as u64);
    verdict
}

/// Runs [`vet_reroute_certified`] under a timer, recording the duration
/// into the same `structural_ns` accumulator as [`vet_reroute_timed`] —
/// the certified gate is a drop-in replacement for the structural vet,
/// so its latencies land in the same service metric.
///
/// # Errors
///
/// Exactly as [`vet_reroute_certified`]: the full report when any
/// error-severity finding exists.
pub fn vet_reroute_certified_timed(
    topo: &Topology,
    candidate: &RouteTables,
    policy: ReplicatePolicy,
    cert: &Certificate,
    stats: &mut VetStats,
) -> Result<AnalysisStats, Box<ConfigReport>> {
    let start = Instant::now();
    let verdict = vet_reroute_certified(topo, candidate, policy, cert);
    stats
        .structural_ns
        .record(start.elapsed().as_nanos() as u64);
    verdict
}

/// Runs [`check_model`] under a timer, recording the duration into
/// `stats` and returning the untouched outcome.
pub fn check_model_timed(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
    stats: &mut VetStats,
) -> CheckOutcome {
    let start = Instant::now();
    let outcome = check_model(arch, sync_replication, policy, bounds);
    stats.model_ns.record(start.elapsed().as_nanos() as u64);
    outcome
}

/// Runs [`check_model_opts`] under a timer, recording the duration into
/// `stats` and returning the untouched outcome.
pub fn check_model_opts_timed(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
    opts: &ModelOptions,
    stats: &mut VetStats,
) -> CheckOutcome {
    let start = Instant::now();
    let outcome = check_model_opts(arch, sync_replication, policy, bounds, opts);
    stats.model_ns.record(start.elapsed().as_nanos() as u64);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut s = Samples::new();
        for v in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            s.record(v);
        }
        assert_eq!(s.percentile(50.0), 50);
        assert_eq!(s.percentile(99.0), 100);
        assert_eq!(s.percentile(100.0), 100);
        assert_eq!(s.percentile(0.0), 10);
        assert_eq!(s.max(), 100);
        assert_eq!(s.total(), 550);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn empty_samples_read_zero() {
        let s = Samples::new();
        assert_eq!(s.percentile(50.0), 0);
        assert_eq!(s.max(), 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s = Samples::new();
        s.record(42);
        assert_eq!(s.percentile(1.0), 42);
        assert_eq!(s.percentile(50.0), 42);
        assert_eq!(s.percentile(99.0), 42);
    }

    #[test]
    fn capped_samples_evict_oldest_and_count_drops() {
        let mut s = Samples::with_cap(3);
        for v in [10, 20, 30, 40, 50] {
            s.record(v);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.values(), &[30, 40, 50], "ring keeps the newest");
        assert_eq!(s.percentile(0.0), 30, "percentiles see only the window");

        // Merge respects the destination's bound and folds drop counts.
        let mut dst = Samples::with_cap(2);
        dst.record(1);
        dst.merge(&s);
        assert_eq!(dst.count(), 2);
        assert_eq!(dst.values(), &[40, 50]);
        assert_eq!(dst.dropped(), 2 + 2, "source drops + merge evictions");
    }

    #[test]
    fn merge_folds_samples() {
        let mut a = Samples::new();
        a.record(1);
        let mut b = Samples::new();
        b.record(2);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.total(), 6);
    }

    #[test]
    fn timed_vet_records_a_sample_per_call() {
        use mintopo::topology::TopologyBuilder;
        use netsim::ids::NodeId;

        let mut b = TopologyBuilder::new(2);
        let s0 = b.add_switch(3, 1);
        let s1 = b.add_switch(1, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.connect(s0, 2, s1, 0);
        let topo = b.build();
        let tables = RouteTables::build(&topo);

        let mut stats = VetStats::new();
        let verdict = vet_reroute_timed(&topo, &tables, ReplicatePolicy::ReturnOnly, &mut stats);
        assert!(verdict.is_ok());
        assert_eq!(stats.structural_ns.count(), 1);
        assert_eq!(stats.model_ns.count(), 0);

        let outcome = check_model_timed(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
            &mut stats,
        );
        assert!(matches!(outcome, CheckOutcome::Verified(_)));
        assert_eq!(stats.model_ns.count(), 1);
    }
}
