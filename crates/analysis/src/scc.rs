//! Strongly connected components of the channel-dependency graph.
//!
//! Deadlock freedom reduces to acyclicity of the CDG (Dally–Seitz): a
//! dependency cycle means a set of worms can each hold a channel while
//! waiting on the next, forever. Tarjan's algorithm finds every SCC in
//! `O(V + E)`; a component with more than one channel — or a channel that
//! depends on itself — contains at least one cycle.
//!
//! The recursion is unrolled into an explicit stack so that large fabrics
//! (thousands of channels) cannot overflow the thread stack, and the
//! traversal visits nodes and successors in index order so reports are
//! deterministic.

/// Computes all strongly connected components of the directed graph with
/// nodes `0..n` and successor lists `adj`.
///
/// Components are returned in reverse topological order (a component only
/// depends on components listed before it), with node indices inside each
/// component sorted ascending.
pub fn tarjan_sccs(n: usize, adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    assert_eq!(adj.len(), n, "adjacency list length mismatch");

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS frame: (node, next successor position to examine).
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut succ_pos)) = frames.last_mut() {
            if let Some(&w) = adj[v].get(*succ_pos) {
                *succ_pos += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// `true` if the component `scc` of the graph `adj` contains a cycle: more
/// than one node, or a single node with a self-loop.
pub fn scc_is_cyclic(adj: &[Vec<usize>], scc: &[usize]) -> bool {
    scc.len() > 1 || {
        let v = scc[0];
        adj[v].contains(&v)
    }
}

/// Extracts one concrete cycle (as a node sequence, first node repeated
/// implicitly) from a cyclic SCC by walking successors inside the
/// component until a node repeats.
pub fn cycle_in_scc(adj: &[Vec<usize>], scc: &[usize]) -> Vec<usize> {
    debug_assert!(scc_is_cyclic(adj, scc));
    let members: std::collections::HashSet<usize> = scc.iter().copied().collect();
    let start = scc[0];
    let mut path = vec![start];
    let mut seen_at = std::collections::HashMap::new();
    seen_at.insert(start, 0usize);
    let mut v = start;
    loop {
        // Every node of a cyclic SCC has at least one successor inside it.
        let w = *adj[v]
            .iter()
            .find(|w| members.contains(w))
            .expect("cyclic SCC node with no internal successor");
        if let Some(&pos) = seen_at.get(&w) {
            return path.split_off(pos);
        }
        seen_at.insert(w, path.len());
        path.push(w);
        v = w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        assert!(tarjan_sccs(0, &[]).is_empty());
    }

    #[test]
    fn dag_yields_singletons_in_reverse_topo_order() {
        // 0 -> 1 -> 2, 0 -> 2.
        let adj = vec![vec![1, 2], vec![2], vec![]];
        let sccs = tarjan_sccs(3, &adj);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
        for scc in &sccs {
            assert!(!scc_is_cyclic(&adj, scc));
        }
    }

    #[test]
    fn simple_cycle_is_one_component() {
        // 0 -> 1 -> 2 -> 0, plus a tail 2 -> 3.
        let adj = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let sccs = tarjan_sccs(4, &adj);
        let cyclic: Vec<_> = sccs.iter().filter(|s| scc_is_cyclic(&adj, s)).collect();
        assert_eq!(cyclic, vec![&vec![0, 1, 2]]);
        let cyc = cycle_in_scc(&adj, cyclic[0]);
        assert_eq!(cyc.len(), 3);
        // Consecutive cycle nodes are connected, and it closes.
        for (i, &v) in cyc.iter().enumerate() {
            let w = cyc[(i + 1) % cyc.len()];
            assert!(adj[v].contains(&w), "{v} -> {w} missing");
        }
    }

    #[test]
    fn self_loop_is_cyclic() {
        let adj = vec![vec![0], vec![]];
        let sccs = tarjan_sccs(2, &adj);
        let cyclic: Vec<_> = sccs.iter().filter(|s| scc_is_cyclic(&adj, s)).collect();
        assert_eq!(cyclic, vec![&vec![0]]);
        assert_eq!(cycle_in_scc(&adj, cyclic[0]), vec![0]);
    }

    #[test]
    fn two_disjoint_cycles_are_separate_components() {
        // 0 <-> 1 and 2 <-> 3.
        let adj = vec![vec![1], vec![0], vec![3], vec![2]];
        let sccs = tarjan_sccs(4, &adj);
        let mut cyclic: Vec<_> = sccs
            .into_iter()
            .filter(|s| scc_is_cyclic(&adj, s))
            .collect();
        cyclic.sort();
        assert_eq!(cyclic, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 0 -> 1 -> ... -> 9999 -> 0: one big cycle, found iteratively.
        let n = 10_000;
        let adj: Vec<Vec<usize>> = (0..n).map(|v| vec![(v + 1) % n]).collect();
        let sccs = tarjan_sccs(n, &adj);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
        assert!(scc_is_cyclic(&adj, &sccs[0]));
        assert_eq!(cycle_in_scc(&adj, &sccs[0]).len(), n);
    }
}
