//! Buffer-sufficiency and protocol-invariant checks per switch
//! architecture.
//!
//! The paper's deadlock-freedom condition is *weaker than virtual
//! cut-through*: a packet accepted for transmission must **eventually** be
//! completely bufferable — not necessarily at every hop the moment it
//! arrives. Statically that turns into sizing rules per architecture:
//!
//! * **Central buffer** (SP2-class): the maximum worm must fit in the
//!   shared central queue, and the queue must hold at least *two* maximum
//!   worms so one worm's worth of chunks can be reserved for descending
//!   traffic (the store-and-forward escape path; see
//!   [`SwitchConfig::cq_down_reserve`]).
//! * **Input buffered**: the maximum worm must fit in a single input
//!   FIFO, and branch replication must be *asynchronous* — synchronous
//!   (lock-step) replication admits grant-wait cycles between partially
//!   granted multidestination worms (paper §3, Chiang & Ni), a hazard the
//!   runtime watchdog demonstrably catches.
//!
//! The sizing rules double as the engine behind
//! [`SwitchConfig::validate`]'s legacy `Result` interface, so every
//! message here is byte-identical to the one that interface has always
//! produced.

use crate::report::ConfigReport;
use switches::{ReplicationMode, SwitchConfig};

/// Switch architecture, as the analysis sees it (mirrors
/// `core::SwitchArch` without depending on the `core` crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchClass {
    /// Shared central queue with chunk-refcount replication.
    CentralBuffer,
    /// Per-input packet FIFOs with cursor replication.
    InputBuffered,
}

/// Runs every switch-level sizing and protocol check, appending findings
/// to `report`.
///
/// The first eight checks reproduce [`SwitchConfig::validate`] exactly
/// (same order, same messages) so `Result`-based callers surfacing
/// [`ConfigReport::first_error`] see unchanged behavior; the
/// architecture-specific hazard checks follow as warnings.
pub fn switch_sizing(cfg: &SwitchConfig, arch: ArchClass, report: &mut ConfigReport) {
    if !(cfg.ports >= 2 && cfg.ports <= 16) {
        report.error(
            "ports-out-of-range",
            format!("ports must be 2..=16, got {}", cfg.ports),
        );
    }
    if cfg.chunk_flits < 1 {
        report.error("chunk-holds-no-flit", "chunks must hold at least one flit");
    }
    if cfg.cq_chunks < 1 {
        report.error("cq-empty", "central queue needs capacity");
    }
    if cfg.max_packet_flits < 2 {
        report.error(
            "packet-below-header",
            format!(
                "packets have at least a header; max_packet_flits {} is too small",
                cfg.max_packet_flits
            ),
        );
    }
    // The capacity comparisons are meaningless (and `chunks_for` divides
    // by the chunk size) when the basic sanity checks above already
    // failed, so they only run on a structurally sane central queue.
    if cfg.chunk_flits >= 1 && cfg.cq_chunks >= 1 {
        if u32::from(cfg.max_packet_flits) > cfg.cq_flits() {
            report.error(
                "cb-packet-exceeds-cq",
                format!(
                    "max packet ({} flits) exceeds central queue ({} flits): \
                     deadlock-freedom guarantee impossible",
                    cfg.max_packet_flits,
                    cfg.cq_flits()
                ),
            );
        }
        if cfg.cq_chunks < 2 * cfg.cq_down_reserve() {
            report.error(
                "cb-no-descending-reserve",
                format!(
                    "central queue ({} chunks) must hold at least two max packets \
                     ({} chunks each): one is reserved for descending traffic",
                    cfg.cq_chunks,
                    cfg.cq_down_reserve()
                ),
            );
        }
    }
    if u32::from(cfg.max_packet_flits) > cfg.input_buf_flits {
        report.error(
            "ib-packet-exceeds-fifo",
            format!(
                "max packet ({} flits) exceeds input buffer ({} flits): \
                 deadlock-freedom guarantee impossible",
                cfg.max_packet_flits, cfg.input_buf_flits
            ),
        );
    }
    if cfg.staging_flits < 4 {
        report.error(
            "staging-below-decode",
            format!(
                "staging of {} flits cannot cover decode latency (need >= 4)",
                cfg.staging_flits
            ),
        );
    }

    // Architecture-specific protocol hazards (warnings: the configuration
    // can run — existing ablation experiments do — but is not
    // unconditionally safe).
    if arch == ArchClass::InputBuffered && cfg.replication == ReplicationMode::Synchronous {
        report.warning(
            "sync-replication-hazard",
            format!(
                "synchronous (lock-step) replication on the input-buffered switch \
                 admits grant-wait cycles between partially granted \
                 multidestination worms (paper §3): two worms can each hold a \
                 subset of the other's output ports and neither ever streams; \
                 use {:?} replication for a deadlock-freedom guarantee",
                ReplicationMode::Asynchronous
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Severity;

    #[test]
    fn defaults_pass_clean_on_both_architectures() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let mut r = ConfigReport::new();
            switch_sizing(&SwitchConfig::default(), arch, &mut r);
            assert!(r.is_clean(), "{:?}: {:?}", arch, r.diagnostics);
        }
    }

    #[test]
    fn messages_match_legacy_validate_exactly() {
        // Each broken field must yield the same first message the legacy
        // `SwitchConfig::validate` Result interface produces.
        let broken = [
            SwitchConfig {
                ports: 1,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                chunk_flits: 0,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                cq_chunks: 0,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                max_packet_flits: 1,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                max_packet_flits: 2048,
                input_buf_flits: 4096,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                cq_chunks: 20,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                input_buf_flits: 64,
                ..SwitchConfig::default()
            },
            SwitchConfig {
                staging_flits: 2,
                ..SwitchConfig::default()
            },
        ];
        for cfg in broken {
            let legacy = cfg.validate().expect_err("config is broken").to_string();
            let mut r = ConfigReport::new();
            switch_sizing(&cfg, ArchClass::CentralBuffer, &mut r);
            let first = r.first_error().expect("analysis flags it too");
            assert_eq!(first.message, legacy);
        }
    }

    #[test]
    fn undersized_central_queue_is_a_hard_error() {
        // The crafted deadlock-prone shape: a worm longer than the entire
        // central queue can never be completely buffered.
        let cfg = SwitchConfig {
            cq_chunks: 4,
            chunk_flits: 8,
            max_packet_flits: 64,
            input_buf_flits: 256,
            ..SwitchConfig::default()
        };
        let mut r = ConfigReport::new();
        switch_sizing(&cfg, ArchClass::CentralBuffer, &mut r);
        assert!(r.has_errors());
        assert!(r.errors().any(|d| d.code == "cb-packet-exceeds-cq"));
    }

    #[test]
    fn sync_replication_warns_on_input_buffered_only() {
        let cfg = SwitchConfig {
            replication: ReplicationMode::Synchronous,
            ..SwitchConfig::default()
        };
        let mut r = ConfigReport::new();
        switch_sizing(&cfg, ArchClass::InputBuffered, &mut r);
        assert!(!r.has_errors(), "hazard, not a hard error");
        let w = r.warnings().next().expect("warning emitted");
        assert_eq!(w.code, "sync-replication-hazard");
        assert_eq!(w.severity, Severity::Warning);

        let mut r = ConfigReport::new();
        switch_sizing(&cfg, ArchClass::CentralBuffer, &mut r);
        assert!(
            r.is_clean(),
            "central-buffer replication is inherently asynchronous"
        );
    }
}
