//! Topology-parametric deadlock-freedom certificates.
//!
//! The explicit analyzer ([`crate::analyze_fabric`]) proves the paper's
//! §3 up*/down* argument by *enumerating* the channel-dependency graph and
//! running Tarjan over it — exact, but whole-fabric: at ROADMAP item-2
//! sizes (1K–64K endpoints) the enumeration blows past any reasonable
//! state budget. This module replaces the global argument with a local
//! one: a [`Certificate`] assigns every channel a **rank** derived from
//! the layered up*/down* order, and the checker verifies, per route-table
//! entry, that every dependency the routing function can induce strictly
//! descends that rank. Strict descent makes the dependency relation a
//! strict partial order, so the CDG is acyclic — no cycle enumeration
//! needed, and the check is O(routes) with O(channels) memory.
//!
//! The rank construction mirrors [`mintopo::topology::Topology::is_down_hop`]'s
//! strict total order on switches. With `ord(sw)` the position of `sw` in
//! ascending `(depth, id)` order and `S` the switch count:
//!
//! * an output port that is a **down-hop** (or a host ejection cable) gets
//!   rank `S - ord(sw)` — descending worms sink deeper, rank shrinks;
//! * an output port that is an **up-hop** gets rank `S + 1 + ord(sw)` —
//!   ascending worms climb shallower, rank shrinks, and every up rank
//!   exceeds every down rank so the one-way up→down transition descends;
//! * a dangling table entry (attach `Unused`) gets rank `0`: a sink;
//! * an **injection** channel gets rank `2S + 2`, above everything.
//!
//! The generator is topology-parametric: for the k-ary n-tree family the
//! rule is the closed form [`RankRule::KaryStages`] (no per-switch data at
//! all); for arbitrary topologies it is an explicit ord table. Generator
//! and checker are deliberately split — the checker trusts nothing but
//! rank descent, so *any* valid rank assignment proves acyclicity, and a
//! certificate can be serialized, shipped, and re-checked independently
//! ([`Certificate::to_text`]/[`Certificate::from_text`]).
//!
//! On acceptance the checker reports the same coverage counters the
//! explicit analyzer would — every channel is its own SCC in an acyclic
//! graph — which is what makes byte-identical verdicts at paper scale a
//! testable contract. On rejection it names the violating dependency and
//! closes a concrete channel chain through it when one exists within a
//! bounded search.

use crate::cdg::{Channel, Dependency, ShapeClass};
use crate::destset::{CompactTables, RunSet};
use crate::report::{AnalysisStats, ConfigReport, CycleReport};
use crate::roundtrip;
use mintopo::karytree::KaryTree;
use mintopo::reach::PortClass;
use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::topology::{Attach, Topology};
use netsim::ids::SwitchId;

/// Nodes the counterexample search will visit before giving up and
/// reporting the bare violating edge instead of a closed cycle.
const CYCLE_SEARCH_CAP: usize = 10_000;

/// Rank-violation errors rendered in full before the rest are summarized.
const MAX_REPORTED_VIOLATIONS: usize = 4;

/// How switch ranks are derived from switch ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankRule {
    /// Closed form for the k-ary n-tree family: stage-major ids, stage `s`
    /// at depth `n-1-s`, so `ord = (n-1-stage) * k^(n-1) + index`.
    KaryStages {
        /// Arity (down-port count per switch).
        k: usize,
        /// Number of stages.
        n: usize,
    },
    /// Explicit per-switch order positions (ascending `(depth, id)`).
    Explicit {
        /// `ord[s]` = rank position of switch `s`.
        ord: Vec<u32>,
    },
}

/// A serializable deadlock-freedom certificate for one fabric shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    n_hosts: usize,
    n_switches: usize,
    rule: RankRule,
}

/// Everything the checker learned from one pass over the tables.
#[derive(Debug, Clone)]
pub struct CertifyOutcome {
    /// Channels enumerated (identical to the explicit CDG's node count).
    pub channels: usize,
    /// Dependency edges checked (identical to the explicit CDG's edge
    /// count — the checker visits each exactly once).
    pub dependencies: usize,
    /// Rank-descent violations, in enumeration order.
    pub violations: Vec<RankViolation>,
    /// Set when the certificate does not fit the fabric at all.
    pub mismatch: Option<String>,
}

/// One dependency that fails to descend the certificate rank.
#[derive(Debug, Clone)]
pub struct RankViolation {
    /// `switch: held -> requested (shape)` label of the offending edge.
    pub edge: String,
    /// Rank of the held channel.
    pub from_rank: u64,
    /// Rank of the requested channel (`>= from_rank`).
    pub to_rank: u64,
    /// A concrete channel chain through the edge: a closed dependency
    /// cycle when the bounded search finds one, otherwise just the edge's
    /// two channels.
    pub chain: CycleReport,
    /// `true` when `chain` is a closed cycle.
    pub cycle_closed: bool,
}

impl Certificate {
    /// Closed-form certificate for a k-ary n-tree.
    pub fn for_karytree(tree: &KaryTree) -> Self {
        Certificate {
            n_hosts: tree.n_hosts(),
            n_switches: tree.topology().n_switches(),
            rule: RankRule::KaryStages {
                k: tree.k(),
                n: tree.stages(),
            },
        }
    }

    /// Explicit certificate for an arbitrary topology: switches ordered by
    /// ascending `(depth, id)` — exactly the strict total order
    /// [`Topology::is_down_hop`] is defined over, so honest up*/down*
    /// tables always descend it.
    pub fn for_topology(topo: &Topology) -> Self {
        let mut by_order: Vec<usize> = (0..topo.n_switches()).collect();
        by_order.sort_by_key(|&s| (topo.depth(SwitchId::from(s)), s));
        let mut ord = vec![0u32; topo.n_switches()];
        for (pos, &s) in by_order.iter().enumerate() {
            ord[s] = pos as u32;
        }
        Certificate {
            n_hosts: topo.n_hosts(),
            n_switches: topo.n_switches(),
            rule: RankRule::Explicit { ord },
        }
    }

    /// Number of hosts the certificate was generated for.
    pub fn n_hosts(&self) -> usize {
        self.n_hosts
    }

    /// Number of switches the certificate was generated for.
    pub fn n_switches(&self) -> usize {
        self.n_switches
    }

    /// The rank rule.
    pub fn rule(&self) -> &RankRule {
        &self.rule
    }

    /// Position of `sw` in the ascending `(depth, id)` switch order.
    pub fn ord(&self, sw: SwitchId) -> u64 {
        match &self.rule {
            RankRule::KaryStages { k, n } => {
                let per_stage = (self.n_hosts / k) as u64; // k^(n-1)
                let stage = sw.index() as u64 / per_stage;
                let index = sw.index() as u64 % per_stage;
                (*n as u64 - 1 - stage) * per_stage + index
            }
            RankRule::Explicit { ord } => ord[sw.index()] as u64,
        }
    }

    /// Rank of one channel (see the module docs for the construction).
    pub fn rank(&self, topo: &Topology, ch: Channel) -> u64 {
        let s = self.n_switches as u64;
        match ch {
            Channel::Inject { .. } => 2 * s + 2,
            Channel::SwitchOut { sw, port } => match topo.attach(sw, port) {
                Attach::Unused => 0,
                Attach::Host(_) => s - self.ord(sw),
                Attach::Switch(..) => {
                    if topo.is_down_hop(sw, port) {
                        s - self.ord(sw)
                    } else {
                        s + 1 + self.ord(sw)
                    }
                }
            },
        }
    }

    /// Serializes the certificate as a small line-oriented text block.
    pub fn to_text(&self) -> String {
        let mut out = String::from("mdw-certificate v1\n");
        out.push_str(&format!("hosts {}\n", self.n_hosts));
        out.push_str(&format!("switches {}\n", self.n_switches));
        match &self.rule {
            RankRule::KaryStages { k, n } => out.push_str(&format!("rule kary {k} {n}\n")),
            RankRule::Explicit { ord } => {
                out.push_str("rule explicit\nord");
                for o in ord {
                    out.push_str(&format!(" {o}"));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Parses a certificate serialized by [`Certificate::to_text`],
    /// validating internal consistency (family arithmetic, ord length).
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or inconsistent line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("mdw-certificate v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut hosts: Option<usize> = None;
        let mut switches: Option<usize> = None;
        let mut rule: Option<RankRule> = None;
        let mut pending_explicit = false;
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            match it.next() {
                Some("hosts") => {
                    hosts = Some(parse_field(it.next(), "hosts")?);
                }
                Some("switches") => {
                    switches = Some(parse_field(it.next(), "switches")?);
                }
                Some("rule") => match it.next() {
                    Some("kary") => {
                        rule = Some(RankRule::KaryStages {
                            k: parse_field(it.next(), "kary k")?,
                            n: parse_field(it.next(), "kary n")?,
                        });
                    }
                    Some("explicit") => pending_explicit = true,
                    other => return Err(format!("unknown rule {other:?}")),
                },
                Some("ord") if pending_explicit => {
                    let ord: Result<Vec<u32>, _> = it.map(|t| t.parse::<u32>()).collect();
                    rule = Some(RankRule::Explicit {
                        ord: ord.map_err(|e| format!("bad ord entry: {e}"))?,
                    });
                }
                other => return Err(format!("unknown line {other:?}")),
            }
        }
        let (n_hosts, n_switches) = match (hosts, switches) {
            (Some(h), Some(s)) => (h, s),
            _ => return Err("missing hosts/switches line".to_string()),
        };
        let rule = rule.ok_or_else(|| "missing rule line".to_string())?;
        match &rule {
            RankRule::KaryStages { k, n } => {
                if *k < 2 || *n < 1 {
                    return Err(format!("degenerate kary rule k={k} n={n}"));
                }
                let expect_hosts = k.checked_pow(*n as u32);
                if expect_hosts != Some(n_hosts) {
                    return Err(format!("kary {k}^{n} does not give {n_hosts} hosts"));
                }
                if n * (n_hosts / k) != n_switches {
                    return Err(format!("kary {k},{n} does not give {n_switches} switches"));
                }
            }
            RankRule::Explicit { ord } => {
                if ord.len() != n_switches {
                    return Err(format!(
                        "ord table has {} entries for {n_switches} switches",
                        ord.len()
                    ));
                }
            }
        }
        Ok(Certificate {
            n_hosts,
            n_switches,
            rule,
        })
    }

    /// Checks every dependency the routing function can induce from
    /// `tables` for strict rank descent. One pass, O(routes) work,
    /// O(channels) memory — no dependency edge is ever stored.
    pub fn check(&self, topo: &Topology, tables: &CompactTables) -> CertifyOutcome {
        if self.n_hosts != tables.n_hosts() || self.n_switches != tables.n_switches() {
            return CertifyOutcome {
                channels: 0,
                dependencies: 0,
                violations: Vec::new(),
                mismatch: Some(format!(
                    "certificate is for {} hosts / {} switches, fabric has {} / {}",
                    self.n_hosts,
                    self.n_switches,
                    tables.n_hosts(),
                    tables.n_switches()
                )),
            };
        }

        let enumerator = DepEnumerator::new(topo, tables);
        let mut checked = 0usize;
        let mut violations = Vec::new();
        for from in 0..enumerator.channels.len() {
            enumerator.for_each_dep(from, |dep| {
                checked += 1;
                let from_rank = self.rank(topo, enumerator.channels[dep.from]);
                let to_rank = self.rank(topo, enumerator.channels[dep.to]);
                if to_rank >= from_rank {
                    let (chain, cycle_closed) = enumerator.close_chain(&dep);
                    violations.push(RankViolation {
                        edge: dep.describe(&enumerator.channels),
                        from_rank,
                        to_rank,
                        chain,
                        cycle_closed,
                    });
                }
            });
        }
        CertifyOutcome {
            channels: enumerator.channels.len(),
            dependencies: checked,
            violations,
            mismatch: None,
        }
    }
}

fn parse_field(token: Option<&str>, what: &str) -> Result<usize, String> {
    token
        .ok_or_else(|| format!("missing {what}"))?
        .parse::<usize>()
        .map_err(|e| format!("bad {what}: {e}"))
}

/// On-demand dependency enumeration over compressed tables, mirroring
/// [`crate::cdg::build_cdg`]'s channel ordering and feasibility rules
/// exactly — same channels, same edges, same order — so the checker's
/// coverage counters match the explicit analyzer's.
struct DepEnumerator<'a> {
    topo: &'a Topology,
    tables: &'a CompactTables,
    channels: Vec<Channel>,
    /// `(switch, out port) -> channel index`, `usize::MAX` for unused.
    out_index: Vec<Vec<usize>>,
    full: RunSet,
}

impl<'a> DepEnumerator<'a> {
    fn new(topo: &'a Topology, tables: &'a CompactTables) -> Self {
        let mut channels: Vec<Channel> = Vec::new();
        let mut out_index: Vec<Vec<usize>> = Vec::with_capacity(topo.n_switches());
        for s in 0..topo.n_switches() {
            let sw = SwitchId::from(s);
            let table = tables.table(sw);
            let mut row = vec![usize::MAX; topo.ports(sw)];
            for (port, slot) in row.iter_mut().enumerate() {
                if table.port(port).class != PortClass::Unused {
                    *slot = channels.len();
                    channels.push(Channel::SwitchOut { sw, port });
                }
            }
            out_index.push(row);
        }
        for h in 0..topo.n_hosts() {
            let host = netsim::ids::NodeId::from(h);
            let (sw, port) = topo.host_inject(host);
            channels.push(Channel::Inject { host, sw, port });
        }
        DepEnumerator {
            topo,
            tables,
            channels,
            out_index,
            full: RunSet::full(tables.n_hosts()),
        }
    }

    /// Calls `f` for every feasible dependency out of channel `from`, in
    /// the same order the explicit CDG builder would emit them.
    fn for_each_dep<F: FnMut(Dependency)>(&self, from: usize, mut f: F) {
        let (at, out_of, reach_in) = match self.channels[from] {
            Channel::Inject { sw, .. } => (sw, usize::MAX, None),
            Channel::SwitchOut { sw, port } => match self.topo.attach(sw, port) {
                Attach::Host(_) | Attach::Unused => return, // sink
                Attach::Switch(next, _) => {
                    if self.topo.is_down_hop(sw, port) {
                        (next, port, Some(&self.tables.table(sw).port(port).reach))
                    } else {
                        (next, port, None)
                    }
                }
            },
        };
        let shape = if reach_in.is_some() {
            ShapeClass::Descending
        } else {
            ShapeClass::Ascending
        };
        let table = self.tables.table(at);
        let may_ascend = shape == ShapeClass::Ascending && table.down_union() != &self.full;
        for (onto, &to) in self.out_index[at.index()].iter().enumerate() {
            if to == usize::MAX {
                continue;
            }
            let info = table.port(onto);
            let feasible = match info.class {
                PortClass::Down => match reach_in {
                    Some(r) => info.reach.intersects(r),
                    None => !info.reach.is_empty(),
                },
                PortClass::Up => may_ascend,
                PortClass::Unused => false,
            };
            if feasible {
                f(Dependency {
                    from,
                    to,
                    at,
                    out_of,
                    onto,
                    shape,
                });
            }
        }
    }

    /// Tries to close a dependency cycle through a violating edge with a
    /// bounded DFS from its head back to its tail. Returns the channel
    /// chain (closed cycle when found, otherwise just the edge itself) and
    /// whether it closed.
    fn close_chain(&self, violating: &Dependency) -> (CycleReport, bool) {
        use std::collections::HashMap;
        // parent[c] = edge that discovered channel c.
        let mut parent: HashMap<usize, Dependency> = HashMap::new();
        let mut stack = vec![violating.to];
        parent.insert(violating.to, *violating);
        let mut visited = 0usize;
        let mut found = false;
        'search: while let Some(c) = stack.pop() {
            visited += 1;
            if visited > CYCLE_SEARCH_CAP {
                break;
            }
            let mut hits = Vec::new();
            self.for_each_dep(c, |d| hits.push(d));
            for d in hits {
                if d.to == violating.from {
                    parent.insert(d.to, d);
                    found = true;
                    break 'search;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(d.to) {
                    e.insert(d);
                    stack.push(d.to);
                }
            }
        }
        if !found {
            return (
                CycleReport {
                    channels: vec![
                        self.channels[violating.from].describe(),
                        self.channels[violating.to].describe(),
                    ],
                    edges: vec![violating.describe(&self.channels)],
                },
                false,
            );
        }
        // Walk parents back from `violating.from` to reconstruct the cycle.
        let mut edges_rev = Vec::new();
        let mut cursor = violating.from;
        loop {
            let d = parent[&cursor];
            edges_rev.push(d);
            cursor = d.from;
            if cursor == violating.from {
                break;
            }
        }
        edges_rev.reverse();
        let channels = edges_rev
            .iter()
            .map(|d| self.channels[d.from].describe())
            .collect();
        let edges = edges_rev
            .iter()
            .map(|d| d.describe(&self.channels))
            .collect();
        (CycleReport { channels, edges }, true)
    }
}

/// Runs the certificate check over compressed tables, appending findings
/// and coverage counters to `report` — the certificate-side analog of
/// [`crate::analyze_fabric`]'s CDG + SCC half.
///
/// On acceptance the counters are exactly what the explicit analyzer
/// reports (strict descent ⟹ acyclic ⟹ every channel its own SCC).
pub fn certify_fabric(
    cert: &Certificate,
    topo: &Topology,
    tables: &CompactTables,
    report: &mut ConfigReport,
) {
    let out = cert.check(topo, tables);
    if let Some(m) = out.mismatch {
        report.error("certificate-mismatch", m);
        return;
    }
    report.stats.channels = out.channels;
    report.stats.dependencies = out.dependencies;
    if out.violations.is_empty() {
        report.stats.sccs = out.channels;
        return;
    }
    let total = out.violations.len();
    for v in out.violations.into_iter().take(MAX_REPORTED_VIOLATIONS) {
        let how = if v.cycle_closed {
            format!(
                "closing the dependency cycle {}",
                v.chain.channels.join(" -> ")
            )
        } else {
            "no closed cycle found within the search bound, but acyclicity \
             is no longer certified"
                .to_string()
        };
        report.error(
            "rank-violation",
            format!(
                "dependency fails to descend the up*/down* channel rank \
                 ({} -> {}): {} — {how}",
                v.from_rank, v.to_rank, v.edge
            ),
        );
        report.cycles.push(v.chain);
    }
    if total > MAX_REPORTED_VIOLATIONS {
        report.error(
            "rank-violation",
            format!(
                "{} further rank violation(s) suppressed",
                total - MAX_REPORTED_VIOLATIONS
            ),
        );
    }
}

/// Certificate-backed activation gate for reroute candidates: the drop-in
/// replacement for [`crate::vet_reroute`] at item-2 fabric sizes.
///
/// The structural half (stranded-switch and partition checks) runs over
/// the compressed encoding, the deadlock half is the O(routes) certificate
/// check, and the header round-trip lint still exercises the production
/// decode. Verdicts agree with [`crate::vet_reroute`] on every
/// honest masked rebuild and on the pathological candidates in the test
/// suite; the differential tier enforces it.
///
/// # Errors
///
/// Returns the full report when any error-severity finding exists; the
/// caller must stay on the old tables and degrade instead of activating.
pub fn vet_reroute_certified(
    topo: &Topology,
    candidate: &RouteTables,
    policy: ReplicatePolicy,
    cert: &Certificate,
) -> Result<AnalysisStats, Box<ConfigReport>> {
    let compact = CompactTables::from_dense(candidate);
    let mut report = ConfigReport::new();
    check_live_switches_compact(topo, &compact, &mut report);
    check_full_reachability_compact(topo, &compact, &mut report);
    certify_fabric(cert, topo, &compact, &mut report);
    roundtrip::lint_roundtrips(candidate, policy, &mut report);
    if report.has_errors() {
        Err(Box::new(report))
    } else {
        Ok(report.stats)
    }
}

/// Compressed-encoding mirror of the stranded-live-switch check in
/// [`crate::vet_reroute`]: identical verdicts and messages, O(runs) work.
fn check_live_switches_compact(topo: &Topology, tables: &CompactTables, report: &mut ConfigReport) {
    for s in 0..topo.n_switches() {
        let sw = SwitchId::from(s);
        let hosts: Vec<u32> = (0..topo.ports(sw))
            .filter_map(|p| match topo.attach(sw, p) {
                Attach::Host(h) => Some(h.0),
                _ => None,
            })
            .collect();
        if hosts.is_empty() {
            continue; // transit switch fully masked off — legitimately dark
        }
        let table = tables.table(sw);
        let routable = (0..table.n_ports()).any(|p| !table.port(p).reach.is_empty());
        if !routable {
            report.error(
                "unreachable-switch",
                format!(
                    "switch {s} still has {} attached host(s) ({}) but every port's \
                     reach string is empty — the CDG is vacuously acyclic there, yet \
                     any worm injected at the switch can never be routed",
                    hosts.len(),
                    hosts
                        .iter()
                        .map(|h| format!("h{h}"))
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            );
        }
    }
}

/// Compressed-encoding mirror of the partition check in
/// [`crate::vet_reroute`]: instead of probing `try_route_unicast` per
/// destination (O(N · ports)), the unreachable set is the complement of
/// the union of the routable port reaches — O(ports · runs) per switch,
/// same verdicts, same messages.
fn check_full_reachability_compact(
    topo: &Topology,
    tables: &CompactTables,
    report: &mut ConfigReport,
) {
    for s in 0..topo.n_switches() {
        let sw = SwitchId::from(s);
        let table = tables.table(sw);
        let has_hosts = (0..topo.ports(sw)).any(|p| matches!(topo.attach(sw, p), Attach::Host(_)));
        let live = (0..table.n_ports()).any(|p| !table.port(p).reach.is_empty());
        if !has_hosts || !live {
            continue; // transit switch, or fully dark: the liveness check owns the latter
        }
        // A destination is routable here iff some Down or Up port's reach
        // contains it (mirrors `SwitchTable::try_route_unicast`).
        let mut routable = RunSet::empty(tables.n_hosts());
        for p in 0..table.n_ports() {
            let info = table.port(p);
            if info.class != PortClass::Unused {
                routable.union_with(&info.reach);
            }
        }
        let unreachable = routable.complement();
        if !unreachable.is_empty() {
            let missing: Vec<String> = unreachable.iter().map(|h| format!("h{}", h.0)).collect();
            report.error(
                "unreachable-destination",
                format!(
                    "switch {s} cannot route to {} host(s) ({}) under the candidate \
                     tables — the masked fabric is partitioned; the first worm \
                     addressed there would have no output port",
                    missing.len(),
                    missing.join(","),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_fabric, vet_reroute};
    use mintopo::topology::TopologyBuilder;
    use netsim::ids::NodeId;

    fn karytree_cert_and_tables(k: usize, n: usize) -> (KaryTree, Certificate, CompactTables) {
        let tree = KaryTree::new(k, n);
        let cert = Certificate::for_karytree(&tree);
        let compact = CompactTables::for_karytree(&tree);
        (tree, cert, compact)
    }

    #[test]
    fn karytree_certificates_verify_clean() {
        for (k, n) in [(2, 2), (2, 3), (4, 2), (4, 3), (3, 3)] {
            let (tree, cert, compact) = karytree_cert_and_tables(k, n);
            let out = cert.check(tree.topology(), &compact);
            assert!(out.mismatch.is_none());
            assert!(
                out.violations.is_empty(),
                "k={k} n={n}: {:?}",
                out.violations
            );
            assert!(out.channels > 0);
            assert!(out.dependencies > 0);
        }
    }

    #[test]
    fn checker_counters_match_explicit_cdg() {
        for (k, n) in [(2, 3), (4, 3)] {
            let (tree, cert, compact) = karytree_cert_and_tables(k, n);
            let dense = RouteTables::build(tree.topology());
            let g = crate::build_cdg(tree.topology(), &dense);
            let out = cert.check(tree.topology(), &compact);
            assert_eq!(out.channels, g.channels.len(), "k={k} n={n}");
            assert_eq!(out.dependencies, g.deps.len(), "k={k} n={n}");
        }
    }

    #[test]
    fn certified_verdict_renders_byte_identical_to_explicit() {
        let tree = KaryTree::new(4, 3);
        let dense = RouteTables::build(tree.topology());

        let mut explicit = ConfigReport::new();
        analyze_fabric(
            tree.topology(),
            &dense,
            ReplicatePolicy::ReturnOnly,
            &mut explicit,
        );

        let cert = Certificate::for_karytree(&tree);
        let compact = CompactTables::from_dense(&dense);
        let mut certified = ConfigReport::new();
        certify_fabric(&cert, tree.topology(), &compact, &mut certified);
        roundtrip::lint_roundtrips(&dense, ReplicatePolicy::ReturnOnly, &mut certified);

        assert!(explicit.is_clean(), "{:?}", explicit.diagnostics);
        assert!(certified.is_clean(), "{:?}", certified.diagnostics);
        assert_eq!(explicit.render_human(), certified.render_human());
        assert_eq!(explicit.render_json(), certified.render_json());
    }

    #[test]
    fn explicit_rule_matches_family_rule_on_karytree() {
        let tree = KaryTree::new(3, 3);
        let family = Certificate::for_karytree(&tree);
        let general = Certificate::for_topology(tree.topology());
        for s in 0..tree.topology().n_switches() {
            assert_eq!(
                family.ord(SwitchId::from(s)),
                general.ord(SwitchId::from(s)),
                "switch {s}"
            );
        }
    }

    #[test]
    fn certificate_text_roundtrips() {
        let tree = KaryTree::new(4, 3);
        for cert in [
            Certificate::for_karytree(&tree),
            Certificate::for_topology(tree.topology()),
        ] {
            let parsed = Certificate::from_text(&cert.to_text()).expect("roundtrip");
            assert_eq!(parsed, cert);
        }
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        for (text, why) in [
            ("", "empty"),
            ("mdw-certificate v2\n", "bad version"),
            ("mdw-certificate v1\nhosts 64\nswitches 48\n", "no rule"),
            (
                "mdw-certificate v1\nhosts 64\nswitches 48\nrule kary 4 4\n",
                "family arithmetic",
            ),
            (
                "mdw-certificate v1\nhosts 4\nswitches 3\nrule explicit\nord 0 1\n",
                "short ord",
            ),
        ] {
            assert!(Certificate::from_text(text).is_err(), "{why}");
        }
    }

    #[test]
    fn mismatched_certificate_is_reported_not_panicked() {
        let (tree, _, compact) = karytree_cert_and_tables(2, 2);
        let other = Certificate::for_karytree(&KaryTree::new(2, 3));
        let mut report = ConfigReport::new();
        certify_fabric(&other, tree.topology(), &compact, &mut report);
        assert!(report.errors().any(|d| d.code == "certificate-mismatch"));
    }

    /// The crossed-Down pathology from the explicit analyzer's test suite:
    /// the certificate checker must reject it too, with a concrete closed
    /// channel chain.
    #[test]
    fn rank_violating_candidate_rejected_with_channel_chain() {
        use mintopo::reach::{PortClass, PortInfo};
        use mintopo::route::SwitchTable;
        use netsim::destset::DestSet;

        let mut b = TopologyBuilder::new(2);
        let a = b.add_switch(2, 1);
        let c = b.add_switch(2, 1);
        b.attach_host(NodeId(0), a, 1);
        b.attach_host(NodeId(1), c, 1);
        b.connect(a, 0, c, 0);
        let topo = b.build();

        let full = DestSet::full(2);
        let mk = |own: u32| {
            SwitchTable::from_ports(
                vec![
                    PortInfo {
                        class: PortClass::Down,
                        reach: full.clone(),
                    },
                    PortInfo {
                        class: PortClass::Down,
                        reach: DestSet::singleton(2, NodeId(own)),
                    },
                ],
                2,
            )
        };
        let candidate = RouteTables::from_tables(vec![mk(0), mk(1)], 2);

        let cert = Certificate::for_topology(&topo);
        let report = vet_reroute_certified(&topo, &candidate, ReplicatePolicy::ReturnOnly, &cert)
            .expect_err("crossed-down candidate must be rejected");
        assert!(
            report.errors().any(|d| d.code == "rank-violation"),
            "{:?}",
            report.diagnostics
        );
        // Concrete channel-chain counterexample: the closed 2-cycle through
        // both switch output channels, same channels the explicit analyzer
        // names.
        assert!(!report.cycles.is_empty());
        let chain = report.cycles[0].channels.join(" ");
        assert!(chain.contains("s0.out0"), "{chain}");
        assert!(chain.contains("s1.out0"), "{chain}");
        assert!(!report.cycles[0].edges.is_empty());

        // And the explicit gate agrees on the verdict.
        assert!(vet_reroute(&topo, &candidate, ReplicatePolicy::ReturnOnly).is_err());
    }

    #[test]
    fn certified_gate_agrees_with_explicit_gate_on_masked_rebuilds() {
        let tree = KaryTree::new(2, 3);
        let topo = tree.topology();
        let cert = Certificate::for_karytree(&tree);
        // A healthy rebuild and a couple of masked ones.
        let masks: Vec<Vec<(SwitchId, usize)>> = vec![
            vec![],
            vec![(tree.switch_at(0, 0), 2), (tree.switch_at(1, 0), 0)],
            vec![(tree.switch_at(1, 1), 2), (tree.switch_at(2, 1), 0)],
        ];
        for dead in masks {
            let candidate = RouteTables::build_masked(topo, &dead);
            let explicit = vet_reroute(topo, &candidate, ReplicatePolicy::ReturnOnly);
            let certified =
                vet_reroute_certified(topo, &candidate, ReplicatePolicy::ReturnOnly, &cert);
            match (&explicit, &certified) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "stats must agree for {dead:?}"),
                (Err(_), Err(_)) => {}
                _ => panic!("gate verdicts disagree for {dead:?}: {explicit:?} vs {certified:?}"),
            }
        }
    }

    #[test]
    fn partitioning_mask_rejected_by_certified_gate_too() {
        let tree = KaryTree::new(2, 2);
        let topo = tree.topology();
        let cert = Certificate::for_karytree(&tree);
        // Kill both up links out of stage-0 switch 0 — hosts 0/1 still
        // inject there but can no longer reach hosts 2/3 anywhere.
        let s = tree.switch_at(0, 0);
        let u0 = tree.switch_at(1, 0);
        let u1 = tree.switch_at(1, 1);
        let candidate = RouteTables::build_masked(topo, &[(s, 2), (s, 3), (u0, 0), (u1, 0)]);
        let report = vet_reroute_certified(topo, &candidate, ReplicatePolicy::ReturnOnly, &cert)
            .expect_err("partitioning mask must be rejected");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "unreachable-destination"),
            "{report:?}"
        );
    }
}
