//! Channel-dependency graph construction.
//!
//! A *channel* is a directed physical link a worm can hold: a host's
//! injection cable into its switch, or a switch output port's cable
//! (toward another switch, or toward a host for ejection). A worm holding
//! channel `c1` *depends on* channel `c2` when the routing function can
//! extend the worm from the switch at the head of `c1` onto `c2` — the
//! worm then occupies both at once, and a cycle of such dependencies is
//! the classic Dally–Seitz deadlock condition.
//!
//! Dependencies are enumerated by *shape class* rather than by individual
//! worm, which keeps the graph polynomial while staying a sound
//! over-approximation of every source/destination-set the LCA routing
//! function ([`mintopo::route::SwitchTable::route_bitstring`]) can
//! produce:
//!
//! * a worm arriving on a **descending** channel carries a residual set
//!   confined to the sending port's reachability string, so it can only
//!   extend onto down ports whose reach intersects that string — never
//!   back up (the up*/down* invariant);
//! * a worm arriving **ascending** (or injected by a host) may carry any
//!   residual set, so it can extend onto every non-empty down port, and
//!   onto the up ports as well unless this switch's down-union already
//!   covers the full system (then the LCA stage is provably reached and
//!   the routing function never continues upward).
//!
//! For a valid up*/down* topology the ascending phase strictly decreases
//! `(depth, id)` and the descending phase strictly increases it, so the
//! resulting graph is acyclic — running Tarjan over it is the machine
//! check of that argument, and catches malformed topologies where the
//! invariant is broken.

use mintopo::reach::PortClass;
use mintopo::route::RouteTables;
use mintopo::topology::{Attach, Topology};
use netsim::ids::{NodeId, SwitchId};

/// One directed physical channel of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Channel {
    /// Host `host`'s injection cable into `sw` at input `port`.
    Inject {
        /// Injecting host.
        host: NodeId,
        /// Switch the cable lands on.
        sw: SwitchId,
        /// Input port on that switch.
        port: usize,
    },
    /// Output channel of `sw` at `port` (fabric cable or host ejection).
    SwitchOut {
        /// Sending switch.
        sw: SwitchId,
        /// Output port.
        port: usize,
    },
}

impl Channel {
    /// Human-readable channel name used in cycle reports.
    pub fn describe(&self) -> String {
        match self {
            Channel::Inject { host, sw, port } => {
                format!("inject {host} -> {sw}.p{port}")
            }
            Channel::SwitchOut { sw, port } => format!("{sw}.out{port}"),
        }
    }
}

/// Which routing phase induces a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// The worm is still climbing toward (or just reached) its LCA stage;
    /// its residual destination set is unconstrained.
    Ascending,
    /// The worm is fanning out below its LCA; its residual set is confined
    /// to the reach string of the channel it arrived on.
    Descending,
}

impl ShapeClass {
    fn label(self) -> &'static str {
        match self {
            ShapeClass::Ascending => "ascending",
            ShapeClass::Descending => "descending",
        }
    }
}

/// One dependency edge, with the switch and ports that induce it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dependency {
    /// Held channel (CDG node index).
    pub from: usize,
    /// Requested channel (CDG node index).
    pub to: usize,
    /// Switch where the extension happens.
    pub at: SwitchId,
    /// Output port the held channel leaves `at` on — `usize::MAX` for an
    /// injection channel (the worm enters from a host, not a port).
    pub out_of: usize,
    /// Output port of the requested channel on `at`.
    pub onto: usize,
    /// Worm shape class that induces this edge.
    pub shape: ShapeClass,
}

impl Dependency {
    /// `switch / held -> requested (shape)` label for reports.
    pub fn describe(&self, channels: &[Channel]) -> String {
        format!(
            "{}: {} -> {} ({} worm)",
            self.at,
            channels[self.from].describe(),
            channels[self.to].describe(),
            self.shape.label()
        )
    }
}

/// The channel-dependency graph of one fabric.
#[derive(Debug, Clone)]
pub struct ChannelGraph {
    /// All channels; index = CDG node id.
    pub channels: Vec<Channel>,
    /// All dependency edges.
    pub deps: Vec<Dependency>,
    /// Successor lists over channel indices (deduplicated, sorted).
    pub adj: Vec<Vec<usize>>,
}

/// A channel-dependency graph whose edge enumeration may have been cut
/// short by a dependency budget.
#[derive(Debug, Clone)]
pub struct BudgetedGraph {
    /// The (possibly truncated) graph.
    pub graph: ChannelGraph,
    /// `false` when enumeration stopped at the budget — the graph is then
    /// a prefix of the true CDG and cycle detection over it is unsound.
    pub completed: bool,
}

/// Builds the channel-dependency graph induced by the LCA routing function
/// over every worm shape class.
pub fn build_cdg(topo: &Topology, tables: &RouteTables) -> ChannelGraph {
    build_cdg_budgeted(topo, tables, usize::MAX).graph
}

/// Budgeted variant of [`build_cdg`]: stops enumerating once `max_deps`
/// dependency edges have been collected, reporting honestly whether the
/// enumeration completed. Channels are always enumerated in full (they
/// are linear in ports); only the quadratic-in-fanout edge enumeration is
/// bounded.
pub fn build_cdg_budgeted(topo: &Topology, tables: &RouteTables, max_deps: usize) -> BudgetedGraph {
    let mut channels: Vec<Channel> = Vec::new();
    // (switch, out port) -> channel index, for edge targets.
    let mut out_index: Vec<Vec<usize>> = Vec::with_capacity(topo.n_switches());

    for s in 0..topo.n_switches() {
        let sw = SwitchId::from(s);
        let table = tables.table(sw);
        let mut row = vec![usize::MAX; topo.ports(sw)];
        for (port, slot) in row.iter_mut().enumerate() {
            if table.port(port).class != PortClass::Unused {
                *slot = channels.len();
                channels.push(Channel::SwitchOut { sw, port });
            }
        }
        out_index.push(row);
    }
    let inject_base = channels.len();
    for h in 0..topo.n_hosts() {
        let host = NodeId::from(h);
        let (sw, port) = topo.host_inject(host);
        channels.push(Channel::Inject { host, sw, port });
    }

    let full = netsim::destset::DestSet::full(tables.n_hosts());
    let mut deps: Vec<Dependency> = Vec::new();
    let mut completed = true;
    'enumerate: for (from, ch) in channels.iter().enumerate() {
        // Where does this channel land, with what shape class and residual
        // bound? Ejection channels are sinks — the host always drains them.
        let (at, out_of, reach_in) = match *ch {
            Channel::Inject { sw, .. } => (sw, usize::MAX, None),
            Channel::SwitchOut { sw, port } => match topo.attach(sw, port) {
                Attach::Host(_) | Attach::Unused => continue,
                Attach::Switch(next, _) => {
                    if topo.is_down_hop(sw, port) {
                        // Descending arrival: residual ⊆ the sending
                        // port's reach string.
                        (next, port, Some(&tables.table(sw).port(port).reach))
                    } else {
                        (next, port, None)
                    }
                }
            },
        };
        let shape = if reach_in.is_some() {
            ShapeClass::Descending
        } else {
            ShapeClass::Ascending
        };
        let table = tables.table(at);
        let may_ascend = shape == ShapeClass::Ascending && table.down_union() != &full;
        for (onto, &to) in out_index[at.index()].iter().enumerate() {
            let info = table.port(onto);
            let feasible = match info.class {
                PortClass::Down => match reach_in {
                    Some(r) => info.reach.intersects(r),
                    None => !info.reach.is_empty(),
                },
                // Only an ascending worm whose residual may be uncovered
                // here continues upward.
                PortClass::Up => may_ascend,
                PortClass::Unused => false,
            };
            if feasible {
                if deps.len() >= max_deps {
                    completed = false;
                    break 'enumerate;
                }
                deps.push(Dependency {
                    from,
                    to,
                    at,
                    out_of,
                    onto,
                    shape,
                });
            }
        }
    }
    debug_assert!(channels[inject_base..]
        .iter()
        .all(|c| matches!(c, Channel::Inject { .. })));

    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); channels.len()];
    for d in &deps {
        adj[d.from].push(d.to);
    }
    for succ in &mut adj {
        succ.sort_unstable();
        succ.dedup();
    }

    BudgetedGraph {
        graph: ChannelGraph {
            channels,
            deps,
            adj,
        },
        completed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::{scc_is_cyclic, tarjan_sccs};
    use mintopo::topology::TopologyBuilder;

    /// h0,h1 under s0; h2,h3 under s1; s2 root.
    fn small_tree() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        b.build()
    }

    #[test]
    fn tree_cdg_is_acyclic() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let g = build_cdg(&topo, &tables);
        assert!(!g.channels.is_empty());
        assert!(!g.deps.is_empty());
        let sccs = tarjan_sccs(g.channels.len(), &g.adj);
        assert!(
            sccs.iter().all(|s| !scc_is_cyclic(&g.adj, s)),
            "up*/down* tree CDG must be acyclic"
        );
    }

    #[test]
    fn injection_depends_on_local_eject_and_uplink() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let g = build_cdg(&topo, &tables);
        // Host 0 injects at s0; it must be able to extend onto s0's eject
        // ports (down) and onto the uplink (s0 does not cover the system).
        let inj = g
            .channels
            .iter()
            .position(|c| matches!(c, Channel::Inject { host, .. } if *host == NodeId(0)))
            .expect("inject channel for h0");
        let targets: Vec<&Channel> = g.adj[inj].iter().map(|&i| &g.channels[i]).collect();
        assert!(targets.iter().any(
            |c| matches!(c, Channel::SwitchOut { sw, port } if sw.index() == 0 && *port == 3)
        ));
        assert!(targets.iter().any(
            |c| matches!(c, Channel::SwitchOut { sw, port } if sw.index() == 0 && *port == 0)
        ));
    }

    #[test]
    fn descending_channels_never_depend_upward() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let g = build_cdg(&topo, &tables);
        for d in &g.deps {
            if d.shape == ShapeClass::Descending {
                let onto = tables.table(d.at).port(d.onto).class;
                assert_eq!(onto, PortClass::Down, "descending edge must stay down");
            }
        }
    }

    #[test]
    fn root_switch_has_no_up_dependencies() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let g = build_cdg(&topo, &tables);
        // The root covers the whole system downward, so no edge may target
        // an up port there (it has none) nor may any ascending edge target
        // a port classified Up at a switch whose down-union is full.
        for d in &g.deps {
            if tables.table(d.at).port(d.onto).class == PortClass::Up {
                assert_ne!(
                    tables.table(d.at).down_union(),
                    &netsim::destset::DestSet::full(4),
                    "LCA-complete switch must not ascend"
                );
            }
        }
    }

    #[test]
    fn budgeted_build_stops_honestly() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let unbounded = build_cdg(&topo, &tables);
        assert!(unbounded.deps.len() > 3);

        let capped = build_cdg_budgeted(&topo, &tables, 3);
        assert!(!capped.completed);
        assert_eq!(capped.graph.deps.len(), 3);
        // The truncated edge list is a prefix of the full enumeration.
        assert_eq!(&unbounded.deps[..3], &capped.graph.deps[..]);
        // Channels are never truncated.
        assert_eq!(capped.graph.channels, unbounded.channels);

        let roomy = build_cdg_budgeted(&topo, &tables, unbounded.deps.len());
        assert!(roomy.completed);
        assert_eq!(roomy.graph.deps.len(), unbounded.deps.len());
    }

    #[test]
    fn edge_labels_name_switch_and_ports() {
        let topo = small_tree();
        let tables = RouteTables::build(&topo);
        let g = build_cdg(&topo, &tables);
        let d = &g.deps[0];
        let label = d.describe(&g.channels);
        assert!(label.contains("->"), "{label}");
        assert!(label.contains("worm"), "{label}");
    }
}
