//! Symmetry reduction for the bounded model checker (DESIGN.md §14).
//!
//! A scenario plan often has structural symmetries: isomorphic worms
//! crossing disjoint switch sets (the leaves of a star fabric), two worms
//! whose paths are mirror images through interchangeable input ports, or
//! a pair of host-facing output ports a multicast fans out over. States
//! that differ only by such a permutation have isomorphic futures, so the
//! explorer needs only one representative per orbit.
//!
//! [`build`] extracts the plan's symmetry in two commuting pieces:
//!
//! 1. **Separable classes** — maximal groups of worms with identical local
//!    structure whose switch footprints are disjoint from *every* other
//!    worm. Their full symmetric group is huge, so it is never
//!    enumerated: [`SymPlan::canonical_key`] instead sorts the members'
//!    state *projections* and relocates each member's content into the
//!    member slots in sorted order — a canonical orbit element in
//!    O(k log k) for a class of k worms.
//! 2. **An entangled group** — generators over the remaining worms and
//!    switches (worm swaps with an involutive port pairing, and
//!    host-facing output-port swaps), closed under composition with a
//!    small cap. The canonical key is the lexicographic minimum of the
//!    encoded state over this group.
//!
//! The generators never touch class worms or class-owned switches, so the
//! two phases commute and composing them canonicalizes the product group.
//!
//! De-canonicalization is free by construction: the explorer stores the
//! first *concrete* state of each orbit and the concrete transition that
//! discovered it, so counterexample traces never contain a permuted
//! state. Permutations exist only here — for key computation and for the
//! property tests' random orbit sampling.

use crate::model::{plan_geometry, MState, Plan, Target, VState};
use netsim::rng::SimRng;
use std::collections::{HashMap, HashSet, VecDeque};
use switches::semantics::BranchState;

/// Sentinel for ports outside the plan's used set (never holds content).
const UNUSED: usize = usize::MAX;

/// A plan automorphism: a joint permutation of visits, branch indices,
/// switches, and per-switch ports that maps the plan onto itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Perm {
    /// `visit[v]` — image visit of plan visit `v`.
    visit: Vec<usize>,
    /// `branch[v][b]` — image branch index (within the image visit).
    branch: Vec<Vec<usize>>,
    /// `sw[s]` — image switch.
    sw: Vec<usize>,
    /// `port[s][p]` — image port (at the image switch); [`UNUSED`] for
    /// ports no visit touches.
    port: Vec<Vec<usize>>,
}

impl Perm {
    fn identity(plan: &Plan) -> Perm {
        let (n_sw, widths) = plan_geometry(plan);
        let mut used = vec![Vec::new(); n_sw];
        for v in &plan.visits {
            used[v.sw].push(v.in_port);
            for b in &v.branches {
                used[v.sw].push(b.out_port);
            }
        }
        Perm {
            visit: (0..plan.visits.len()).collect(),
            branch: plan
                .visits
                .iter()
                .map(|v| (0..v.branches.len()).collect())
                .collect(),
            sw: (0..n_sw).collect(),
            port: (0..n_sw)
                .map(|s| {
                    (0..widths[s])
                        .map(|p| if used[s].contains(&p) { p } else { UNUSED })
                        .collect()
                })
                .collect(),
        }
    }

    /// Composition applying `self` first, then `other`.
    fn then(&self, other: &Perm) -> Perm {
        Perm {
            visit: self.visit.iter().map(|&v| other.visit[v]).collect(),
            branch: self
                .branch
                .iter()
                .enumerate()
                .map(|(v, bs)| {
                    let iv = self.visit[v];
                    bs.iter().map(|&b| other.branch[iv][b]).collect()
                })
                .collect(),
            sw: self.sw.iter().map(|&s| other.sw[s]).collect(),
            port: self
                .port
                .iter()
                .enumerate()
                .map(|(s, ps)| {
                    let is = self.sw[s];
                    ps.iter()
                        .map(|&p| {
                            if p == UNUSED {
                                UNUSED
                            } else {
                                other.port[is][p]
                            }
                        })
                        .collect()
                })
                .collect(),
        }
    }
}

/// One worm of a separable class: its visits (plan order), the switches
/// it owns (first-use order), and the ports it uses per owned switch
/// (first-use order). Equal signatures align these lists positionally
/// across members.
#[derive(Debug)]
struct Member {
    visits: Vec<usize>,
    switches: Vec<usize>,
    ports: Vec<Vec<usize>>,
}

/// A separable class: ≥2 isomorphic worms on pairwise-disjoint switches.
#[derive(Debug)]
struct Class {
    members: Vec<Member>,
}

/// The symmetry structure of one plan (see module docs).
#[derive(Debug)]
pub(crate) struct SymPlan {
    classes: Vec<Class>,
    group: Vec<Perm>,
    identity: Perm,
}

/// Cap on the enumerated entangled group; plans whose closure exceeds it
/// fall back to the identity group (sound — reduction only weakens).
const GROUP_CAP: usize = 256;

/// Local (worm-relative) structural signature of a worm: two worms with
/// equal signatures are isomorphic up to a switch/port relabeling.
fn signature(plan: &Plan, member: &mut Member) -> Vec<u8> {
    let pos: HashMap<usize, usize> = member
        .visits
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let mut sig = Vec::new();
    for &vi in &member.visits {
        let v = &plan.visits[vi];
        let lsw = match member.switches.iter().position(|&s| s == v.sw) {
            Some(k) => k,
            None => {
                member.switches.push(v.sw);
                member.ports.push(Vec::new());
                member.switches.len() - 1
            }
        };
        let lin = local_index(&mut member.ports[lsw], v.in_port);
        push(&mut sig, lsw);
        push(&mut sig, lin);
        sig.push(u8::from(v.descending));
        match v.parent {
            None => push(&mut sig, usize::MAX),
            Some((pv, pb)) => {
                push(&mut sig, pos[&pv]);
                push(&mut sig, pb);
            }
        }
        sig.push(u8::from(v.env_fed));
        push(&mut sig, v.branches.len());
        for b in &v.branches {
            let lout = local_index(&mut member.ports[lsw], b.out_port);
            push(&mut sig, lout);
            match b.target {
                Target::Host(_) => sig.push(0),
                Target::Visit(w) => {
                    sig.push(1);
                    push(&mut sig, pos[&w]);
                }
                Target::Env(_) => sig.push(2),
            }
        }
    }
    sig
}

fn local_index(ports: &mut Vec<usize>, p: usize) -> usize {
    match ports.iter().position(|&x| x == p) {
        Some(i) => i,
        None => {
            ports.push(p);
            ports.len() - 1
        }
    }
}

fn push(out: &mut Vec<u8>, x: usize) {
    out.extend_from_slice(&(x as u32).to_le_bytes());
}

/// Extracts the symmetry structure of a plan.
pub(crate) fn build(plan: &Plan) -> SymPlan {
    let identity = Perm::identity(plan);
    let n_worms = plan.worm_desc.len();
    let mut members: Vec<Member> = (0..n_worms)
        .map(|_| Member {
            visits: Vec::new(),
            switches: Vec::new(),
            ports: Vec::new(),
        })
        .collect();
    for (i, v) in plan.visits.iter().enumerate() {
        members[v.worm].visits.push(i);
    }
    let sigs: Vec<Vec<u8>> = members.iter_mut().map(|m| signature(plan, m)).collect();
    let separable = crate::model::safe_worms(plan);

    // Separable classes: group separable worms by signature.
    let mut by_sig: HashMap<&[u8], Vec<usize>> = HashMap::new();
    for w in 0..n_worms {
        if separable[w] {
            by_sig.entry(&sigs[w]).or_default().push(w);
        }
    }
    let mut class_groups: Vec<Vec<usize>> = by_sig.into_values().filter(|g| g.len() >= 2).collect();
    class_groups.sort_by_key(|g| g[0]);
    let mut classed = vec![false; n_worms];
    let mut class_switch = vec![false; plan_geometry(plan).0];
    for g in &class_groups {
        for &w in g {
            classed[w] = true;
            for &s in &members[w].switches {
                class_switch[s] = true;
            }
        }
    }

    // Entangled generators over the remaining worms and switches.
    let mut generators = Vec::new();
    for a in 0..n_worms {
        for b in a + 1..n_worms {
            if classed[a] || classed[b] {
                continue;
            }
            if let Some(g) = worm_swap(plan, &members, &sigs, a, b) {
                generators.push(g);
            }
        }
    }
    let (n_sw, widths) = plan_geometry(plan);
    for s in 0..n_sw {
        if class_switch[s] {
            continue;
        }
        for p in 0..widths[s] {
            for q in p + 1..widths[s] {
                if let Some(g) = port_swap(plan, &identity, s, p, q) {
                    generators.push(g);
                }
            }
        }
    }

    // BFS closure of the generators under composition.
    let mut group = vec![identity.clone()];
    let mut seen: HashSet<Perm> = group.iter().cloned().collect();
    let mut queue: VecDeque<Perm> = group.clone().into();
    let mut overflow = false;
    'closure: while let Some(e) = queue.pop_front() {
        for g in &generators {
            let c = e.then(g);
            if seen.insert(c.clone()) {
                if seen.len() > GROUP_CAP {
                    overflow = true;
                    break 'closure;
                }
                group.push(c.clone());
                queue.push_back(c);
            }
        }
    }
    if overflow {
        group = vec![identity.clone()];
    }

    let classes = class_groups
        .into_iter()
        .map(|g| Class {
            members: g
                .into_iter()
                .map(|w| {
                    std::mem::replace(
                        &mut members[w],
                        Member {
                            visits: Vec::new(),
                            switches: Vec::new(),
                            ports: Vec::new(),
                        },
                    )
                })
                .collect(),
        })
        .collect();
    SymPlan {
        classes,
        group,
        identity,
    }
}

/// Swap of two isomorphic unclassed worms with identical switch
/// sequences, via an involutive port pairing; `None` when the pairing
/// conflicts or would move a third worm's port.
fn worm_swap(
    plan: &Plan,
    members: &[Member],
    sigs: &[Vec<u8>],
    a: usize,
    b: usize,
) -> Option<Perm> {
    if sigs[a] != sigs[b] {
        return None;
    }
    let (va, vb) = (&members[a].visits, &members[b].visits);
    if va.len() != vb.len() {
        return None;
    }
    for (&x, &y) in va.iter().zip(vb) {
        if plan.visits[x].sw != plan.visits[y].sw {
            return None;
        }
    }
    // Involutive pairing of the two worms' ports, per switch.
    let mut pairing: HashMap<(usize, usize), usize> = HashMap::new();
    let add = |pairing: &mut HashMap<(usize, usize), usize>, s: usize, p: usize, q: usize| {
        for (x, y) in [(p, q), (q, p)] {
            match pairing.get(&(s, x)) {
                Some(&img) if img != y => return false,
                Some(_) => {}
                None => {
                    pairing.insert((s, x), y);
                }
            }
        }
        true
    };
    for (&x, &y) in va.iter().zip(vb) {
        let (vx, vy) = (&plan.visits[x], &plan.visits[y]);
        if !add(&mut pairing, vx.sw, vx.in_port, vy.in_port) {
            return None;
        }
        if vx.branches.len() != vy.branches.len() {
            return None;
        }
        for (bx, by) in vx.branches.iter().zip(&vy.branches) {
            if !add(&mut pairing, vx.sw, bx.out_port, by.out_port) {
                return None;
            }
        }
    }
    // Moved ports must belong to these two worms only.
    for (&(s, p), &q) in &pairing {
        if p == q {
            continue;
        }
        for v in &plan.visits {
            if v.worm == a || v.worm == b || v.sw != s {
                continue;
            }
            if v.in_port == p || v.branches.iter().any(|br| br.out_port == p) {
                return None;
            }
        }
    }
    let mut perm = Perm::identity(plan);
    for (&x, &y) in va.iter().zip(vb) {
        perm.visit[x] = y;
        perm.visit[y] = x;
    }
    for (&(s, p), &q) in &pairing {
        perm.port[s][p] = q;
    }
    Some(perm)
}

/// Swap of two interchangeable host-facing output ports of one switch:
/// no visit enters through either, and every visit touching one has
/// exactly one host-bound branch on each.
fn port_swap(plan: &Plan, identity: &Perm, s: usize, p: usize, q: usize) -> Option<Perm> {
    if identity.port[s][p] == UNUSED || identity.port[s][q] == UNUSED {
        return None;
    }
    let mut swaps: Vec<(usize, usize, usize)> = Vec::new(); // (visit, bp, bq)
    let mut touched = false;
    for (vi, v) in plan.visits.iter().enumerate() {
        if v.sw != s {
            continue;
        }
        if v.in_port == p || v.in_port == q {
            return None;
        }
        let on = |port: usize| {
            let hits: Vec<usize> = v
                .branches
                .iter()
                .enumerate()
                .filter(|(_, br)| br.out_port == port)
                .map(|(i, _)| i)
                .collect();
            hits
        };
        let (bp, bq) = (on(p), on(q));
        match (bp.len(), bq.len()) {
            (0, 0) => {}
            (1, 1) => {
                let (ip, iq) = (bp[0], bq[0]);
                let host = |i: usize| matches!(v.branches[i].target, Target::Host(_));
                if !host(ip) || !host(iq) {
                    return None;
                }
                swaps.push((vi, ip, iq));
                touched = true;
            }
            _ => return None,
        }
    }
    if !touched {
        return None;
    }
    let mut perm = identity.clone();
    perm.port[s][p] = q;
    perm.port[s][q] = p;
    for (v, ip, iq) in swaps {
        perm.branch[v][ip] = iq;
        perm.branch[v][iq] = ip;
    }
    Some(perm)
}

impl SymPlan {
    /// `true` when the plan has no usable symmetry (canonical key would
    /// equal the plain encoding).
    pub(crate) fn is_trivial(&self) -> bool {
        self.classes.is_empty() && self.group.len() <= 1
    }

    /// The canonical byte key of `state`'s symmetry orbit: class members
    /// relocated into sorted-projection order, then the lexicographic
    /// minimum of the encoding over the entangled group.
    pub(crate) fn canonical_key(&self, plan: &Plan, state: &MState) -> Vec<u8> {
        let relocated = if self.classes.is_empty() {
            None
        } else {
            let mut perm = self.identity.clone();
            for class in &self.classes {
                let projs: Vec<Vec<u8>> = class
                    .members
                    .iter()
                    .map(|m| projection(plan, state, m))
                    .collect();
                let mut order: Vec<usize> = (0..class.members.len()).collect();
                order.sort_by(|&i, &j| projs[i].cmp(&projs[j]));
                for (slot, &src) in order.iter().enumerate() {
                    relocate(&mut perm, &class.members[src], &class.members[slot]);
                }
            }
            Some(apply(plan, &perm, state))
        };
        let base = relocated.as_ref().unwrap_or(state);
        if self.group.len() <= 1 {
            encode_state(base)
        } else {
            self.group
                .iter()
                .map(|g| encode_state(&apply(plan, g, base)))
                .min()
                .expect("group contains the identity")
        }
    }

    /// A uniformly-ish random orbit permutation (class relocation composed
    /// with a random entangled-group element) — property-test sampling of
    /// the quotient.
    pub(crate) fn random_element(&self, rng: &mut SimRng) -> Perm {
        let mut perm = self.identity.clone();
        for class in &self.classes {
            let mut slots: Vec<usize> = (0..class.members.len()).collect();
            rng.shuffle(&mut slots);
            for (src, &slot) in slots.iter().enumerate() {
                relocate(&mut perm, &class.members[src], &class.members[slot]);
            }
        }
        let g = &self.group[rng.below(self.group.len())];
        perm.then(g)
    }
}

/// Writes the relocation of `from`'s content onto `to`'s slots into
/// `perm` (members of one class, positionally aligned by signature).
fn relocate(perm: &mut Perm, from: &Member, to: &Member) {
    for (&x, &y) in from.visits.iter().zip(&to.visits) {
        perm.visit[x] = y;
    }
    for (k, &s) in from.switches.iter().enumerate() {
        perm.sw[s] = to.switches[k];
        for (j, &p) in from.ports[k].iter().enumerate() {
            perm.port[s][p] = to.ports[k][j];
        }
    }
}

/// The member's slice of the state, expressed in worm-local coordinates —
/// equal projections mean interchangeable members.
fn projection(_plan: &Plan, state: &MState, m: &Member) -> Vec<u8> {
    let local_visit = |v: usize| m.visits.iter().position(|&x| x == v).unwrap_or(usize::MAX);
    let mut out = Vec::new();
    for &vi in &m.visits {
        encode_vstate(&mut out, &state.visits[vi], true);
    }
    for (k, &sw) in m.switches.iter().enumerate() {
        if !state.cq.is_empty() {
            let cq = &state.cq[sw];
            push(&mut out, cq.free);
            for slot in [&cq.resv_desc, &cq.resv_asc] {
                match slot {
                    None => out.push(0),
                    Some(r) => {
                        out.push(1);
                        let lp = m.ports[k]
                            .iter()
                            .position(|&x| x == r.input)
                            .unwrap_or(usize::MAX);
                        push(&mut out, lp);
                        push(&mut out, r.need);
                        push(&mut out, r.got);
                    }
                }
            }
        }
        if !state.queues.is_empty() {
            for &p in &m.ports[k] {
                let queue = &state.queues[sw][p];
                push(&mut out, queue.len());
                for &(v, b) in queue {
                    push(&mut out, local_visit(v as usize));
                    out.push(b);
                }
            }
        }
        if !state.owners.is_empty() {
            for &p in &m.ports[k] {
                match state.owners[sw][p] {
                    None => out.push(0),
                    Some((v, b)) => {
                        out.push(1);
                        push(&mut out, local_visit(v as usize));
                        out.push(b);
                    }
                }
                match state.occupants[sw][p] {
                    None => out.push(0),
                    Some(v) => {
                        out.push(1);
                        push(&mut out, local_visit(v as usize));
                    }
                }
            }
        }
    }
    out
}

fn encode_vstate(out: &mut Vec<u8>, vs: &VState, local: bool) {
    match vs {
        VState::Pending => out.push(0),
        VState::Waiting => out.push(1),
        VState::StoredCb { reads } => {
            out.push(2);
            push(out, reads.len());
            for &r in reads {
                push(out, usize::from(r));
            }
        }
        VState::StoredIb { head } => {
            out.push(3);
            push(out, usize::from(head.total));
            push(out, usize::from(head.freed));
            push(out, head.branches.len());
            for b in &head.branches {
                // In worm-local coordinates the port is determined by the
                // branch index; globally it distinguishes states.
                if !local {
                    push(out, b.port);
                }
                push(out, usize::from(b.read));
                out.push(u8::from(b.granted));
                out.push(u8::from(b.done));
            }
        }
        VState::Done => out.push(4),
    }
}

/// Injective byte encoding of a model state — the dedup key of the
/// unreduced explorer and the comparison domain of the canonical key.
pub(crate) fn encode_state(s: &MState) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    push(&mut out, s.visits.len());
    for vs in &s.visits {
        encode_vstate(&mut out, vs, false);
    }
    push(&mut out, s.cq.len());
    for cq in &s.cq {
        push(&mut out, cq.free);
        for slot in [&cq.resv_desc, &cq.resv_asc] {
            match slot {
                None => out.push(0),
                Some(r) => {
                    out.push(1);
                    push(&mut out, r.input);
                    push(&mut out, r.need);
                    push(&mut out, r.got);
                }
            }
        }
    }
    push(&mut out, s.queues.len());
    for qs in &s.queues {
        push(&mut out, qs.len());
        for queue in qs {
            push(&mut out, queue.len());
            for &(v, b) in queue {
                push(&mut out, v as usize);
                out.push(b);
            }
        }
    }
    push(&mut out, s.owners.len());
    for os in &s.owners {
        push(&mut out, os.len());
        for o in os {
            match o {
                None => out.push(0),
                Some((v, b)) => {
                    out.push(1);
                    push(&mut out, *v as usize);
                    out.push(*b);
                }
            }
        }
    }
    push(&mut out, s.occupants.len());
    for os in &s.occupants {
        push(&mut out, os.len());
        for o in os {
            match o {
                None => out.push(0),
                Some(v) => {
                    out.push(1);
                    push(&mut out, *v as usize);
                }
            }
        }
    }
    push(&mut out, s.env_fill.len());
    for &f in &s.env_fill {
        push(&mut out, usize::from(f));
    }
    push(&mut out, s.env_ready.len());
    for &r in &s.env_ready {
        out.push(u8::from(r));
    }
    out
}

/// Applies a plan automorphism to a state, producing the permuted state.
pub(crate) fn apply(plan: &Plan, perm: &Perm, state: &MState) -> MState {
    let mut next = state.clone();
    for (v, vs) in state.visits.iter().enumerate() {
        let iv = perm.visit[v];
        next.visits[iv] = match vs {
            VState::Pending | VState::Waiting | VState::Done => vs.clone(),
            VState::StoredCb { reads } => {
                let mut nr = vec![0u16; reads.len()];
                for (b, &r) in reads.iter().enumerate() {
                    nr[perm.branch[v][b]] = r;
                }
                VState::StoredCb { reads: nr }
            }
            VState::StoredIb { head } => {
                let sw = plan.visits[v].sw;
                let mut branches = head.branches.clone();
                for (b, bs) in head.branches.iter().enumerate() {
                    let nb = perm.branch[v][b];
                    let np = perm.port[sw][bs.port];
                    debug_assert_eq!(
                        np, plan.visits[iv].branches[nb].out_port,
                        "permutation is a plan automorphism"
                    );
                    branches[nb] = BranchState {
                        port: np,
                        read: bs.read,
                        granted: bs.granted,
                        done: bs.done,
                    };
                }
                VState::StoredIb {
                    head: switches::semantics::IbHeadState {
                        total: head.total,
                        branches,
                        freed: head.freed,
                    },
                }
            }
        };
    }
    for (sw, cq) in state.cq.iter().enumerate() {
        let mut c = cq.clone();
        for r in [&mut c.resv_desc, &mut c.resv_asc].into_iter().flatten() {
            r.input = perm.port[sw][r.input];
        }
        next.cq[perm.sw[sw]] = c;
    }
    for (sw, qs) in state.queues.iter().enumerate() {
        let isw = perm.sw[sw];
        for (p, queue) in qs.iter().enumerate() {
            let ip = perm.port[sw][p];
            if ip == UNUSED {
                debug_assert!(queue.is_empty(), "unused port holds no content");
                continue;
            }
            next.queues[isw][ip] = queue
                .iter()
                .map(|&(v, b)| {
                    (
                        perm.visit[v as usize] as u32,
                        perm.branch[v as usize][usize::from(b)] as u8,
                    )
                })
                .collect();
        }
    }
    for (sw, os) in state.owners.iter().enumerate() {
        let isw = perm.sw[sw];
        for (p, o) in os.iter().enumerate() {
            let ip = perm.port[sw][p];
            if ip == UNUSED {
                debug_assert!(o.is_none(), "unused port holds no content");
                continue;
            }
            next.owners[isw][ip] = o.map(|(v, b)| {
                (
                    perm.visit[v as usize] as u32,
                    perm.branch[v as usize][usize::from(b)] as u8,
                )
            });
        }
    }
    for (sw, os) in state.occupants.iter().enumerate() {
        let isw = perm.sw[sw];
        for (p, o) in os.iter().enumerate() {
            let ip = perm.port[sw][p];
            if ip == UNUSED {
                debug_assert!(o.is_none(), "unused port holds no content");
                continue;
            }
            next.occupants[isw][ip] = o.map(|v| perm.visit[v as usize] as u32);
        }
    }
    // env_fill is indexed by visit; permute it too (env plans never build
    // symmetry today, but keep apply total).
    for (v, &f) in state.env_fill.iter().enumerate() {
        next.env_fill[perm.visit[v]] = f;
    }
    next
}
