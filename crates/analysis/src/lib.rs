//! # mdw-analysis — static deadlock-freedom & protocol-invariant analysis
//!
//! The paper's key correctness claim is *static*: multidestination worms
//! are deadlock-free iff a packet accepted for transmission can
//! eventually be completely buffered — a condition that depends only on
//! topology, routing function, switch architecture, and buffer sizing.
//! The runtime watchdog (DESIGN.md §7) detects a deadlock *after* the
//! fabric wedges; this crate rejects unsafe configurations *before a
//! single cycle runs*:
//!
//! 1. [`cdg`] enumerates the channel-dependency graph induced by the LCA
//!    routing function over every worm shape class, reusing
//!    `mintopo::route`/`mintopo::reach`;
//! 2. [`scc`] runs iterative Tarjan cycle detection over it — a
//!    dependency cycle is reported with the switches, ports, and worm
//!    shapes that induce it;
//! 3. [`checks`] applies the paper's buffer-sufficiency condition per
//!    switch architecture (central-queue chunk capacity vs. maximum worm
//!    length; input-FIFO depth and the asynchronous-replication
//!    constraint);
//! 4. [`roundtrip`] cross-validates header encoding: reachability
//!    bit-strings from `mintopo::reach` must round-trip through the
//!    production decode in `switches`.
//!
//! Everything lands in one [`report::ConfigReport`] — errors for provably
//! unsafe configurations, warnings for workload-dependent hazards — which
//! `core` surfaces from `SystemConfig` validation and the `mdw-lint` CLI
//! renders as human-readable text or JSON.
#![deny(unreachable_pub, missing_debug_implementations, missing_docs)]

pub mod cdg;
pub mod checks;
pub mod report;
pub mod roundtrip;
pub mod scc;

pub use cdg::{build_cdg, Channel, ChannelGraph, Dependency, ShapeClass};
pub use checks::{switch_sizing, ArchClass};
pub use report::{AnalysisStats, ConfigReport, CycleReport, Diagnostic, Severity};
pub use roundtrip::lint_roundtrips;
pub use scc::tarjan_sccs;

use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::topology::Topology;

/// Runs the fabric-level analyses — CDG construction + SCC cycle
/// detection, and the header round-trip lint — appending findings and
/// coverage counters to `report`.
///
/// Switch-sizing checks ([`switch_sizing`]) are separate because they
/// need only a `SwitchConfig`, not a built topology; callers typically
/// run them first and skip the fabric pass when sizing is already broken.
pub fn analyze_fabric(
    topo: &Topology,
    tables: &RouteTables,
    policy: ReplicatePolicy,
    report: &mut ConfigReport,
) {
    let graph = build_cdg(topo, tables);
    report.stats.channels = graph.channels.len();
    report.stats.dependencies = graph.deps.len();

    let sccs = scc::tarjan_sccs(graph.channels.len(), &graph.adj);
    report.stats.sccs = sccs.len();
    for component in &sccs {
        if !scc::scc_is_cyclic(&graph.adj, component) {
            continue;
        }
        let cycle = scc::cycle_in_scc(&graph.adj, component);
        let on_cycle: std::collections::HashSet<usize> = cycle.iter().copied().collect();
        let channels: Vec<String> = cycle
            .iter()
            .map(|&c| graph.channels[c].describe())
            .collect();
        let edges: Vec<String> = graph
            .deps
            .iter()
            .filter(|d| {
                on_cycle.contains(&d.from)
                    && on_cycle.contains(&d.to)
                    && cycle
                        .iter()
                        .position(|&c| c == d.from)
                        .is_some_and(|i| cycle[(i + 1) % cycle.len()] == d.to)
            })
            .map(|d| d.describe(&graph.channels))
            .collect();
        report.error(
            "cdg-cycle",
            format!(
                "channel-dependency cycle through {} channel(s): {} — worms can \
                 each hold a channel while waiting on the next, forever",
                cycle.len(),
                channels.join(" -> ")
            ),
        );
        report.cycles.push(CycleReport { channels, edges });
    }

    roundtrip::lint_roundtrips(tables, policy, report);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::topology::TopologyBuilder;
    use netsim::ids::NodeId;

    #[test]
    fn valid_tree_fabric_analyzes_clean() {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        let topo = b.build();
        let tables = RouteTables::build(&topo);
        let mut report = ConfigReport::new();
        analyze_fabric(&topo, &tables, ReplicatePolicy::ReturnOnly, &mut report);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.cycles.is_empty());
        assert!(report.stats.channels > 0);
        assert!(report.stats.dependencies > 0);
        assert!(report.stats.roundtrips > 0);
    }
}
