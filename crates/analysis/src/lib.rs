//! # mdw-analysis — static deadlock-freedom & protocol-invariant analysis
//!
//! The paper's key correctness claim is *static*: multidestination worms
//! are deadlock-free iff a packet accepted for transmission can
//! eventually be completely buffered — a condition that depends only on
//! topology, routing function, switch architecture, and buffer sizing.
//! The runtime watchdog (DESIGN.md §7) detects a deadlock *after* the
//! fabric wedges; this crate rejects unsafe configurations *before a
//! single cycle runs*:
//!
//! 1. [`cdg`] enumerates the channel-dependency graph induced by the LCA
//!    routing function over every worm shape class, reusing
//!    `mintopo::route`/`mintopo::reach`;
//! 2. [`scc`] runs iterative Tarjan cycle detection over it — a
//!    dependency cycle is reported with the switches, ports, and worm
//!    shapes that induce it;
//! 3. [`checks`] applies the paper's buffer-sufficiency condition per
//!    switch architecture (central-queue chunk capacity vs. maximum worm
//!    length; input-FIFO depth and the asynchronous-replication
//!    constraint);
//! 4. [`roundtrip`] cross-validates header encoding: reachability
//!    bit-strings from `mintopo::reach` must round-trip through the
//!    production decode in `switches`.
//!
//! Everything lands in one [`report::ConfigReport`] — errors for provably
//! unsafe configurations, warnings for workload-dependent hazards — which
//! `core` surfaces from `SystemConfig` validation and the `mdw-lint` CLI
//! renders as human-readable text or JSON.
#![deny(unreachable_pub, missing_debug_implementations, missing_docs)]

pub mod cdg;
pub mod certify;
pub mod checks;
mod compose;
pub mod destset;
pub mod model;
pub mod replay;
pub mod report;
pub mod roundtrip;
pub mod scc;
mod symmetry;
pub mod timing;

pub use cdg::{build_cdg, build_cdg_budgeted, Channel, ChannelGraph, Dependency, ShapeClass};
pub use certify::{certify_fabric, vet_reroute_certified, Certificate, CertifyOutcome, RankRule};
pub use checks::{switch_sizing, ArchClass};
pub use destset::{CompactPort, CompactTable, CompactTables, RunSet};
pub use model::{
    check_model, check_model_opts, CheckOutcome, ModelBounds, ModelMode, ModelOptions, ModelStats,
    TraceOp, TraceStep, Violation,
};
pub use replay::{
    replay_cq_trace, replay_model_violation, ModelReplay, ReplayMismatch, ReplayReport,
};
pub use report::{AnalysisStats, ConfigReport, CycleReport, Diagnostic, Severity};
pub use roundtrip::lint_roundtrips;
pub use scc::tarjan_sccs;
pub use timing::{
    check_model_opts_timed, check_model_timed, vet_reroute_certified_timed, vet_reroute_timed,
    Samples, VetStats,
};

use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::topology::Topology;

/// Runs the fabric-level analyses — CDG construction + SCC cycle
/// detection, and the header round-trip lint — appending findings and
/// coverage counters to `report`.
///
/// Switch-sizing checks ([`switch_sizing`]) are separate because they
/// need only a `SwitchConfig`, not a built topology; callers typically
/// run them first and skip the fabric pass when sizing is already broken.
pub fn analyze_fabric(
    topo: &Topology,
    tables: &RouteTables,
    policy: ReplicatePolicy,
    report: &mut ConfigReport,
) {
    analyze_fabric_budgeted(topo, tables, policy, usize::MAX, report);
}

/// Budget-bounded variant of [`analyze_fabric`] for fabrics where full CDG
/// enumeration is not affordable: stops after `max_deps` dependency edges.
///
/// When the budget is exhausted the truncated graph is a *prefix* of the
/// true CDG, so cycle detection over it would be unsound — it is skipped,
/// a `cdg-budget-exhausted` warning records the truncation honestly, and
/// the deadlock verdict must come from a certificate check
/// ([`certify::certify_fabric`]) instead. The header round-trip lint is
/// independent of the CDG and runs either way. Returns whether the
/// enumeration completed.
pub fn analyze_fabric_budgeted(
    topo: &Topology,
    tables: &RouteTables,
    policy: ReplicatePolicy,
    max_deps: usize,
    report: &mut ConfigReport,
) -> bool {
    let budgeted = build_cdg_budgeted(topo, tables, max_deps);
    let graph = &budgeted.graph;
    report.stats.channels = graph.channels.len();
    report.stats.dependencies = graph.deps.len();

    if !budgeted.completed {
        report.warning(
            "cdg-budget-exhausted",
            format!(
                "explicit CDG enumeration stopped at its budget of {max_deps} \
                 dependency edges ({} channels) — cycle detection skipped; the \
                 deadlock verdict must come from the certificate checker",
                graph.channels.len()
            ),
        );
        roundtrip::lint_roundtrips(tables, policy, report);
        return false;
    }

    let sccs = scc::tarjan_sccs(graph.channels.len(), &graph.adj);
    report.stats.sccs = sccs.len();
    for component in &sccs {
        if !scc::scc_is_cyclic(&graph.adj, component) {
            continue;
        }
        let cycle = scc::cycle_in_scc(&graph.adj, component);
        let on_cycle: std::collections::HashSet<usize> = cycle.iter().copied().collect();
        let channels: Vec<String> = cycle
            .iter()
            .map(|&c| graph.channels[c].describe())
            .collect();
        let edges: Vec<String> = graph
            .deps
            .iter()
            .filter(|d| {
                on_cycle.contains(&d.from)
                    && on_cycle.contains(&d.to)
                    && cycle
                        .iter()
                        .position(|&c| c == d.from)
                        .is_some_and(|i| cycle[(i + 1) % cycle.len()] == d.to)
            })
            .map(|d| d.describe(&graph.channels))
            .collect();
        report.error(
            "cdg-cycle",
            format!(
                "channel-dependency cycle through {} channel(s): {} — worms can \
                 each hold a channel while waiting on the next, forever",
                cycle.len(),
                channels.join(" -> ")
            ),
        );
        report.cycles.push(CycleReport { channels, edges });
    }

    roundtrip::lint_roundtrips(tables, policy, report);
    true
}

/// Activation gate for online reroute candidates (DESIGN.md §10): runs the
/// full fabric analysis — CDG construction + Tarjan cycle detection and the
/// header round-trip lint — over the *candidate* tables and accepts only a
/// report free of errors.
///
/// An honest masked rebuild (`RouteTables::build_masked`) cannot introduce
/// a dependency cycle: masking only removes channels and shrinks reach
/// strings, while the up/down orientation comes from the topology, which a
/// link failure does not change. The gate still runs unconditionally —
/// reroute candidates may come from other sources (incremental table
/// patches, operator overrides, bugs), and the static check costs
/// microseconds next to the fabric quiesce it guards.
///
/// # Errors
///
/// Returns the full report when any error-severity finding exists; the
/// caller must stay on the old tables and degrade instead of activating.
pub fn vet_reroute(
    topo: &Topology,
    candidate: &RouteTables,
    policy: ReplicatePolicy,
) -> Result<AnalysisStats, Box<ConfigReport>> {
    let mut report = ConfigReport::new();
    check_live_switches(topo, candidate, &mut report);
    check_full_reachability(topo, candidate, &mut report);
    analyze_fabric(topo, candidate, policy, &mut report);
    if report.has_errors() {
        Err(Box::new(report))
    } else {
        Ok(report.stats)
    }
}

/// Rejects candidate tables that strand a live switch: one with a host
/// still attached but whose masked reach strings are empty on *every*
/// port. Such a table set induces no channels at that switch, so the
/// channel-dependency graph is vacuously acyclic and the CDG pass alone
/// would wave the candidate through — yet the attached host's first
/// injected worm has nowhere to route and wedges the input forever.
fn check_live_switches(topo: &Topology, candidate: &RouteTables, report: &mut ConfigReport) {
    use mintopo::topology::Attach;
    use netsim::ids::SwitchId;
    for s in 0..topo.n_switches() {
        let sw = SwitchId(s as u32);
        let hosts: Vec<u32> = (0..topo.ports(sw))
            .filter_map(|p| match topo.attach(sw, p) {
                Attach::Host(h) => Some(h.0),
                _ => None,
            })
            .collect();
        if hosts.is_empty() {
            continue; // transit switch fully masked off — legitimately dark
        }
        let table = candidate.table(sw);
        let routable = (0..table.n_ports()).any(|p| !table.port(p).reach.is_empty());
        if !routable {
            report.error(
                "unreachable-switch",
                format!(
                    "switch {s} still has {} attached host(s) ({}) but every port's \
                     reach string is empty — the CDG is vacuously acyclic there, yet \
                     any worm injected at the switch can never be routed",
                    hosts.len(),
                    hosts
                        .iter()
                        .map(|h| format!("h{h}"))
                        .collect::<Vec<_>>()
                        .join(","),
                ),
            );
        }
    }
}

/// Rejects candidate tables that partition the fabric: a switch with
/// hosts attached from which some destination cannot be reached on any
/// surviving port. Such tables pass the CDG pass — fewer channels, still
/// acyclic — yet a host can inject a worm to *any* destination, and the
/// first one addressed to the cut-off host has no output port and wedges
/// (or, for unicast, panics the router). Transit switches are exempt:
/// masked reach strings already keep worms they cannot forward from ever
/// being routed to them. The correct response to a partitioning mask is
/// to stay on the old tables and degrade, so the gate must say no.
fn check_full_reachability(topo: &Topology, candidate: &RouteTables, report: &mut ConfigReport) {
    use mintopo::topology::Attach;
    use netsim::ids::{NodeId, SwitchId};
    for s in 0..topo.n_switches() {
        let sw = SwitchId(s as u32);
        let table = candidate.table(sw);
        let has_hosts = (0..topo.ports(sw)).any(|p| matches!(topo.attach(sw, p), Attach::Host(_)));
        let live = (0..table.n_ports()).any(|p| !table.port(p).reach.is_empty());
        if !has_hosts || !live {
            continue; // transit switch, or fully dark: check_live_switches owns the latter
        }
        let missing: Vec<String> = (0..topo.n_hosts())
            .filter(|&h| table.try_route_unicast(NodeId(h as u32)).is_none())
            .map(|h| format!("h{h}"))
            .collect();
        if !missing.is_empty() {
            report.error(
                "unreachable-destination",
                format!(
                    "switch {s} cannot route to {} host(s) ({}) under the candidate \
                     tables — the masked fabric is partitioned; the first worm \
                     addressed there would have no output port",
                    missing.len(),
                    missing.join(","),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::topology::TopologyBuilder;
    use netsim::ids::NodeId;

    #[test]
    fn valid_tree_fabric_analyzes_clean() {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        let topo = b.build();
        let tables = RouteTables::build(&topo);
        let mut report = ConfigReport::new();
        analyze_fabric(&topo, &tables, ReplicatePolicy::ReturnOnly, &mut report);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert!(report.cycles.is_empty());
        assert!(report.stats.channels > 0);
        assert!(report.stats.dependencies > 0);
        assert!(report.stats.roundtrips > 0);
    }

    /// Two leaves under two roots — the path diversity a reroute needs.
    fn two_root_net() -> Topology {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let r0 = b.add_switch(2, 0);
        let r1 = b.add_switch(2, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.attach_host(NodeId(3), s1, 1);
        b.connect(s0, 2, r0, 0);
        b.connect(s0, 3, r1, 0);
        b.connect(s1, 2, r0, 1);
        b.connect(s1, 3, r1, 1);
        b.build()
    }

    #[test]
    fn honest_masked_reroute_passes_the_gate() {
        use netsim::ids::SwitchId;
        let topo = two_root_net();
        // Kill both directions of the s0 <-> r0 cable and rebuild.
        let candidate = RouteTables::build_masked(&topo, &[(SwitchId(0), 2), (SwitchId(2), 0)]);
        let stats = vet_reroute(&topo, &candidate, ReplicatePolicy::ReturnOnly)
            .expect("masked rebuild must be deadlock-free");
        assert!(stats.channels > 0);
        assert!(stats.dependencies > 0);
    }

    #[test]
    fn partitioning_masked_reroute_is_rejected() {
        use netsim::ids::SwitchId;
        let topo = two_root_net();
        // Kill both of s0's up links: h0/h1 still inject at s0 but can no
        // longer reach h2/h3 anywhere — the gate must refuse the tables.
        let candidate = RouteTables::build_masked(
            &topo,
            &[
                (SwitchId(0), 2),
                (SwitchId(2), 0),
                (SwitchId(0), 3),
                (SwitchId(3), 0),
            ],
        );
        let report = vet_reroute(&topo, &candidate, ReplicatePolicy::ReturnOnly)
            .expect_err("a partitioning mask must be rejected");
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == "unreachable-destination"),
            "{report:?}"
        );
    }

    #[test]
    fn cyclic_reroute_candidate_is_rejected() {
        use mintopo::reach::{PortClass, PortInfo};
        use mintopo::route::SwitchTable;
        use netsim::destset::DestSet;

        // Two switches at the same depth, cross-connected, one host each.
        let mut b = TopologyBuilder::new(2);
        let a = b.add_switch(2, 1);
        let c = b.add_switch(2, 1);
        b.attach_host(NodeId(0), a, 1);
        b.attach_host(NodeId(1), c, 1);
        b.connect(a, 0, c, 0);
        let topo = b.build();

        // Pathological candidate: *both* tables classify the shared cable
        // as Down with full reach — the "each side believes the other is
        // deeper" bug an incremental reroute patch could introduce. A worm
        // held on a.out0 can extend onto c.out0 and vice versa: a 2-cycle.
        let full = DestSet::full(2);
        let mk = |own: u32| {
            SwitchTable::from_ports(
                vec![
                    PortInfo {
                        class: PortClass::Down,
                        reach: full.clone(),
                    },
                    PortInfo {
                        class: PortClass::Down,
                        reach: DestSet::singleton(2, NodeId(own)),
                    },
                ],
                2,
            )
        };
        let candidate = RouteTables::from_tables(vec![mk(0), mk(1)], 2);

        let report = vet_reroute(&topo, &candidate, ReplicatePolicy::ReturnOnly)
            .expect_err("crossed-down candidate must be rejected");
        assert!(
            report.errors().any(|d| d.code == "cdg-cycle"),
            "{:?}",
            report.diagnostics
        );
        assert!(!report.cycles.is_empty());
        // The cycle names both switch output channels.
        let channels = report.cycles[0].channels.join(" ");
        assert!(channels.contains("out0"), "{channels}");
    }

    #[test]
    fn stranded_live_switch_is_rejected_despite_acyclic_cdg() {
        use mintopo::reach::PortInfo;
        use mintopo::route::SwitchTable;
        use netsim::destset::DestSet;
        use netsim::ids::SwitchId;

        let topo = two_root_net();
        // Candidate that over-masks: every port of leaf s1 has an empty
        // reach string, as if all its cables (and even its own hosts)
        // were masked — but hosts h2/h3 are still attached in the
        // topology and still inject there. With no channels at s1 the
        // CDG is vacuously acyclic, so only the liveness check can
        // catch this.
        let honest = RouteTables::build(&topo);
        let empty = DestSet::empty(4);
        let dark = SwitchTable::from_ports(
            (0..4)
                .map(|p| PortInfo {
                    class: honest.table(SwitchId(1)).port(p).class,
                    reach: empty.clone(),
                })
                .collect(),
            4,
        );
        let tables: Vec<SwitchTable> = (0..topo.n_switches())
            .map(|s| {
                if s == 1 {
                    dark.clone()
                } else {
                    honest.table(SwitchId(s as u32)).clone()
                }
            })
            .collect();
        let candidate = RouteTables::from_tables(tables, 4);

        let report = vet_reroute(&topo, &candidate, ReplicatePolicy::ReturnOnly)
            .expect_err("stranded live switch must be rejected");
        let diag = report
            .errors()
            .find(|d| d.code == "unreachable-switch")
            .unwrap_or_else(|| panic!("missing unreachable-switch: {:?}", report.diagnostics));
        assert!(diag.message.contains("switch 1"), "{}", diag.message);
        assert!(diag.message.contains("h2"), "{}", diag.message);
        // And no spurious cdg-cycle: the failure mode is exactly that
        // the CDG pass alone sees nothing wrong.
        assert!(report.cycles.is_empty());
    }
}
