//! Structured diagnostics: one [`ConfigReport`] per analyzed configuration.
//!
//! Every static check — buffer sufficiency, protocol hazards, dependency
//! cycles, header round-trips — deposits [`Diagnostic`]s into a shared
//! report instead of failing on the first violation, so a CLI user sees
//! the whole picture in one pass. Severity is two-level:
//!
//! * [`Severity::Error`] — the configuration is provably unsafe or
//!   inconsistent (a worm can wedge, a header cannot decode); builders
//!   must reject it.
//! * [`Severity::Warning`] — the configuration admits a hazard under some
//!   workloads (e.g. synchronous replication's grant-wait cycles) but is
//!   not unconditionally broken; runs proceed at the user's risk.

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hazardous under some workloads; runs are allowed.
    Warning,
    /// Provably unsafe or inconsistent; builders must reject the config.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding of the static analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (kebab-case), e.g. `cb-packet-exceeds-cq`.
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description naming the offending values.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.label(),
            self.code,
            self.message
        )
    }
}

/// One dependency cycle found in the channel-dependency graph: the channel
/// descriptions on the cycle and the labeled edges inside it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// Human-readable descriptions of the channels on the cycle, in order.
    pub channels: Vec<String>,
    /// `switch / in-port -> out-port (shape)` labels of the edges that
    /// close the cycle.
    pub edges: Vec<String>,
}

/// Coverage counters: how much the analysis actually looked at.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Directed channels (CDG nodes) enumerated.
    pub channels: usize,
    /// Dependency edges enumerated.
    pub dependencies: usize,
    /// Strongly connected components examined.
    pub sccs: usize,
    /// Reachability bit-strings round-tripped through the switch decode.
    pub roundtrips: usize,
}

/// The full result of statically analyzing one configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConfigReport {
    /// All findings, in check order.
    pub diagnostics: Vec<Diagnostic>,
    /// Dependency cycles (each also surfaces as an Error diagnostic).
    pub cycles: Vec<CycleReport>,
    /// Coverage counters.
    pub stats: AnalysisStats,
}

impl ConfigReport {
    /// An empty (clean) report.
    pub fn new() -> Self {
        ConfigReport::default()
    }

    /// Records an error finding.
    pub fn error(&mut self, code: &'static str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
        });
    }

    /// Records a warning finding.
    pub fn warning(&mut self, code: &'static str, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
        });
    }

    /// All error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// All warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The first error, if any (what `Result`-based callers surface).
    pub fn first_error(&self) -> Option<&Diagnostic> {
        self.errors().next()
    }

    /// `true` if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.first_error().is_some()
    }

    /// `true` if there are no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Collapses the report into a `Result`, keeping the first error's
    /// message.
    pub fn into_result(self) -> Result<ConfigReport, Diagnostic> {
        match self.first_error() {
            Some(d) => Err(d.clone()),
            None => Ok(self),
        }
    }

    /// Renders the report for terminals: a one-line verdict plus one line
    /// per finding and per cycle.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let verdict = if errors > 0 {
            "REJECTED"
        } else if warnings > 0 {
            "PASSED with warnings"
        } else {
            "PASSED"
        };
        out.push_str(&format!(
            "{verdict}: {errors} error(s), {warnings} warning(s) \
             [{} channels, {} dependencies, {} SCCs, {} header round-trips]\n",
            self.stats.channels, self.stats.dependencies, self.stats.sccs, self.stats.roundtrips
        ));
        for d in &self.diagnostics {
            out.push_str(&format!("  {d}\n"));
        }
        for (i, c) in self.cycles.iter().enumerate() {
            out.push_str(&format!("  cycle {}: {}\n", i, c.channels.join(" -> ")));
            for e in &c.edges {
                out.push_str(&format!("    via {e}\n"));
            }
        }
        out
    }

    /// Renders the report as a self-contained JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"clean\": {},\n  \"errors\": {},\n  \"warnings\": {},\n",
            self.is_clean(),
            self.errors().count(),
            self.warnings().count()
        ));
        out.push_str(&format!(
            "  \"stats\": {{\"channels\": {}, \"dependencies\": {}, \"sccs\": {}, \"roundtrips\": {}}},\n",
            self.stats.channels, self.stats.dependencies, self.stats.sccs, self.stats.roundtrips
        ));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"code\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
                d.code,
                d.severity.label(),
                json_escape(&d.message)
            ));
        }
        out.push_str("\n  ],\n  \"cycles\": [");
        for (i, c) in self.cycles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"channels\": [");
            for (j, ch) in c.channels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(ch)));
            }
            out.push_str("], \"edges\": [");
            for (j, e) in c.edges.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", json_escape(e)));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes a string for embedding in JSON.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order_and_label() {
        assert!(Severity::Error > Severity::Warning);
        assert_eq!(Severity::Error.label(), "error");
        assert_eq!(Severity::Warning.label(), "warning");
    }

    #[test]
    fn report_accumulates_and_classifies() {
        let mut r = ConfigReport::new();
        assert!(r.is_clean());
        r.warning("w-code", "a hazard");
        assert!(!r.is_clean());
        assert!(!r.has_errors());
        r.error("e-code", "a violation");
        assert!(r.has_errors());
        assert_eq!(r.first_error().unwrap().code, "e-code");
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        let err = r.clone().into_result().unwrap_err();
        assert_eq!(err.message, "a violation");
    }

    #[test]
    fn clean_report_into_result_is_ok() {
        let mut r = ConfigReport::new();
        r.warning("w", "only a warning");
        assert!(r.into_result().is_ok());
    }

    #[test]
    fn human_rendering_names_findings() {
        let mut r = ConfigReport::new();
        r.error("cb-packet-exceeds-cq", "packet too big");
        r.cycles.push(CycleReport {
            channels: vec!["s0.p1".into(), "s1.p0".into()],
            edges: vec!["s1 / in 0 -> out 1 (ascending)".into()],
        });
        let h = r.render_human();
        assert!(h.starts_with("REJECTED: 1 error(s)"), "{h}");
        assert!(h.contains("error[cb-packet-exceeds-cq]: packet too big"));
        assert!(h.contains("cycle 0: s0.p1 -> s1.p0"));
    }

    #[test]
    fn json_rendering_escapes_and_structures() {
        let mut r = ConfigReport::new();
        r.error("code", "with \"quotes\"\nand newline");
        let j = r.render_json();
        assert!(j.contains("\\\"quotes\\\"\\nand newline"), "{j}");
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"errors\": 1"));
    }
}
