//! `mdw-model` — bounded model checking of the switch state machines.
//!
//! The CDG/SCC analyzer ([`crate::cdg`], [`crate::scc`]) proves an
//! *acyclic routing graph*, which rules out one class of deadlock but says
//! nothing about chunk-allocation races, credit underflow, or
//! replication stalls inside a switch. This module checks the *transition
//! system* instead: it exhaustively explores every reachable state of
//! small (1–4 switch) fabrics under a fixed worm alphabet — unicast,
//! ascending and descending multidestination, and replicating worms —
//! driving the **same pure step cores the live switches run**
//! ([`switches::semantics::cq_step`] for the central queue,
//! [`switches::semantics::ib_step`] for input-buffered heads).
//!
//! Per explored state it verifies the safety invariants (chunk
//! conservation, no leak at quiescence, bounded replication fan-out), and
//! over the full reachability graph it verifies the paper's
//! *buffered-eventually* liveness condition via terminal-SCC analysis:
//! every terminal strongly connected component must be the singleton
//! all-delivered state. A violation comes with a **minimal counterexample
//! trace** (BFS order guarantees minimality in transitions).
//!
//! ## Abstraction
//!
//! States are explored at *chunk* granularity. A worm is a list of
//! `Visit`s — one per switch it crosses, precomputed by walking the real
//! `mintopo` routing tables — and each visit advances through
//! `Pending → (Waiting →) Stored → Done`. Cut-through is modeled by the
//! *fill* constraint: a branch can forward chunk `k` only after its
//! parent visit has forwarded chunk `k` into this switch. Central-buffer
//! admission debits the full reservation through [`cq_step`]; released
//! chunks flow back through the same function, so the descending-reserve
//! and single-waiter-accumulator rules are checked exactly as
//! implemented. Input-buffered visits carry a live [`IbHeadState`] and
//! advance through [`ib_step`] — including the lock-step
//! (synchronous-replication) variant, whose crossed-grant deadlock the
//! checker finds with a 4-step counterexample.

use crate::checks::ArchClass;
use mintopo::reach::PortClass;
use mintopo::route::{pick_deterministic, McastRoute, ReplicatePolicy, RouteTables, UnicastRoute};
use mintopo::topology::{Attach, Topology, TopologyBuilder};
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};
use std::collections::HashMap;
use std::collections::VecDeque;
use switches::semantics::{
    cq_step, ib_step, CqEffect, CqEvent, CqState, IbEffect, IbEvent, IbHeadState,
};

/// Exploration bounds of the checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelBounds {
    /// Largest fabric explored (scenarios with more switches are skipped).
    pub max_switches: usize,
    /// Worm length in central-queue chunks (1–4).
    pub worm_chunks: usize,
    /// Abstract central-queue capacity in chunks.
    pub cq_chunks: usize,
    /// Descending-traffic reserve of the abstract central queue.
    pub cq_reserve: usize,
    /// Hard cap on explored states per scenario.
    pub max_states: usize,
}

impl Default for ModelBounds {
    fn default() -> Self {
        ModelBounds {
            max_switches: 2,
            worm_chunks: 2,
            cq_chunks: 4,
            cq_reserve: 2,
            max_states: 400_000,
        }
    }
}

/// One transition of a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Human-readable description of the transition.
    pub label: String,
}

/// A property violation with its minimal counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Scenario (fabric + worm set) the violation occurred in.
    pub scenario: String,
    /// Violation class: `deadlock`, `livelock`, `invariant`, or
    /// `state-bound`.
    pub kind: String,
    /// What went wrong in the violating state.
    pub detail: String,
    /// Minimal transition sequence from the initial state.
    pub trace: Vec<TraceStep>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} in scenario '{}': {}",
            self.kind, self.scenario, self.detail
        )?;
        writeln!(f, "counterexample ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, step.label)?;
        }
        Ok(())
    }
}

/// Coverage counters of a successful check.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Scenarios (fabric + worm set combinations) explored.
    pub scenarios: usize,
    /// Reachable states across all scenarios.
    pub states: usize,
    /// Transitions across all scenarios.
    pub transitions: usize,
}

/// Result of a model check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every scenario verified: invariants hold in every reachable state
    /// and every terminal SCC is the all-delivered state.
    Verified(ModelStats),
    /// A property failed; the violation carries a minimal counterexample.
    Violated(Box<Violation>),
}

impl CheckOutcome {
    /// `true` when the check verified every scenario.
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified(_))
    }
}

/// Checks the given switch architecture (with synchronous or asynchronous
/// replication) against every bounded scenario.
///
/// Scenarios cover a single switch with crossed multicasts, and a
/// two-switch parent/child fabric with ascending, descending, and
/// replicating worms (plus, when `bounds.max_switches >= 4`, a
/// four-switch two-root fabric). The central-buffer architecture
/// replicates from the shared queue and is inherently asynchronous, so
/// `sync_replication` is ignored for it.
pub fn check_model(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
) -> CheckOutcome {
    let sync = sync_replication && arch == ArchClass::InputBuffered;
    let mut stats = ModelStats::default();
    for scenario in scenarios(bounds.max_switches) {
        let plan = match build_plan(&scenario, policy, bounds.worm_chunks) {
            Ok(p) => p,
            Err(e) => {
                return CheckOutcome::Violated(Box::new(Violation {
                    scenario: scenario.name.to_string(),
                    kind: "plan".into(),
                    detail: e,
                    trace: Vec::new(),
                }))
            }
        };
        let ctx = Ctx {
            plan: &plan,
            arch,
            sync,
            len: bounds.worm_chunks as u16,
            cq_chunks: bounds.cq_chunks,
            cq_reserve: bounds.cq_reserve,
            max_states: bounds.max_states,
            scenario: scenario.name,
        };
        match ctx.explore() {
            Ok(s) => {
                stats.scenarios += 1;
                stats.states += s.states;
                stats.transitions += s.transitions;
            }
            Err(v) => return CheckOutcome::Violated(v),
        }
    }
    CheckOutcome::Verified(stats)
}

// ---------------------------------------------------------------------
// Scenarios: small fabrics + worm alphabets.
// ---------------------------------------------------------------------

#[derive(Clone)]
enum WormKind {
    Unicast(NodeId),
    Mcast(DestSet),
}

struct Scenario {
    name: &'static str,
    topo: Topology,
    n_switches: usize,
    worms: Vec<(NodeId, WormKind)>,
}

/// One switch, four hosts: the crossed-multicast scenario that separates
/// asynchronous from synchronous replication.
fn single_switch() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s = b.add_switch(4, 0);
    for h in 0..4 {
        b.attach_host(NodeId(h), s, h as usize);
    }
    b.build()
}

/// A leaf (hosts 0, 1) under a root (hosts 2, 3): ascending, descending,
/// and cross-stage traffic.
fn pair() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s0 = b.add_switch(3, 1);
    let s1 = b.add_switch(3, 0);
    b.attach_host(NodeId(0), s0, 0);
    b.attach_host(NodeId(1), s0, 1);
    b.attach_host(NodeId(2), s1, 0);
    b.attach_host(NodeId(3), s1, 1);
    b.connect(s0, 2, s1, 2);
    b.build()
}

/// Two leaves under two roots: path diversity and root-level replication.
fn quad() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s0 = b.add_switch(4, 1);
    let s1 = b.add_switch(4, 1);
    let r0 = b.add_switch(2, 0);
    let r1 = b.add_switch(2, 0);
    b.attach_host(NodeId(0), s0, 0);
    b.attach_host(NodeId(1), s0, 1);
    b.attach_host(NodeId(2), s1, 0);
    b.attach_host(NodeId(3), s1, 1);
    b.connect(s0, 2, r0, 0);
    b.connect(s0, 3, r1, 0);
    b.connect(s1, 2, r0, 1);
    b.connect(s1, 3, r1, 1);
    b.build()
}

fn mcast(n: usize, nodes: &[u32]) -> WormKind {
    WormKind::Mcast(DestSet::from_nodes(n, nodes.iter().map(|&h| NodeId(h))))
}

fn scenarios(max_switches: usize) -> Vec<Scenario> {
    let mut v = vec![
        Scenario {
            name: "single-crossed-mcast",
            topo: single_switch(),
            n_switches: 1,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(1), mcast(4, &[2, 3])),
            ],
        },
        Scenario {
            name: "pair-up-down",
            topo: pair(),
            n_switches: 2,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(2), mcast(4, &[0, 1])),
                (NodeId(1), WormKind::Unicast(NodeId(3))),
            ],
        },
        Scenario {
            name: "pair-replicate-revisit",
            topo: pair(),
            n_switches: 2,
            worms: vec![
                // Covers a destination under its own leaf plus two under
                // the root: under ReturnOnly the worm climbs and then
                // *revisits* its source switch descending — the case the
                // descending-chunk reserve exists for.
                (NodeId(0), mcast(4, &[1, 2, 3])),
                (NodeId(3), WormKind::Unicast(NodeId(0))),
            ],
        },
    ];
    if max_switches >= 4 {
        v.push(Scenario {
            name: "quad-two-roots",
            topo: quad(),
            n_switches: 4,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(2), mcast(4, &[0, 1])),
            ],
        });
    }
    v.retain(|s| s.n_switches <= max_switches);
    v
}

// ---------------------------------------------------------------------
// Visit plans: each worm's path precomputed from the real routing tables.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Host(NodeId),
    Visit(usize),
}

#[derive(Debug, Clone)]
struct PlanBranch {
    out_port: usize,
    target: Target,
}

#[derive(Debug, Clone)]
struct Visit {
    worm: usize,
    sw: usize,
    in_port: usize,
    /// The packet arrived from a parent switch (uses the descending
    /// central-queue reserve).
    descending: bool,
    branches: Vec<PlanBranch>,
    /// `(visit, branch)` feeding this visit; `None` for host entry.
    parent: Option<(usize, usize)>,
}

struct Plan {
    visits: Vec<Visit>,
    /// Entry visit of each worm.
    entries: Vec<usize>,
    /// Worm descriptions for trace labels.
    worm_desc: Vec<String>,
}

fn build_plan(
    scenario: &Scenario,
    policy: ReplicatePolicy,
    worm_chunks: usize,
) -> Result<Plan, String> {
    if !(1..=4).contains(&worm_chunks) {
        return Err(format!("worm_chunks {worm_chunks} out of bounds 1..=4"));
    }
    let tables = RouteTables::build(&scenario.topo);
    let mut plan = Plan {
        visits: Vec::new(),
        entries: Vec::new(),
        worm_desc: Vec::new(),
    };
    for (w, (src, kind)) in scenario.worms.iter().enumerate() {
        let (sw, port) = scenario.topo.host_inject(*src);
        let entry = add_visit(
            &mut plan,
            &scenario.topo,
            &tables,
            policy,
            w,
            sw,
            port,
            kind,
            None,
            0,
        )?;
        plan.entries.push(entry);
        plan.worm_desc.push(match kind {
            WormKind::Unicast(d) => format!("h{} -> h{}", src.0, d.0),
            WormKind::Mcast(d) => format!(
                "h{} -> {{{}}}",
                src.0,
                d.iter()
                    .map(|n| format!("h{}", n.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        });
    }
    Ok(plan)
}

/// Recursively expands one switch visit of a worm, returning its index.
#[allow(clippy::too_many_arguments)]
fn add_visit(
    plan: &mut Plan,
    topo: &Topology,
    tables: &RouteTables,
    policy: ReplicatePolicy,
    worm: usize,
    sw: SwitchId,
    in_port: usize,
    kind: &WormKind,
    parent: Option<(usize, usize)>,
    depth: usize,
) -> Result<usize, String> {
    if depth > 16 {
        return Err(format!("worm {worm} routing exceeds 16 hops"));
    }
    let table = tables.table(sw);
    let descending = table.port(in_port).class == PortClass::Up;
    let idx = plan.visits.len();
    plan.visits.push(Visit {
        worm,
        sw: sw.index(),
        in_port,
        descending,
        branches: Vec::new(),
        parent,
    });

    // (out port, residual destination set or unicast dest) per branch.
    let hops: Vec<(usize, WormKind)> = match kind {
        WormKind::Unicast(dest) => match table.route_unicast(*dest) {
            UnicastRoute::Down(p) => vec![(p, WormKind::Unicast(*dest))],
            UnicastRoute::Up(cands) => {
                let p = pick_deterministic(&cands, worm as u64);
                vec![(p, WormKind::Unicast(*dest))]
            }
        },
        WormKind::Mcast(dests) => {
            let McastRoute { down, up } = table.route_bitstring(dests, policy);
            let mut hops: Vec<(usize, WormKind)> = down
                .into_iter()
                .map(|(p, sub)| (p, WormKind::Mcast(sub)))
                .collect();
            if let Some((cands, updests)) = up {
                let p = pick_deterministic(&cands, worm as u64);
                hops.push((p, WormKind::Mcast(updests)));
            }
            hops
        }
    };
    if hops.is_empty() {
        return Err(format!("worm {worm} has no route at s{}", sw.index()));
    }
    // Bounded-replication-fanout invariant: a worm can never branch wider
    // than the switch has ports.
    if hops.len() > topo.ports(sw) {
        return Err(format!(
            "worm {worm} fans out {}-wide at s{} ({} ports)",
            hops.len(),
            sw.index(),
            topo.ports(sw)
        ));
    }

    for (branch_idx, (out_port, sub)) in hops.into_iter().enumerate() {
        let target = match topo.attach(sw, out_port) {
            Attach::Host(h) => Target::Host(h),
            Attach::Switch(sw2, p2) => {
                let child = add_visit(
                    plan,
                    topo,
                    tables,
                    policy,
                    worm,
                    sw2,
                    p2,
                    &sub,
                    Some((idx, branch_idx)),
                    depth + 1,
                )?;
                Target::Visit(child)
            }
            Attach::Unused => {
                return Err(format!(
                    "worm {worm} routed onto unused port {out_port} of s{}",
                    sw.index()
                ))
            }
        };
        plan.visits[idx]
            .branches
            .push(PlanBranch { out_port, target });
    }
    Ok(idx)
}

// ---------------------------------------------------------------------
// Exploration.
// ---------------------------------------------------------------------

/// Status of one planned visit inside a model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum VState {
    /// Head has not reached this switch yet.
    Pending,
    /// Central buffer only: head presented, full-packet reservation not
    /// yet granted.
    Waiting,
    /// Central buffer: packet admitted (reservation debited); per-branch
    /// chunk read cursors.
    StoredCb { reads: Vec<u16> },
    /// Input buffer: packet (head) in the input FIFO, driven by the live
    /// [`IbHeadState`] core.
    StoredIb { head: IbHeadState },
    /// Every branch drained; all buffer space returned.
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MState {
    /// Per-switch central-queue accounting (central buffer only).
    cq: Vec<CqState>,
    visits: Vec<VState>,
    /// Central buffer: per switch, per output port, FIFO of (visit,
    /// branch) — the central-queue branch lists.
    queues: Vec<Vec<VecDeque<(u32, u8)>>>,
    /// Input buffer: per switch, per output port, owning (visit, branch).
    owners: Vec<Vec<Option<(u32, u8)>>>,
    /// Input buffer: per switch, per input port, resident visit.
    occupants: Vec<Vec<Option<u32>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Label {
    Inject(usize),
    Present(usize),
    Admit(usize),
    Advance(usize, usize),
    Grant(usize, usize),
    AdvanceSync(usize),
}

struct ScenarioStats {
    states: usize,
    transitions: usize,
}

struct Ctx<'a> {
    plan: &'a Plan,
    arch: ArchClass,
    sync: bool,
    len: u16,
    cq_chunks: usize,
    cq_reserve: usize,
    max_states: usize,
    scenario: &'static str,
}

impl Ctx<'_> {
    fn n_switches(&self) -> usize {
        self.plan.visits.iter().map(|v| v.sw + 1).max().unwrap_or(0)
    }

    fn ports_of(&self, sw: usize) -> usize {
        // Wide enough for every port a plan touches; exact port counts do
        // not matter to the state machine.
        self.plan
            .visits
            .iter()
            .filter(|v| v.sw == sw)
            .flat_map(|v| {
                v.branches
                    .iter()
                    .map(|b| b.out_port + 1)
                    .chain([v.in_port + 1])
            })
            .max()
            .unwrap_or(0)
    }

    fn initial(&self) -> MState {
        let n_sw = self.n_switches();
        let cb = self.arch == ArchClass::CentralBuffer;
        MState {
            cq: if cb {
                (0..n_sw)
                    .map(|_| CqState::new(self.cq_chunks, self.cq_reserve))
                    .collect()
            } else {
                Vec::new()
            },
            visits: vec![VState::Pending; self.plan.visits.len()],
            queues: if cb {
                (0..n_sw)
                    .map(|s| vec![VecDeque::new(); self.ports_of(s)])
                    .collect()
            } else {
                Vec::new()
            },
            owners: if cb {
                Vec::new()
            } else {
                (0..n_sw).map(|s| vec![None; self.ports_of(s)]).collect()
            },
            occupants: if cb {
                Vec::new()
            } else {
                (0..n_sw).map(|s| vec![None; self.ports_of(s)]).collect()
            },
        }
    }

    /// Chunks of visit `v`'s packet that have arrived at its switch — the
    /// cut-through bound on what its branches may forward.
    fn fill(&self, visits: &[VState], v: usize) -> u16 {
        match self.plan.visits[v].parent {
            None => self.len,
            Some((pv, pb)) => match &visits[pv] {
                VState::StoredCb { reads } => reads[pb],
                VState::StoredIb { head } => head.branches[pb].read,
                VState::Done => self.len,
                _ => 0,
            },
        }
    }

    fn all_done(&self, state: &MState) -> bool {
        state.visits.iter().all(|v| *v == VState::Done)
    }

    fn label_text(&self, label: Label) -> String {
        let vis = |v: usize| {
            let visit = &self.plan.visits[v];
            format!(
                "worm {} ({}) at s{}",
                visit.worm, self.plan.worm_desc[visit.worm], visit.sw
            )
        };
        match label {
            Label::Inject(v) => format!("inject {}", vis(v)),
            Label::Present(v) => format!("present head of {}", vis(v)),
            Label::Admit(v) => format!("reserve {} chunks for {}", self.len, vis(v)),
            Label::Advance(v, b) => {
                let br = &self.plan.visits[v].branches[b];
                format!(
                    "advance one chunk of {} through port {}",
                    vis(v),
                    br.out_port
                )
            }
            Label::Grant(v, b) => {
                let br = &self.plan.visits[v].branches[b];
                format!("grant output port {} to {}", br.out_port, vis(v))
            }
            Label::AdvanceSync(v) => {
                format!(
                    "advance one chunk of {} on all branches in lock-step",
                    vis(v)
                )
            }
        }
    }

    /// Per-state safety invariants. Returns a violation description.
    fn check_invariants(&self, state: &MState) -> Option<String> {
        if self.arch == ArchClass::CentralBuffer {
            let n_sw = state.cq.len();
            for sw in 0..n_sw {
                // Chunk conservation: capacity = free + waiter-held +
                // Σ (len - min branch read) over admitted packets.
                let stored: usize = state
                    .visits
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.plan.visits[*i].sw == sw)
                    .map(|(_, v)| match v {
                        VState::StoredCb { reads } => {
                            usize::from(self.len)
                                - usize::from(*reads.iter().min().expect("branch"))
                        }
                        _ => 0,
                    })
                    .sum();
                if state.cq[sw].used() != stored {
                    return Some(format!(
                        "chunk conservation broken at s{sw}: accounting says {} \
                         chunks hold data, packets occupy {stored}",
                        state.cq[sw].used()
                    ));
                }
            }
            if self.all_done(state) {
                for (sw, cq) in state.cq.iter().enumerate() {
                    if cq.free() != cq.capacity || cq.waiter_held() != 0 {
                        return Some(format!(
                            "chunk leak at s{sw}: {} of {} chunks free at \
                             quiescence",
                            cq.free(),
                            cq.capacity
                        ));
                    }
                }
            }
        }
        None
    }

    fn successors(&self, state: &MState) -> Vec<(Label, MState)> {
        let mut out = Vec::new();
        for (v, vs) in state.visits.iter().enumerate() {
            if *vs != VState::Pending || self.plan.visits[v].parent.is_some() {
                continue;
            }
            // Host injection of an entry visit.
            match self.arch {
                ArchClass::CentralBuffer => {
                    let mut next = state.clone();
                    next.visits[v] = VState::Waiting;
                    out.push((Label::Inject(v), next));
                }
                ArchClass::InputBuffered => {
                    let visit = &self.plan.visits[v];
                    if state.occupants[visit.sw][visit.in_port].is_none() {
                        let mut next = state.clone();
                        next.occupants[visit.sw][visit.in_port] = Some(v as u32);
                        next.visits[v] = self.fresh_ib(v);
                        out.push((Label::Inject(v), next));
                    }
                }
            }
        }
        match self.arch {
            ArchClass::CentralBuffer => self.cb_successors(state, &mut out),
            ArchClass::InputBuffered => self.ib_successors(state, &mut out),
        }
        out
    }

    fn fresh_ib(&self, v: usize) -> VState {
        VState::StoredIb {
            head: IbHeadState::new(
                self.len,
                self.plan.visits[v].branches.iter().map(|b| b.out_port),
            ),
        }
    }

    fn cb_successors(&self, state: &MState, out: &mut Vec<(Label, MState)>) {
        // Present: the head branch of an output list wakes its pending
        // downstream visit.
        for queues in &state.queues {
            for queue in queues {
                let Some(&(v, b)) = queue.front() else {
                    continue;
                };
                let Target::Visit(w) = self.plan.visits[v as usize].branches[b as usize].target
                else {
                    continue;
                };
                if state.visits[w] == VState::Pending {
                    let mut next = state.clone();
                    next.visits[w] = VState::Waiting;
                    out.push((Label::Present(w), next));
                }
            }
        }
        // Admit: a waiting visit retries its full-packet reservation.
        for (v, vs) in state.visits.iter().enumerate() {
            if *vs != VState::Waiting {
                continue;
            }
            let visit = &self.plan.visits[v];
            let (cq, effect) = cq_step(
                &state.cq[visit.sw],
                CqEvent::Reserve {
                    input: visit.in_port,
                    need: usize::from(self.len),
                    descending: visit.descending,
                },
            );
            let granted = effect == CqEffect::Granted;
            if !granted && cq == state.cq[visit.sw] {
                continue; // pure retry-later, not a distinct transition
            }
            let mut next = state.clone();
            next.cq[visit.sw] = cq;
            if granted {
                next.visits[v] = VState::StoredCb {
                    reads: vec![0; visit.branches.len()],
                };
                for (b, branch) in visit.branches.iter().enumerate() {
                    next.queues[visit.sw][branch.out_port].push_back((v as u32, b as u8));
                }
            }
            out.push((Label::Admit(v), next));
        }
        // Advance: the head branch of an output list forwards one chunk.
        for (sw, queues) in state.queues.iter().enumerate() {
            for queue in queues {
                let Some(&(v32, b8)) = queue.front() else {
                    continue;
                };
                let (v, b) = (v32 as usize, usize::from(b8));
                let VState::StoredCb { reads } = &state.visits[v] else {
                    continue;
                };
                if reads[b] >= self.len || reads[b] >= self.fill(&state.visits, v) {
                    continue;
                }
                let branch = &self.plan.visits[v].branches[b];
                if let Target::Visit(w) = branch.target {
                    if !matches!(state.visits[w], VState::StoredCb { .. }) {
                        continue; // downstream not admitted yet
                    }
                }
                let mut next = state.clone();
                let VState::StoredCb { reads } = &mut next.visits[v] else {
                    unreachable!()
                };
                let old_min = *reads.iter().min().expect("branch");
                reads[b] += 1;
                let done = reads[b] == self.len;
                let new_min = *reads.iter().min().expect("branch");
                if new_min == self.len {
                    next.visits[v] = VState::Done;
                }
                for _ in old_min..new_min {
                    let (cq, _) = cq_step(&next.cq[sw], CqEvent::Release);
                    next.cq[sw] = cq;
                }
                if done {
                    next.queues[sw][branch.out_port].pop_front();
                }
                out.push((Label::Advance(v, b), next));
            }
        }
    }

    fn ib_successors(&self, state: &MState, out: &mut Vec<(Label, MState)>) {
        for (v, vs) in state.visits.iter().enumerate() {
            let VState::StoredIb { head } = vs else {
                continue;
            };
            let visit = &self.plan.visits[v];
            // Grant: an undone branch wins its free output port.
            for (b, bs) in head.branches.iter().enumerate() {
                if bs.granted || bs.done {
                    continue;
                }
                if state.owners[visit.sw][bs.port].is_some() {
                    continue;
                }
                let mut next = state.clone();
                next.owners[visit.sw][bs.port] = Some((v as u32, b as u8));
                let (h2, _) = ib_step(head, IbEvent::Grant { branch: b });
                next.visits[v] = VState::StoredIb { head: h2 };
                out.push((Label::Grant(v, b), next));
            }
            let fill = self.fill(&state.visits, v);
            if self.sync {
                // Lock-step replication: every branch must hold its grant
                // and every downstream must be able to accept the chunk.
                let all_granted = head.branches.iter().all(|b| b.granted && !b.done);
                let read = head.branches[0].read;
                if !all_granted || read >= self.len || read >= fill {
                    continue;
                }
                let Some(mut next) = self.ib_present_targets(state, v, usize::MAX) else {
                    continue;
                };
                let (h2, effect) = ib_step(head, IbEvent::ReadLockStep);
                self.ib_apply(&mut next, v, h2, effect);
                out.push((Label::AdvanceSync(v), next));
            } else {
                // Asynchronous replication: granted branches stream
                // independently.
                for (b, bs) in head.branches.iter().enumerate() {
                    if !bs.granted || bs.done || bs.read >= self.len || bs.read >= fill {
                        continue;
                    }
                    let Some(mut next) = self.ib_present_targets(state, v, b) else {
                        continue;
                    };
                    let (h2, effect) = ib_step(head, IbEvent::ReadFlit { branch: b });
                    self.ib_apply(&mut next, v, h2, effect);
                    out.push((Label::Advance(v, b), next));
                }
            }
        }
    }

    /// Clones `state` with every pending downstream target of visit `v`
    /// presented (branch `only`, or all branches when `only == usize::MAX`).
    /// Returns `None` if a needed input buffer is occupied by another worm.
    fn ib_present_targets(&self, state: &MState, v: usize, only: usize) -> Option<MState> {
        let mut next = state.clone();
        for (b, branch) in self.plan.visits[v].branches.iter().enumerate() {
            if only != usize::MAX && b != only {
                continue;
            }
            let Target::Visit(w) = branch.target else {
                continue;
            };
            match &state.visits[w] {
                VState::Pending => {
                    let wv = &self.plan.visits[w];
                    if next.occupants[wv.sw][wv.in_port].is_some() {
                        return None;
                    }
                    next.occupants[wv.sw][wv.in_port] = Some(w as u32);
                    next.visits[w] = self.fresh_ib(w);
                }
                VState::StoredIb { .. } => {}
                // The head FIFO holds the whole packet, so a downstream
                // visit can never complete before its feeder.
                VState::Waiting | VState::StoredCb { .. } | VState::Done => unreachable!(),
            }
        }
        Some(next)
    }

    fn ib_apply(&self, next: &mut MState, v: usize, head: IbHeadState, effect: IbEffect) {
        let visit = &self.plan.visits[v];
        if let IbEffect::BranchesDone(ports) = effect {
            for port in ports {
                next.owners[visit.sw][port] = None;
            }
        }
        if head.all_done() {
            next.occupants[visit.sw][visit.in_port] = None;
            next.visits[v] = VState::Done;
        } else {
            next.visits[v] = VState::StoredIb { head };
        }
    }

    fn violation(&self, kind: &str, detail: String, trace: Vec<TraceStep>) -> Box<Violation> {
        Box::new(Violation {
            scenario: self.scenario.to_string(),
            kind: kind.to_string(),
            detail,
            trace,
        })
    }

    fn explore(&self) -> Result<ScenarioStats, Box<Violation>> {
        let initial = self.initial();
        let mut ids: HashMap<MState, usize> = HashMap::new();
        let mut parents: Vec<Option<(usize, Label)>> = vec![None];
        let mut adj: Vec<Vec<usize>> = Vec::new();
        let mut frontier = VecDeque::new();
        let mut states: Vec<MState> = vec![initial.clone()];
        ids.insert(initial, 0);
        frontier.push_back(0usize);
        let mut transitions = 0usize;

        let trace_to = |parents: &[Option<(usize, Label)>], mut id: usize| {
            let mut steps = Vec::new();
            while let Some((p, label)) = parents[id] {
                steps.push(TraceStep {
                    label: self.label_text(label),
                });
                id = p;
            }
            steps.reverse();
            steps
        };

        while let Some(id) = frontier.pop_front() {
            let state = states[id].clone();
            if let Some(detail) = self.check_invariants(&state) {
                return Err(self.violation("invariant", detail, trace_to(&parents, id)));
            }
            let succs = self.successors(&state);
            if succs.is_empty() && !self.all_done(&state) {
                let undelivered: Vec<String> = state
                    .visits
                    .iter()
                    .enumerate()
                    .filter(|(_, vs)| **vs != VState::Done)
                    .map(|(v, _)| {
                        let visit = &self.plan.visits[v];
                        format!("worm {} at s{}", visit.worm, visit.sw)
                    })
                    .collect();
                return Err(self.violation(
                    "deadlock",
                    format!(
                        "no transition enabled but packets are undelivered \
                         ({}): an accepted packet can no longer be completely \
                         buffered",
                        undelivered.join(", ")
                    ),
                    trace_to(&parents, id),
                ));
            }
            let mut edges = Vec::with_capacity(succs.len());
            for (label, next) in succs {
                transitions += 1;
                let next_id = match ids.get(&next) {
                    Some(&n) => n,
                    None => {
                        let n = states.len();
                        if n >= self.max_states {
                            return Err(self.violation(
                                "state-bound",
                                format!(
                                    "exploration exceeded the {}-state bound; \
                                     raise ModelBounds::max_states",
                                    self.max_states
                                ),
                                Vec::new(),
                            ));
                        }
                        states.push(next.clone());
                        ids.insert(next, n);
                        parents.push(Some((id, label)));
                        frontier.push_back(n);
                        n
                    }
                };
                edges.push(next_id);
            }
            adj.push(edges);
            debug_assert_eq!(adj.len() - 1, id, "BFS visits states in id order");
        }

        // Buffered-eventually liveness: every terminal SCC must be the
        // all-delivered quiescent state. (Deadlocks are caught above; this
        // rules out livelocks — cycles no path escapes.)
        let sccs = crate::scc::tarjan_sccs(states.len(), &adj);
        for component in &sccs {
            let escapes = component
                .iter()
                .any(|&s| adj[s].iter().any(|t| !component.contains(t)));
            if escapes {
                continue;
            }
            let bad = component.iter().find(|&&s| !self.all_done(&states[s]));
            if let Some(&s) = bad {
                return Err(self.violation(
                    "livelock",
                    format!(
                        "terminal SCC of {} state(s) with undelivered packets: \
                         the fabric cycles without making progress",
                        component.len()
                    ),
                    trace_to(&parents, s),
                ));
            }
        }

        Ok(ScenarioStats {
            states: states.len(),
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_follow_the_real_routing_tables() {
        let scenario = &scenarios(2)[1]; // pair-up-down
        let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
        // Worm 0 (h0 -> {2,3}): ascends s0 then replicates at s1.
        let entry = plan.entries[0];
        assert_eq!(plan.visits[entry].sw, 0);
        assert!(!plan.visits[entry].descending);
        assert_eq!(plan.visits[entry].branches.len(), 1);
        let Target::Visit(root) = plan.visits[entry].branches[0].target else {
            panic!("worm 0 must continue to the root");
        };
        assert_eq!(plan.visits[root].sw, 1);
        assert_eq!(plan.visits[root].branches.len(), 2);
        assert!(plan.visits[root]
            .branches
            .iter()
            .all(|b| matches!(b.target, Target::Host(_))));
        // Worm 1 (h2 -> {0,1}) descends into s0: the revisit is flagged
        // descending and draws from the reserve.
        let w1root = plan.entries[1];
        let Target::Visit(leaf) = plan.visits[w1root].branches[0].target else {
            panic!("worm 1 must descend to the leaf");
        };
        assert!(plan.visits[leaf].descending);
    }

    #[test]
    fn return_only_revisits_the_source_switch() {
        let scenario = &scenarios(2)[2]; // pair-replicate-revisit
        let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
        // h0 -> {1,2,3} under ReturnOnly: s0 (ascending) -> s1 -> s0
        // (descending) — three visits, two of them at s0.
        let w0: Vec<_> = plan.visits.iter().filter(|v| v.worm == 0).collect();
        assert_eq!(w0.len(), 3);
        assert_eq!(w0.iter().filter(|v| v.sw == 0).count(), 2);
        assert_eq!(w0.iter().filter(|v| v.descending).count(), 1);
    }

    #[test]
    fn central_buffer_verifies_at_the_two_switch_bound() {
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        let CheckOutcome::Verified(stats) = out else {
            panic!("central buffer must verify: {out:?}");
        };
        assert_eq!(stats.scenarios, 3);
        assert!(stats.states > 100, "exploration too shallow: {stats:?}");
    }

    #[test]
    fn input_buffered_async_verifies() {
        let out = check_model(
            ArchClass::InputBuffered,
            false,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        assert!(out.is_verified(), "{out:?}");
    }

    #[test]
    fn sync_replication_deadlocks_with_minimal_counterexample() {
        let out = check_model(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("lock-step replication must deadlock");
        };
        assert_eq!(v.kind, "deadlock");
        assert_eq!(v.scenario, "single-crossed-mcast");
        // Minimal trace: inject both worms, then the two crossed grants.
        assert_eq!(v.trace.len(), 4, "{v}");
        assert!(
            v.trace
                .iter()
                .filter(|s| s.label.starts_with("grant"))
                .count()
                == 2,
            "{v}"
        );
    }

    #[test]
    fn sync_flag_is_ignored_for_the_central_buffer() {
        let out = check_model(
            ArchClass::CentralBuffer,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        assert!(out.is_verified(), "{out:?}");
    }

    #[test]
    fn forward_and_return_policy_also_verifies() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let out = check_model(
                arch,
                false,
                ReplicatePolicy::ForwardAndReturn,
                &ModelBounds::default(),
            );
            assert!(out.is_verified(), "{arch:?}: {out:?}");
        }
    }

    #[test]
    fn quad_fabric_verifies_when_bounds_allow() {
        let bounds = ModelBounds {
            max_switches: 4,
            ..ModelBounds::default()
        };
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Verified(stats) = out else {
            panic!("quad fabric must verify");
        };
        assert_eq!(stats.scenarios, 4);
    }

    #[test]
    fn state_bound_is_reported_not_overrun() {
        let bounds = ModelBounds {
            max_states: 10,
            ..ModelBounds::default()
        };
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("a 10-state bound cannot cover the space");
        };
        assert_eq!(v.kind, "state-bound");
    }
}
