//! `mdw-model` — bounded model checking of the switch state machines.
//!
//! The CDG/SCC analyzer ([`crate::cdg`], [`crate::scc`]) proves an
//! *acyclic routing graph*, which rules out one class of deadlock but says
//! nothing about chunk-allocation races, credit underflow, or
//! replication stalls inside a switch. This module checks the *transition
//! system* instead: it explores every reachable state of small fabrics
//! under a fixed worm alphabet — unicast, ascending and descending
//! multidestination, and replicating worms — driving the **same pure step
//! cores the live switches run** ([`switches::semantics::cq_step`] for
//! the central queue, [`switches::semantics::ib_step`] for input-buffered
//! heads).
//!
//! Per explored state it verifies the safety invariants (chunk
//! conservation, no leak at quiescence, bounded replication fan-out), and
//! over the full reachability graph it verifies the paper's
//! *buffered-eventually* liveness condition via terminal-SCC analysis:
//! every terminal strongly connected component must be the singleton
//! all-delivered state. A violation comes with a **minimal counterexample
//! trace** (BFS order guarantees minimality in transitions).
//!
//! ## Abstraction
//!
//! States are explored at *chunk* granularity. A worm is a list of
//! `Visit`s — one per switch it crosses, precomputed by walking the real
//! `mintopo` routing tables — and each visit advances through
//! `Pending → (Waiting →) Stored → Done`. Cut-through is modeled by the
//! *fill* constraint: a branch can forward chunk `k` only after its
//! parent visit has forwarded chunk `k` into this switch. Central-buffer
//! admission debits the full reservation through [`cq_step`]; released
//! chunks flow back through the same function, so the descending-reserve
//! and single-waiter-accumulator rules are checked exactly as
//! implemented. Input-buffered visits carry a live [`IbHeadState`] and
//! advance through [`ib_step`] — including the lock-step
//! (synchronous-replication) variant, whose crossed-grant deadlock the
//! checker finds with a 4-step counterexample.
//!
//! ## Scale (DESIGN.md §14)
//!
//! [`check_model`] is the *sequential oracle*: plain BFS, one state per
//! concrete configuration. [`check_model_opts`] layers three reductions
//! on top without changing verdicts:
//!
//! * **Symmetry** ([`crate::symmetry`]): states are deduplicated by a
//!   canonical key under the plan's port/branch/worm permutation group,
//!   so isomorphic worms collapse to one representative per orbit. The
//!   stored representative is always the first *concrete* state found, and
//!   parent edges record the concrete discovering transition — so every
//!   counterexample trace is already de-canonicalized and replays as is.
//! * **Partial order**: when a worm's switch footprint is disjoint from
//!   every other worm's, its transitions commute with theirs; an ample-set
//!   rule explores only the lowest such worm at each state. Every
//!   transition strictly increases a bounded progress measure, so the
//!   deferred interleavings cannot hide a deadlock or livelock.
//! * **Parallel frontier**: each BFS level is expanded by a scoped worker
//!   pool in per-worker stripes, then merged sequentially in id order, so
//!   state numbering, counterexample selection, and stats are independent
//!   of worker interleaving (byte-identical verdicts at any `jobs`).
//!
//! The **compositional mode** ([`crate::compose`]) decomposes a scenario
//! per switch: cross-switch branches become one-way environment stubs and
//! upstream feeds become nondeterministic monotone chunk sources, and each
//! structurally distinct per-switch plan is proved once.

use crate::checks::ArchClass;
use crate::symmetry::{self, SymPlan};
use mintopo::reach::PortClass;
use mintopo::route::{pick_deterministic, McastRoute, ReplicatePolicy, RouteTables, UnicastRoute};
use mintopo::topology::{Attach, Topology, TopologyBuilder};
use netsim::destset::DestSet;
use netsim::ids::{NodeId, SwitchId};
use netsim::trace::SemEvent;
use netsim::Cycle;
use std::collections::HashMap;
use std::collections::VecDeque;
use switches::semantics::{
    cq_step, ib_step, CqEffect, CqEvent, CqState, IbEffect, IbEvent, IbHeadState,
};

/// Exploration bounds of the checker.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelBounds {
    /// Largest fabric explored (scenarios with more switches are skipped).
    pub max_switches: usize,
    /// Worm length in central-queue chunks (1–4).
    pub worm_chunks: usize,
    /// Abstract central-queue capacity in chunks.
    pub cq_chunks: usize,
    /// Descending-traffic reserve of the abstract central queue.
    pub cq_reserve: usize,
    /// Hard cap on explored states per scenario.
    pub max_states: usize,
}

impl Default for ModelBounds {
    fn default() -> Self {
        ModelBounds {
            max_switches: 2,
            worm_chunks: 2,
            cq_chunks: 4,
            cq_reserve: 2,
            max_states: 400_000,
        }
    }
}

/// Which decomposition strategy a check uses (DESIGN.md §14).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelMode {
    /// Explore every scenario's joint state space exactly.
    Exact,
    /// Check each switch against an abstracted environment and prove each
    /// structurally distinct per-switch plan once.
    Compositional,
    /// Exact for small scenarios, compositional beyond
    /// [`ModelOptions::AUTO_EXACT_MAX_SWITCHES`] switches.
    #[default]
    Auto,
}

/// Reduction and parallelism knobs layered over [`ModelBounds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelOptions {
    /// Exact, compositional, or size-driven automatic selection.
    pub mode: ModelMode,
    /// Deduplicate states by canonical key under the plan's symmetry
    /// group (one representative per orbit).
    pub symmetry: bool,
    /// Ample-set partial-order reduction over switch-disjoint worms.
    pub por: bool,
    /// Worker threads expanding each BFS level (1 = serial). Verdicts are
    /// byte-identical at any value.
    pub jobs: usize,
}

impl ModelOptions {
    /// Largest scenario (in switches) `ModelMode::Auto` still checks
    /// exactly.
    pub const AUTO_EXACT_MAX_SWITCHES: usize = 4;

    /// The unreduced sequential oracle: exact mode, no reductions, one
    /// worker. [`check_model`] uses exactly these options.
    pub fn oracle() -> Self {
        ModelOptions {
            mode: ModelMode::Exact,
            symmetry: false,
            por: false,
            jobs: 1,
        }
    }
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            mode: ModelMode::Auto,
            symmetry: true,
            por: true,
            jobs: 1,
        }
    }
}

/// One transition of a counterexample trace, in structured form — enough
/// to re-execute the step against the model without parsing the label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A host injects the entry visit.
    Inject {
        /// Plan visit index.
        visit: usize,
    },
    /// A central-buffer head is presented to its downstream visit.
    Present {
        /// Plan visit index (the downstream visit woken up).
        visit: usize,
    },
    /// A waiting visit retries its full-packet central-queue reservation.
    Admit {
        /// Plan visit index.
        visit: usize,
    },
    /// One branch forwards one chunk.
    Advance {
        /// Plan visit index.
        visit: usize,
        /// Branch index within the visit.
        branch: usize,
    },
    /// An input-buffered branch wins its output-port arbitration.
    Grant {
        /// Plan visit index.
        visit: usize,
        /// Branch index within the visit.
        branch: usize,
    },
    /// Every branch forwards one chunk in lock-step (synchronous
    /// replication).
    AdvanceSync {
        /// Plan visit index.
        visit: usize,
    },
    /// The abstracted upstream environment delivers one chunk into an
    /// environment-fed visit (compositional mode only).
    EnvDeliver {
        /// Plan visit index.
        visit: usize,
    },
    /// The abstracted downstream environment signals it accepts the
    /// stream of one branch (compositional mode only).
    EnvAccept {
        /// Plan visit index.
        visit: usize,
        /// Branch index within the visit.
        branch: usize,
    },
}

/// One transition of a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Human-readable description of the transition.
    pub label: String,
    /// Structured form of the transition, for re-execution.
    pub op: TraceOp,
}

/// A property violation with its minimal counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Scenario (fabric + worm set) the violation occurred in. A
    /// compositional sub-scenario is suffixed `@s<switch>`.
    pub scenario: String,
    /// Violation class: `deadlock`, `livelock`, `invariant`, `plan`, or
    /// `state-bound`.
    pub kind: String,
    /// What went wrong in the violating state.
    pub detail: String,
    /// Minimal transition sequence from the initial state.
    pub trace: Vec<TraceStep>,
    /// Central-queue semantic events along the trace (central-buffer
    /// scenarios only), replayable through [`crate::replay_cq_trace`].
    pub events: Vec<(Cycle, SemEvent)>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} in scenario '{}': {}",
            self.kind, self.scenario, self.detail
        )?;
        writeln!(f, "counterexample ({} steps):", self.trace.len())?;
        for (i, step) in self.trace.iter().enumerate() {
            writeln!(f, "  {:>3}. {}", i + 1, step.label)?;
        }
        Ok(())
    }
}

/// Coverage counters of a successful check.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ModelStats {
    /// Scenarios (fabric + worm set combinations) explored.
    pub scenarios: usize,
    /// Reachable states (orbit representatives) across all scenarios.
    pub states: usize,
    /// Transitions across all scenarios.
    pub transitions: usize,
    /// Successor states folded into an existing orbit representative that
    /// differs concretely — each one a state the unreduced oracle would
    /// have explored separately.
    pub orbit_hits: usize,
    /// Transitions pruned by the ample-set partial-order rule.
    pub ample_skips: usize,
}

/// Result of a model check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every scenario verified: invariants hold in every reachable state
    /// and every terminal SCC is the all-delivered state.
    Verified(ModelStats),
    /// A property failed; the violation carries a minimal counterexample.
    Violated(Box<Violation>),
}

impl CheckOutcome {
    /// `true` when the check verified every scenario.
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified(_))
    }
}

/// Checks the given switch architecture (with synchronous or asynchronous
/// replication) against every bounded scenario with the **unreduced
/// sequential oracle** ([`ModelOptions::oracle`]).
///
/// Scenarios cover a single switch with crossed multicasts, and a
/// two-switch parent/child fabric with ascending, descending, and
/// replicating worms (plus, when `bounds.max_switches >= 4`, a
/// four-switch two-root fabric, and at `>= 8`/`>= 16`, star fabrics of
/// isomorphic leaves). The central-buffer architecture replicates from
/// the shared queue and is inherently asynchronous, so `sync_replication`
/// is ignored for it.
pub fn check_model(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
) -> CheckOutcome {
    check_model_opts(
        arch,
        sync_replication,
        policy,
        bounds,
        &ModelOptions::oracle(),
    )
}

/// [`check_model`] with reduction, parallelism, and decomposition knobs
/// (DESIGN.md §14). With [`ModelOptions::oracle`] this *is* the oracle;
/// with reductions on, verdicts agree with the oracle while exploring one
/// representative per symmetry orbit and pruning commuting interleavings.
pub fn check_model_opts(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
    opts: &ModelOptions,
) -> CheckOutcome {
    let sync = sync_replication && arch == ArchClass::InputBuffered;
    let mut stats = ModelStats::default();
    for scenario in scenarios(bounds.max_switches) {
        let plan = match build_plan(&scenario, policy, bounds.worm_chunks) {
            Ok(p) => p,
            Err(e) => {
                return CheckOutcome::Violated(Box::new(Violation {
                    scenario: scenario.name.to_string(),
                    kind: "plan".into(),
                    detail: e,
                    trace: Vec::new(),
                    events: Vec::new(),
                }))
            }
        };
        let exact = match opts.mode {
            ModelMode::Exact => true,
            ModelMode::Compositional => false,
            ModelMode::Auto => scenario.n_switches <= ModelOptions::AUTO_EXACT_MAX_SWITCHES,
        };
        let result = if exact {
            run_plan(scenario.name, &plan, arch, sync, bounds, opts, true)
        } else {
            crate::compose::check_scenario(scenario.name, &plan, arch, sync, bounds, opts)
        };
        match result {
            Ok(s) => {
                stats.scenarios += 1;
                stats.states += s.states;
                stats.transitions += s.transitions;
                stats.orbit_hits += s.orbit_hits;
                stats.ample_skips += s.ample_skips;
            }
            Err(v) => return CheckOutcome::Violated(v),
        }
    }
    CheckOutcome::Verified(stats)
}

// ---------------------------------------------------------------------
// Scenarios: small fabrics + worm alphabets.
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) enum WormKind {
    Unicast(NodeId),
    Mcast(DestSet),
}

pub(crate) struct Scenario {
    pub(crate) name: &'static str,
    pub(crate) topo: Topology,
    pub(crate) n_switches: usize,
    pub(crate) worms: Vec<(NodeId, WormKind)>,
}

/// One switch, four hosts: the crossed-multicast scenario that separates
/// asynchronous from synchronous replication.
fn single_switch() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s = b.add_switch(4, 0);
    for h in 0..4 {
        b.attach_host(NodeId(h), s, h as usize);
    }
    b.build()
}

/// A leaf (hosts 0, 1) under a root (hosts 2, 3): ascending, descending,
/// and cross-stage traffic.
fn pair() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s0 = b.add_switch(3, 1);
    let s1 = b.add_switch(3, 0);
    b.attach_host(NodeId(0), s0, 0);
    b.attach_host(NodeId(1), s0, 1);
    b.attach_host(NodeId(2), s1, 0);
    b.attach_host(NodeId(3), s1, 1);
    b.connect(s0, 2, s1, 2);
    b.build()
}

/// Two leaves under two roots: path diversity and root-level replication.
fn quad() -> Topology {
    let mut b = TopologyBuilder::new(4);
    let s0 = b.add_switch(4, 1);
    let s1 = b.add_switch(4, 1);
    let r0 = b.add_switch(2, 0);
    let r1 = b.add_switch(2, 0);
    b.attach_host(NodeId(0), s0, 0);
    b.attach_host(NodeId(1), s0, 1);
    b.attach_host(NodeId(2), s1, 0);
    b.attach_host(NodeId(3), s1, 1);
    b.connect(s0, 2, r0, 0);
    b.connect(s0, 3, r1, 0);
    b.connect(s1, 2, r0, 1);
    b.connect(s1, 3, r1, 1);
    b.build()
}

/// `leaves` identical 2-host leaf switches under one root: the symmetry
/// stress fabric. One leaf-local unicast worm per leaf, all isomorphic
/// and pairwise switch-disjoint, so the joint space is a product the
/// oracle must enumerate while the reduced checker collapses it to a
/// multiset of per-worm phases.
pub(crate) fn star_of_leaves(leaves: usize) -> Topology {
    let mut b = TopologyBuilder::new(2 * leaves);
    let root = b.add_switch(leaves, 0);
    for i in 0..leaves {
        let leaf = b.add_switch(3, 1);
        b.attach_host(NodeId(2 * i as u32), leaf, 0);
        b.attach_host(NodeId(2 * i as u32 + 1), leaf, 1);
        b.connect(leaf, 2, root, i);
    }
    b.build()
}

fn star_worms(leaves: usize) -> Vec<(NodeId, WormKind)> {
    (0..leaves as u32)
        .map(|i| (NodeId(2 * i), WormKind::Unicast(NodeId(2 * i + 1))))
        .collect()
}

fn mcast(n: usize, nodes: &[u32]) -> WormKind {
    WormKind::Mcast(DestSet::from_nodes(n, nodes.iter().map(|&h| NodeId(h))))
}

pub(crate) fn scenarios(max_switches: usize) -> Vec<Scenario> {
    let mut v = vec![
        Scenario {
            name: "single-crossed-mcast",
            topo: single_switch(),
            n_switches: 1,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(1), mcast(4, &[2, 3])),
            ],
        },
        Scenario {
            name: "pair-up-down",
            topo: pair(),
            n_switches: 2,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(2), mcast(4, &[0, 1])),
                (NodeId(1), WormKind::Unicast(NodeId(3))),
            ],
        },
        Scenario {
            name: "pair-replicate-revisit",
            topo: pair(),
            n_switches: 2,
            worms: vec![
                // Covers a destination under its own leaf plus two under
                // the root: under ReturnOnly the worm climbs and then
                // *revisits* its source switch descending — the case the
                // descending-chunk reserve exists for.
                (NodeId(0), mcast(4, &[1, 2, 3])),
                (NodeId(3), WormKind::Unicast(NodeId(0))),
            ],
        },
    ];
    if max_switches >= 4 {
        v.push(Scenario {
            name: "quad-two-roots",
            topo: quad(),
            n_switches: 4,
            worms: vec![
                (NodeId(0), mcast(4, &[2, 3])),
                (NodeId(2), mcast(4, &[0, 1])),
            ],
        });
    }
    if max_switches >= 8 {
        v.push(Scenario {
            name: "scale-8-leaf-local",
            topo: star_of_leaves(7),
            n_switches: 8,
            worms: star_worms(7),
        });
    }
    if max_switches >= 16 {
        v.push(Scenario {
            name: "scale-16-leaf-local",
            topo: star_of_leaves(15),
            n_switches: 16,
            worms: star_worms(15),
        });
    }
    v.retain(|s| s.n_switches <= max_switches);
    v
}

// ---------------------------------------------------------------------
// Visit plans: each worm's path precomputed from the real routing tables.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Target {
    Host(NodeId),
    Visit(usize),
    /// Compositional mode: the branch leaves the checked switch into the
    /// abstracted environment through one-way stub slot `slot`.
    Env(usize),
}

#[derive(Debug, Clone)]
pub(crate) struct PlanBranch {
    pub(crate) out_port: usize,
    pub(crate) target: Target,
}

#[derive(Debug, Clone)]
pub(crate) struct Visit {
    pub(crate) worm: usize,
    pub(crate) sw: usize,
    pub(crate) in_port: usize,
    /// The packet arrived from a parent switch (uses the descending
    /// central-queue reserve).
    pub(crate) descending: bool,
    pub(crate) branches: Vec<PlanBranch>,
    /// `(visit, branch)` feeding this visit; `None` for host entry.
    pub(crate) parent: Option<(usize, usize)>,
    /// Compositional mode: the visit is fed by the abstracted upstream
    /// environment (monotone nondeterministic chunk source) instead of a
    /// parent visit.
    pub(crate) env_fed: bool,
}

pub(crate) struct Plan {
    pub(crate) visits: Vec<Visit>,
    /// Entry visit of each worm.
    pub(crate) entries: Vec<usize>,
    /// Worm descriptions for trace labels.
    pub(crate) worm_desc: Vec<String>,
    /// Compositional mode: number of one-way downstream stub slots.
    pub(crate) env_slots: usize,
}

impl Plan {
    /// `true` when the plan abstracts its surroundings (compositional
    /// sub-plan): symmetry reduction is disabled for such plans.
    pub(crate) fn has_env(&self) -> bool {
        self.env_slots > 0 || self.visits.iter().any(|v| v.env_fed)
    }
}

pub(crate) fn build_plan(
    scenario: &Scenario,
    policy: ReplicatePolicy,
    worm_chunks: usize,
) -> Result<Plan, String> {
    if !(1..=4).contains(&worm_chunks) {
        return Err(format!("worm_chunks {worm_chunks} out of bounds 1..=4"));
    }
    let tables = RouteTables::build(&scenario.topo);
    let mut plan = Plan {
        visits: Vec::new(),
        entries: Vec::new(),
        worm_desc: Vec::new(),
        env_slots: 0,
    };
    for (w, (src, kind)) in scenario.worms.iter().enumerate() {
        let (sw, port) = scenario.topo.host_inject(*src);
        let entry = add_visit(
            &mut plan,
            &scenario.topo,
            &tables,
            policy,
            w,
            sw,
            port,
            kind,
            None,
            0,
        )?;
        plan.entries.push(entry);
        plan.worm_desc.push(match kind {
            WormKind::Unicast(d) => format!("h{} -> h{}", src.0, d.0),
            WormKind::Mcast(d) => format!(
                "h{} -> {{{}}}",
                src.0,
                d.iter()
                    .map(|n| format!("h{}", n.0))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        });
    }
    Ok(plan)
}

/// Recursively expands one switch visit of a worm, returning its index.
#[allow(clippy::too_many_arguments)]
fn add_visit(
    plan: &mut Plan,
    topo: &Topology,
    tables: &RouteTables,
    policy: ReplicatePolicy,
    worm: usize,
    sw: SwitchId,
    in_port: usize,
    kind: &WormKind,
    parent: Option<(usize, usize)>,
    depth: usize,
) -> Result<usize, String> {
    if depth > 16 {
        return Err(format!("worm {worm} routing exceeds 16 hops"));
    }
    let table = tables.table(sw);
    let descending = table.port(in_port).class == PortClass::Up;
    let idx = plan.visits.len();
    plan.visits.push(Visit {
        worm,
        sw: sw.index(),
        in_port,
        descending,
        branches: Vec::new(),
        parent,
        env_fed: false,
    });

    // (out port, residual destination set or unicast dest) per branch.
    let hops: Vec<(usize, WormKind)> = match kind {
        WormKind::Unicast(dest) => match table.route_unicast(*dest) {
            UnicastRoute::Down(p) => vec![(p, WormKind::Unicast(*dest))],
            UnicastRoute::Up(cands) => {
                let p = pick_deterministic(&cands, worm as u64);
                vec![(p, WormKind::Unicast(*dest))]
            }
        },
        WormKind::Mcast(dests) => {
            let McastRoute { down, up } = table.route_bitstring(dests, policy);
            let mut hops: Vec<(usize, WormKind)> = down
                .into_iter()
                .map(|(p, sub)| (p, WormKind::Mcast(sub)))
                .collect();
            if let Some((cands, updests)) = up {
                let p = pick_deterministic(&cands, worm as u64);
                hops.push((p, WormKind::Mcast(updests)));
            }
            hops
        }
    };
    if hops.is_empty() {
        return Err(format!("worm {worm} has no route at s{}", sw.index()));
    }
    // Bounded-replication-fanout invariant: a worm can never branch wider
    // than the switch has ports.
    if hops.len() > topo.ports(sw) {
        return Err(format!(
            "worm {worm} fans out {}-wide at s{} ({} ports)",
            hops.len(),
            sw.index(),
            topo.ports(sw)
        ));
    }

    for (branch_idx, (out_port, sub)) in hops.into_iter().enumerate() {
        let target = match topo.attach(sw, out_port) {
            Attach::Host(h) => Target::Host(h),
            Attach::Switch(sw2, p2) => {
                let child = add_visit(
                    plan,
                    topo,
                    tables,
                    policy,
                    worm,
                    sw2,
                    p2,
                    &sub,
                    Some((idx, branch_idx)),
                    depth + 1,
                )?;
                Target::Visit(child)
            }
            Attach::Unused => {
                return Err(format!(
                    "worm {worm} routed onto unused port {out_port} of s{}",
                    sw.index()
                ))
            }
        };
        plan.visits[idx]
            .branches
            .push(PlanBranch { out_port, target });
    }
    Ok(idx)
}

/// Per-worm set of visited switches, sorted and deduplicated.
pub(crate) fn worm_switches(plan: &Plan) -> Vec<Vec<usize>> {
    let n_worms = plan.worm_desc.len();
    let mut sets = vec![Vec::new(); n_worms];
    for v in &plan.visits {
        if !sets[v.worm].contains(&v.sw) {
            sets[v.worm].push(v.sw);
        }
    }
    for s in &mut sets {
        s.sort_unstable();
    }
    sets
}

/// `safe[w]` — worm `w`'s switch footprint is disjoint from every other
/// worm's, so its transitions commute with all of theirs (the ample-set
/// premise of the partial-order reduction).
pub(crate) fn safe_worms(plan: &Plan) -> Vec<bool> {
    let sets = worm_switches(plan);
    (0..sets.len())
        .map(|w| {
            sets.iter().enumerate().all(|(o, other)| {
                o == w || !other.iter().any(|sw| sets[w].binary_search(sw).is_ok())
            })
        })
        .collect()
}

// ---------------------------------------------------------------------
// Exploration.
// ---------------------------------------------------------------------

/// Status of one planned visit inside a model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum VState {
    /// Head has not reached this switch yet.
    Pending,
    /// Central buffer only: head presented, full-packet reservation not
    /// yet granted.
    Waiting,
    /// Central buffer: packet admitted (reservation debited); per-branch
    /// chunk read cursors.
    StoredCb { reads: Vec<u16> },
    /// Input buffer: packet (head) in the input FIFO, driven by the live
    /// [`IbHeadState`] core.
    StoredIb { head: IbHeadState },
    /// Every branch drained; all buffer space returned.
    Done,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct MState {
    /// Per-switch central-queue accounting (central buffer only).
    pub(crate) cq: Vec<CqState>,
    pub(crate) visits: Vec<VState>,
    /// Central buffer: per switch, per output port, FIFO of (visit,
    /// branch) — the central-queue branch lists.
    pub(crate) queues: Vec<Vec<VecDeque<(u32, u8)>>>,
    /// Input buffer: per switch, per output port, owning (visit, branch).
    pub(crate) owners: Vec<Vec<Option<(u32, u8)>>>,
    /// Input buffer: per switch, per input port, resident visit.
    pub(crate) occupants: Vec<Vec<Option<u32>>>,
    /// Compositional mode: chunks the upstream environment has delivered
    /// into each env-fed visit (empty when the plan has no environment).
    pub(crate) env_fill: Vec<u16>,
    /// Compositional mode: one-way accept bit per downstream stub slot.
    pub(crate) env_ready: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Label {
    Inject(usize),
    Present(usize),
    Admit(usize),
    Advance(usize, usize),
    Grant(usize, usize),
    AdvanceSync(usize),
    EnvDeliver(usize),
    EnvAccept(usize, usize),
}

impl Label {
    /// The plan visit the transition belongs to (ample-set grouping).
    pub(crate) fn visit(self) -> usize {
        match self {
            Label::Inject(v)
            | Label::Present(v)
            | Label::Admit(v)
            | Label::AdvanceSync(v)
            | Label::EnvDeliver(v)
            | Label::Advance(v, _)
            | Label::Grant(v, _)
            | Label::EnvAccept(v, _) => v,
        }
    }

    pub(crate) fn op(self) -> TraceOp {
        match self {
            Label::Inject(visit) => TraceOp::Inject { visit },
            Label::Present(visit) => TraceOp::Present { visit },
            Label::Admit(visit) => TraceOp::Admit { visit },
            Label::Advance(visit, branch) => TraceOp::Advance { visit, branch },
            Label::Grant(visit, branch) => TraceOp::Grant { visit, branch },
            Label::AdvanceSync(visit) => TraceOp::AdvanceSync { visit },
            Label::EnvDeliver(visit) => TraceOp::EnvDeliver { visit },
            Label::EnvAccept(visit, branch) => TraceOp::EnvAccept { visit, branch },
        }
    }

    pub(crate) fn from_op(op: TraceOp) -> Label {
        match op {
            TraceOp::Inject { visit } => Label::Inject(visit),
            TraceOp::Present { visit } => Label::Present(visit),
            TraceOp::Admit { visit } => Label::Admit(visit),
            TraceOp::Advance { visit, branch } => Label::Advance(visit, branch),
            TraceOp::Grant { visit, branch } => Label::Grant(visit, branch),
            TraceOp::AdvanceSync { visit } => Label::AdvanceSync(visit),
            TraceOp::EnvDeliver { visit } => Label::EnvDeliver(visit),
            TraceOp::EnvAccept { visit, branch } => Label::EnvAccept(visit, branch),
        }
    }
}

/// Coverage counters of one scenario (or compositional sub-plan) run.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct ScenarioStats {
    pub(crate) states: usize,
    pub(crate) transitions: usize,
    pub(crate) orbit_hits: usize,
    pub(crate) ample_skips: usize,
}

/// Explores one plan under the given options. `allow_symmetry` lets the
/// compositional driver force symmetry off for sub-plans (whose worms all
/// share the one checked switch, so the group would be rebuilt per
/// sub-plan for no reduction).
pub(crate) fn run_plan(
    scenario: &str,
    plan: &Plan,
    arch: ArchClass,
    sync: bool,
    bounds: &ModelBounds,
    opts: &ModelOptions,
    allow_symmetry: bool,
) -> Result<ScenarioStats, Box<Violation>> {
    let sym_built = if opts.symmetry && allow_symmetry && !plan.has_env() {
        Some(symmetry::build(plan))
    } else {
        None
    };
    let sym = sym_built.as_ref().filter(|s| !s.is_trivial());
    let ctx = Ctx {
        plan,
        arch,
        sync,
        len: bounds.worm_chunks as u16,
        cq_chunks: bounds.cq_chunks,
        cq_reserve: bounds.cq_reserve,
        max_states: bounds.max_states,
        scenario,
        por: opts.por,
        jobs: opts.jobs.max(1),
        safe: safe_worms(plan),
        sym,
    };
    ctx.explore()
}

/// Re-executes a violation's trace against a freshly rebuilt model and
/// confirms the final state exhibits the claimed violation. Returns the
/// number of steps replayed.
pub(crate) fn reexecute_violation(
    arch: ArchClass,
    sync_replication: bool,
    policy: ReplicatePolicy,
    bounds: &ModelBounds,
    v: &Violation,
) -> Result<usize, String> {
    if v.kind == "plan" || v.kind == "state-bound" {
        return Err(format!(
            "violation of kind '{}' carries no replayable trace",
            v.kind
        ));
    }
    let sync = sync_replication && arch == ArchClass::InputBuffered;
    let (base, sub_sw) =
        match v.scenario.rsplit_once("@s") {
            Some((b, sw)) => (
                b,
                Some(sw.parse::<usize>().map_err(|e| {
                    format!("malformed compositional scenario '{}': {e}", v.scenario)
                })?),
            ),
            None => (v.scenario.as_str(), None),
        };
    let scenario = scenarios(usize::MAX)
        .into_iter()
        .find(|s| s.name == base)
        .ok_or_else(|| format!("unknown scenario '{base}'"))?;
    let full = build_plan(&scenario, policy, bounds.worm_chunks)?;
    let plan = match sub_sw {
        None => full,
        Some(sw) => {
            crate::compose::decompose(&full)
                .into_iter()
                .find(|s| s.sw == sw)
                .ok_or_else(|| format!("scenario '{base}' has no sub-plan at s{sw}"))?
                .plan
        }
    };
    let ctx = Ctx {
        plan: &plan,
        arch,
        sync,
        len: bounds.worm_chunks as u16,
        cq_chunks: bounds.cq_chunks,
        cq_reserve: bounds.cq_reserve,
        max_states: bounds.max_states,
        scenario: base,
        por: false,
        jobs: 1,
        safe: safe_worms(&plan),
        sym: None,
    };
    let mut state = ctx.initial();
    for (i, step) in v.trace.iter().enumerate() {
        let label = Label::from_op(step.op);
        state = ctx
            .apply_label(&state, label)
            .ok_or_else(|| format!("trace step {} ('{}') is not enabled", i + 1, step.label))?;
    }
    let ok = match v.kind.as_str() {
        "deadlock" => ctx.successors(&state).is_empty() && !ctx.all_done(&state),
        "invariant" => ctx.check_invariants(&state).is_some(),
        "livelock" => !ctx.all_done(&state),
        other => return Err(format!("unknown violation kind '{other}'")),
    };
    if !ok {
        return Err(format!(
            "trace replayed but the final state does not exhibit the claimed {}",
            v.kind
        ));
    }
    Ok(v.trace.len())
}

/// One level state expanded by a worker: invariant verdict, ample-set
/// filtered successors with canonical keys, and the pruned count.
struct Expanded {
    invariant: Option<String>,
    succs: Vec<(Label, MState, Vec<u8>)>,
    skipped: usize,
}

pub(crate) struct Ctx<'a> {
    pub(crate) plan: &'a Plan,
    pub(crate) arch: ArchClass,
    pub(crate) sync: bool,
    pub(crate) len: u16,
    pub(crate) cq_chunks: usize,
    pub(crate) cq_reserve: usize,
    pub(crate) max_states: usize,
    pub(crate) scenario: &'a str,
    pub(crate) por: bool,
    pub(crate) jobs: usize,
    pub(crate) safe: Vec<bool>,
    pub(crate) sym: Option<&'a SymPlan>,
}

/// Geometry of a plan: switch count and per-switch port-vector width
/// (widest port index any visit touches, +1).
pub(crate) fn plan_geometry(plan: &Plan) -> (usize, Vec<usize>) {
    let n_sw = plan.visits.iter().map(|v| v.sw + 1).max().unwrap_or(0);
    let mut ports = vec![0usize; n_sw];
    for v in &plan.visits {
        let wide = v
            .branches
            .iter()
            .map(|b| b.out_port + 1)
            .chain([v.in_port + 1])
            .max()
            .unwrap_or(0);
        ports[v.sw] = ports[v.sw].max(wide);
    }
    (n_sw, ports)
}

impl Ctx<'_> {
    fn n_switches(&self) -> usize {
        plan_geometry(self.plan).0
    }

    fn ports_of(&self, sw: usize) -> usize {
        plan_geometry(self.plan).1[sw]
    }

    pub(crate) fn initial(&self) -> MState {
        let n_sw = self.n_switches();
        let cb = self.arch == ArchClass::CentralBuffer;
        let env = self.plan.has_env();
        MState {
            cq: if cb {
                (0..n_sw)
                    .map(|_| CqState::new(self.cq_chunks, self.cq_reserve))
                    .collect()
            } else {
                Vec::new()
            },
            visits: vec![VState::Pending; self.plan.visits.len()],
            queues: if cb {
                (0..n_sw)
                    .map(|s| vec![VecDeque::new(); self.ports_of(s)])
                    .collect()
            } else {
                Vec::new()
            },
            owners: if cb {
                Vec::new()
            } else {
                (0..n_sw).map(|s| vec![None; self.ports_of(s)]).collect()
            },
            occupants: if cb {
                Vec::new()
            } else {
                (0..n_sw).map(|s| vec![None; self.ports_of(s)]).collect()
            },
            env_fill: if env {
                vec![0; self.plan.visits.len()]
            } else {
                Vec::new()
            },
            env_ready: vec![false; self.plan.env_slots],
        }
    }

    /// Chunks of visit `v`'s packet that have arrived at its switch — the
    /// cut-through bound on what its branches may forward.
    fn fill(&self, state: &MState, v: usize) -> u16 {
        let visit = &self.plan.visits[v];
        if visit.env_fed {
            return state.env_fill[v];
        }
        match visit.parent {
            None => self.len,
            Some((pv, pb)) => match &state.visits[pv] {
                VState::StoredCb { reads } => reads[pb],
                VState::StoredIb { head } => head.branches[pb].read,
                VState::Done => self.len,
                _ => 0,
            },
        }
    }

    pub(crate) fn all_done(&self, state: &MState) -> bool {
        state.visits.iter().all(|v| *v == VState::Done)
    }

    fn label_text(&self, label: Label) -> String {
        let vis = |v: usize| {
            let visit = &self.plan.visits[v];
            format!(
                "worm {} ({}) at s{}",
                visit.worm, self.plan.worm_desc[visit.worm], visit.sw
            )
        };
        match label {
            Label::Inject(v) => format!("inject {}", vis(v)),
            Label::Present(v) => format!("present head of {}", vis(v)),
            Label::Admit(v) => format!("reserve {} chunks for {}", self.len, vis(v)),
            Label::Advance(v, b) => {
                let br = &self.plan.visits[v].branches[b];
                format!(
                    "advance one chunk of {} through port {}",
                    vis(v),
                    br.out_port
                )
            }
            Label::Grant(v, b) => {
                let br = &self.plan.visits[v].branches[b];
                format!("grant output port {} to {}", br.out_port, vis(v))
            }
            Label::AdvanceSync(v) => {
                format!(
                    "advance one chunk of {} on all branches in lock-step",
                    vis(v)
                )
            }
            Label::EnvDeliver(v) => {
                format!("environment delivers one upstream chunk to {}", vis(v))
            }
            Label::EnvAccept(v, b) => {
                let br = &self.plan.visits[v].branches[b];
                format!(
                    "environment accepts the stream of {} through port {}",
                    vis(v),
                    br.out_port
                )
            }
        }
    }

    /// Per-state safety invariants. Returns a violation description.
    pub(crate) fn check_invariants(&self, state: &MState) -> Option<String> {
        if self.arch == ArchClass::CentralBuffer {
            let n_sw = state.cq.len();
            for sw in 0..n_sw {
                // Chunk conservation: capacity = free + waiter-held +
                // Σ (len - min branch read) over admitted packets.
                let stored: usize = state
                    .visits
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| self.plan.visits[*i].sw == sw)
                    .map(|(_, v)| match v {
                        VState::StoredCb { reads } => {
                            usize::from(self.len)
                                - usize::from(*reads.iter().min().expect("branch"))
                        }
                        _ => 0,
                    })
                    .sum();
                if state.cq[sw].used() != stored {
                    return Some(format!(
                        "chunk conservation broken at s{sw}: accounting says {} \
                         chunks hold data, packets occupy {stored}",
                        state.cq[sw].used()
                    ));
                }
            }
            if self.all_done(state) {
                for (sw, cq) in state.cq.iter().enumerate() {
                    if cq.free() != cq.capacity || cq.waiter_held() != 0 {
                        return Some(format!(
                            "chunk leak at s{sw}: {} of {} chunks free at \
                             quiescence",
                            cq.free(),
                            cq.capacity
                        ));
                    }
                }
            }
        }
        None
    }

    pub(crate) fn successors(&self, state: &MState) -> Vec<(Label, MState)> {
        let mut out = Vec::new();
        for (v, vs) in state.visits.iter().enumerate() {
            if *vs != VState::Pending || self.plan.visits[v].parent.is_some() {
                continue;
            }
            // Host injection of an entry visit (environment-fed visits of
            // a compositional sub-plan enter the same way).
            match self.arch {
                ArchClass::CentralBuffer => {
                    let mut next = state.clone();
                    next.visits[v] = VState::Waiting;
                    out.push((Label::Inject(v), next));
                }
                ArchClass::InputBuffered => {
                    let visit = &self.plan.visits[v];
                    if state.occupants[visit.sw][visit.in_port].is_none() {
                        let mut next = state.clone();
                        next.occupants[visit.sw][visit.in_port] = Some(v as u32);
                        next.visits[v] = self.fresh_ib(v);
                        out.push((Label::Inject(v), next));
                    }
                }
            }
        }
        match self.arch {
            ArchClass::CentralBuffer => self.cb_successors(state, &mut out),
            ArchClass::InputBuffered => self.ib_successors(state, &mut out),
        }
        self.env_successors(state, &mut out);
        out
    }

    /// Environment transitions of a compositional sub-plan: monotone
    /// upstream chunk delivery and the one-way downstream accept bit.
    /// Both are finite and strictly increasing, so a local deadlock still
    /// surfaces once the environment exhausts its moves.
    fn env_successors(&self, state: &MState, out: &mut Vec<(Label, MState)>) {
        if !self.plan.has_env() {
            return;
        }
        for (v, vs) in state.visits.iter().enumerate() {
            let stored = matches!(vs, VState::StoredCb { .. } | VState::StoredIb { .. });
            if !stored {
                continue;
            }
            let visit = &self.plan.visits[v];
            if visit.env_fed && state.env_fill[v] < self.len {
                let mut next = state.clone();
                next.env_fill[v] += 1;
                out.push((Label::EnvDeliver(v), next));
            }
            for (b, branch) in visit.branches.iter().enumerate() {
                let Target::Env(slot) = branch.target else {
                    continue;
                };
                if !state.env_ready[slot] {
                    let mut next = state.clone();
                    next.env_ready[slot] = true;
                    out.push((Label::EnvAccept(v, b), next));
                }
            }
        }
    }

    fn fresh_ib(&self, v: usize) -> VState {
        VState::StoredIb {
            head: IbHeadState::new(
                self.len,
                self.plan.visits[v].branches.iter().map(|b| b.out_port),
            ),
        }
    }

    fn cb_successors(&self, state: &MState, out: &mut Vec<(Label, MState)>) {
        // Present: the head branch of an output list wakes its pending
        // downstream visit.
        for queues in &state.queues {
            for queue in queues {
                let Some(&(v, b)) = queue.front() else {
                    continue;
                };
                let Target::Visit(w) = self.plan.visits[v as usize].branches[b as usize].target
                else {
                    continue;
                };
                if state.visits[w] == VState::Pending {
                    let mut next = state.clone();
                    next.visits[w] = VState::Waiting;
                    out.push((Label::Present(w), next));
                }
            }
        }
        // Admit: a waiting visit retries its full-packet reservation.
        for (v, vs) in state.visits.iter().enumerate() {
            if *vs != VState::Waiting {
                continue;
            }
            let visit = &self.plan.visits[v];
            let (cq, effect) = cq_step(
                &state.cq[visit.sw],
                CqEvent::Reserve {
                    input: visit.in_port,
                    need: usize::from(self.len),
                    descending: visit.descending,
                },
            );
            let granted = effect == CqEffect::Granted;
            if !granted && cq == state.cq[visit.sw] {
                continue; // pure retry-later, not a distinct transition
            }
            let mut next = state.clone();
            next.cq[visit.sw] = cq;
            if granted {
                next.visits[v] = VState::StoredCb {
                    reads: vec![0; visit.branches.len()],
                };
                for (b, branch) in visit.branches.iter().enumerate() {
                    next.queues[visit.sw][branch.out_port].push_back((v as u32, b as u8));
                }
            }
            out.push((Label::Admit(v), next));
        }
        // Advance: the head branch of an output list forwards one chunk.
        for (sw, queues) in state.queues.iter().enumerate() {
            for queue in queues {
                let Some(&(v32, b8)) = queue.front() else {
                    continue;
                };
                let (v, b) = (v32 as usize, usize::from(b8));
                let VState::StoredCb { reads } = &state.visits[v] else {
                    continue;
                };
                if reads[b] >= self.len || reads[b] >= self.fill(state, v) {
                    continue;
                }
                let branch = &self.plan.visits[v].branches[b];
                match branch.target {
                    Target::Visit(w) => {
                        if !matches!(state.visits[w], VState::StoredCb { .. }) {
                            continue; // downstream not admitted yet
                        }
                    }
                    Target::Env(slot) => {
                        if !state.env_ready[slot] {
                            continue; // environment has not accepted yet
                        }
                    }
                    Target::Host(_) => {}
                }
                let mut next = state.clone();
                let VState::StoredCb { reads } = &mut next.visits[v] else {
                    unreachable!()
                };
                let old_min = *reads.iter().min().expect("branch");
                reads[b] += 1;
                let done = reads[b] == self.len;
                let new_min = *reads.iter().min().expect("branch");
                if new_min == self.len {
                    next.visits[v] = VState::Done;
                }
                for _ in old_min..new_min {
                    let (cq, _) = cq_step(&next.cq[sw], CqEvent::Release);
                    next.cq[sw] = cq;
                }
                if done {
                    next.queues[sw][branch.out_port].pop_front();
                }
                out.push((Label::Advance(v, b), next));
            }
        }
    }

    fn ib_successors(&self, state: &MState, out: &mut Vec<(Label, MState)>) {
        for (v, vs) in state.visits.iter().enumerate() {
            let VState::StoredIb { head } = vs else {
                continue;
            };
            let visit = &self.plan.visits[v];
            // Grant: an undone branch wins its free output port.
            for (b, bs) in head.branches.iter().enumerate() {
                if bs.granted || bs.done {
                    continue;
                }
                if state.owners[visit.sw][bs.port].is_some() {
                    continue;
                }
                let mut next = state.clone();
                next.owners[visit.sw][bs.port] = Some((v as u32, b as u8));
                let (h2, _) = ib_step(head, IbEvent::Grant { branch: b });
                next.visits[v] = VState::StoredIb { head: h2 };
                out.push((Label::Grant(v, b), next));
            }
            let fill = self.fill(state, v);
            if self.sync {
                // Lock-step replication: every branch must hold its grant
                // and every downstream must be able to accept the chunk.
                let all_granted = head.branches.iter().all(|b| b.granted && !b.done);
                let read = head.branches[0].read;
                if !all_granted || read >= self.len || read >= fill {
                    continue;
                }
                let Some(mut next) = self.ib_present_targets(state, v, usize::MAX) else {
                    continue;
                };
                let (h2, effect) = ib_step(head, IbEvent::ReadLockStep);
                self.ib_apply(&mut next, v, h2, effect);
                out.push((Label::AdvanceSync(v), next));
            } else {
                // Asynchronous replication: granted branches stream
                // independently.
                for (b, bs) in head.branches.iter().enumerate() {
                    if !bs.granted || bs.done || bs.read >= self.len || bs.read >= fill {
                        continue;
                    }
                    let Some(mut next) = self.ib_present_targets(state, v, b) else {
                        continue;
                    };
                    let (h2, effect) = ib_step(head, IbEvent::ReadFlit { branch: b });
                    self.ib_apply(&mut next, v, h2, effect);
                    out.push((Label::Advance(v, b), next));
                }
            }
        }
    }

    /// Clones `state` with every pending downstream target of visit `v`
    /// presented (branch `only`, or all branches when `only == usize::MAX`).
    /// Returns `None` if a needed input buffer is occupied by another worm
    /// or a needed environment stub has not accepted yet.
    fn ib_present_targets(&self, state: &MState, v: usize, only: usize) -> Option<MState> {
        let mut next = state.clone();
        for (b, branch) in self.plan.visits[v].branches.iter().enumerate() {
            if only != usize::MAX && b != only {
                continue;
            }
            match branch.target {
                Target::Host(_) => {}
                Target::Env(slot) => {
                    if !state.env_ready[slot] {
                        return None;
                    }
                }
                Target::Visit(w) => match &state.visits[w] {
                    VState::Pending => {
                        let wv = &self.plan.visits[w];
                        if next.occupants[wv.sw][wv.in_port].is_some() {
                            return None;
                        }
                        next.occupants[wv.sw][wv.in_port] = Some(w as u32);
                        next.visits[w] = self.fresh_ib(w);
                    }
                    VState::StoredIb { .. } => {}
                    // The head FIFO holds the whole packet, so a
                    // downstream visit can never complete before its
                    // feeder.
                    VState::Waiting | VState::StoredCb { .. } | VState::Done => unreachable!(),
                },
            }
        }
        Some(next)
    }

    fn ib_apply(&self, next: &mut MState, v: usize, head: IbHeadState, effect: IbEffect) {
        let visit = &self.plan.visits[v];
        if let IbEffect::BranchesDone(ports) = effect {
            for port in ports {
                next.owners[visit.sw][port] = None;
            }
        }
        if head.all_done() {
            next.occupants[visit.sw][visit.in_port] = None;
            next.visits[v] = VState::Done;
        } else {
            next.visits[v] = VState::StoredIb { head };
        }
    }

    /// Applies one labeled transition to a state, via the same successor
    /// enumeration the explorer uses. `None` when the label is not
    /// enabled. (Partial-order reduction prunes *exploration*, not
    /// enabledness, so counterexample edges always re-apply.)
    pub(crate) fn apply_label(&self, state: &MState, label: Label) -> Option<MState> {
        self.successors(state)
            .into_iter()
            .find(|(l, _)| *l == label)
            .map(|(_, s)| s)
    }

    /// Central-queue semantic events along a concrete label path,
    /// replayable through [`crate::replay_cq_trace`]. The model runs in
    /// zero simulated cycles, so step index + 1 stands in for the cycle.
    fn trace_events(&self, labels: &[Label]) -> Vec<(Cycle, SemEvent)> {
        if self.arch != ArchClass::CentralBuffer {
            return Vec::new();
        }
        let mut events = Vec::new();
        let mut state = self.initial();
        for (i, &label) in labels.iter().enumerate() {
            let cycle = (i + 1) as Cycle;
            match label {
                Label::Admit(v) => {
                    let visit = &self.plan.visits[v];
                    let need = usize::from(self.len);
                    let (cq, effect) = cq_step(
                        &state.cq[visit.sw],
                        CqEvent::Reserve {
                            input: visit.in_port,
                            need,
                            descending: visit.descending,
                        },
                    );
                    events.push((
                        cycle,
                        SemEvent::CqReserve {
                            sw: visit.sw as u32,
                            input: visit.in_port,
                            need,
                            descending: visit.descending,
                            granted: effect == CqEffect::Granted,
                            free_after: cq.free(),
                        },
                    ));
                }
                Label::Advance(v, b) => {
                    let sw = self.plan.visits[v].sw;
                    if let VState::StoredCb { reads } = &state.visits[v] {
                        let mut reads = reads.clone();
                        let old_min = *reads.iter().min().expect("branch");
                        reads[b] += 1;
                        let new_min = *reads.iter().min().expect("branch");
                        let mut cq = state.cq[sw].clone();
                        for _ in old_min..new_min {
                            let (c2, _) = cq_step(&cq, CqEvent::Release);
                            cq = c2;
                            events.push((
                                cycle,
                                SemEvent::CqRelease {
                                    sw: sw as u32,
                                    free_after: cq.free(),
                                },
                            ));
                        }
                    }
                }
                _ => {}
            }
            let Some(next) = self.apply_label(&state, label) else {
                debug_assert!(false, "counterexample step {} not enabled", i + 1);
                break;
            };
            state = next;
        }
        events
    }

    fn violation(&self, kind: &str, detail: String, labels: Vec<Label>) -> Box<Violation> {
        let events = self.trace_events(&labels);
        Box::new(Violation {
            scenario: self.scenario.to_string(),
            kind: kind.to_string(),
            detail,
            trace: labels
                .into_iter()
                .map(|l| TraceStep {
                    label: self.label_text(l),
                    op: l.op(),
                })
                .collect(),
            events,
        })
    }

    /// Canonical dedup key of a state: its symmetry-canonical byte
    /// encoding when reduction is on, its plain (injective) encoding
    /// otherwise — so the oracle path keys on exact state identity.
    fn canon_key(&self, state: &MState) -> Vec<u8> {
        match self.sym {
            Some(sym) => sym.canonical_key(self.plan, state),
            None => symmetry::encode_state(state),
        }
    }

    /// Invariant check + ample-set filtered successors of one state.
    fn expand_state(&self, state: &MState) -> Expanded {
        let invariant = self.check_invariants(state);
        let mut succs = self.successors(state);
        let mut skipped = 0;
        if self.por {
            // Ample rule: if any enabled transition belongs to a worm
            // whose switch footprint is disjoint from every other worm's,
            // explore only the lowest such worm here — its transitions
            // commute with everything else and strictly increase its
            // progress measure, so the deferred interleavings reach the
            // same terminal states.
            let ample = succs
                .iter()
                .map(|(l, _)| self.plan.visits[l.visit()].worm)
                .filter(|&w| self.safe[w])
                .min();
            if let Some(w) = ample {
                let before = succs.len();
                succs.retain(|(l, _)| self.plan.visits[l.visit()].worm == w);
                skipped = before - succs.len();
            }
        }
        let succs = succs
            .into_iter()
            .map(|(l, s)| {
                let key = self.canon_key(&s);
                (l, s, key)
            })
            .collect();
        Expanded {
            invariant,
            succs,
            skipped,
        }
    }

    /// Expands one BFS level, striping it across `jobs` scoped workers.
    /// Results come back in level order, so the sequential merge — and
    /// with it state numbering, violation selection, and stats — is
    /// independent of worker interleaving.
    fn expand_level(&self, states: &[MState], level: &[usize]) -> Vec<Expanded> {
        if self.jobs <= 1 || level.len() < self.jobs * 2 {
            return level
                .iter()
                .map(|&id| self.expand_state(&states[id]))
                .collect();
        }
        let chunk = level.len().div_ceil(self.jobs);
        let mut stripes: Vec<Vec<Expanded>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = level
                .chunks(chunk)
                .map(|stripe| {
                    scope.spawn(move || {
                        stripe
                            .iter()
                            .map(|&id| self.expand_state(&states[id]))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            stripes = handles
                .into_iter()
                .map(|h| h.join().expect("model-check worker panicked"))
                .collect();
        });
        stripes.into_iter().flatten().collect()
    }

    fn explore(&self) -> Result<ScenarioStats, Box<Violation>> {
        let initial = self.initial();
        let mut ids: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut states: Vec<MState> = vec![initial.clone()];
        let mut parents: Vec<Option<(usize, Label)>> = vec![None];
        let mut adj: Vec<Vec<usize>> = Vec::new();
        ids.insert(self.canon_key(&initial), 0);
        let mut level: Vec<usize> = vec![0];
        let mut stats = ScenarioStats::default();

        let trace_to = |parents: &[Option<(usize, Label)>], mut id: usize| {
            let mut labels = Vec::new();
            while let Some((p, label)) = parents[id] {
                labels.push(label);
                id = p;
            }
            labels.reverse();
            labels
        };

        while !level.is_empty() {
            let expanded = self.expand_level(&states, &level);
            let mut next_level = Vec::new();
            for (exp, &id) in expanded.iter().zip(level.iter()) {
                if let Some(detail) = &exp.invariant {
                    return Err(self.violation(
                        "invariant",
                        detail.clone(),
                        trace_to(&parents, id),
                    ));
                }
                if exp.succs.is_empty() && !self.all_done(&states[id]) {
                    let undelivered: Vec<String> = states[id]
                        .visits
                        .iter()
                        .enumerate()
                        .filter(|(_, vs)| **vs != VState::Done)
                        .map(|(v, _)| {
                            let visit = &self.plan.visits[v];
                            format!("worm {} at s{}", visit.worm, visit.sw)
                        })
                        .collect();
                    return Err(self.violation(
                        "deadlock",
                        format!(
                            "no transition enabled but packets are undelivered \
                             ({}): an accepted packet can no longer be completely \
                             buffered",
                            undelivered.join(", ")
                        ),
                        trace_to(&parents, id),
                    ));
                }
                stats.ample_skips += exp.skipped;
                let mut edges = Vec::with_capacity(exp.succs.len());
                for (label, next, key) in &exp.succs {
                    stats.transitions += 1;
                    let next_id = match ids.get(key) {
                        Some(&n) => {
                            if states[n] != *next {
                                stats.orbit_hits += 1;
                            }
                            n
                        }
                        None => {
                            let n = states.len();
                            if n >= self.max_states {
                                return Err(self.violation(
                                    "state-bound",
                                    format!(
                                        "exploration exceeded the {}-state bound; \
                                         raise ModelBounds::max_states",
                                        self.max_states
                                    ),
                                    Vec::new(),
                                ));
                            }
                            states.push(next.clone());
                            ids.insert(key.clone(), n);
                            parents.push(Some((id, *label)));
                            next_level.push(n);
                            n
                        }
                    };
                    edges.push(next_id);
                }
                adj.push(edges);
                debug_assert_eq!(adj.len() - 1, id, "levels merge in id order");
            }
            level = next_level;
        }

        // Buffered-eventually liveness: every terminal SCC must be the
        // all-delivered quiescent state. (Deadlocks are caught above; this
        // rules out livelocks — cycles no path escapes.) Every transition
        // strictly increases a bounded progress measure, so with
        // reductions on the quotient graph is still a DAG and this pass is
        // a defensive re-check rather than the primary argument.
        let sccs = crate::scc::tarjan_sccs(states.len(), &adj);
        for component in &sccs {
            let escapes = component
                .iter()
                .any(|&s| adj[s].iter().any(|t| !component.contains(t)));
            if escapes {
                continue;
            }
            let bad = component.iter().find(|&&s| !self.all_done(&states[s]));
            if let Some(&s) = bad {
                return Err(self.violation(
                    "livelock",
                    format!(
                        "terminal SCC of {} state(s) with undelivered packets: \
                         the fabric cycles without making progress",
                        component.len()
                    ),
                    trace_to(&parents, s),
                ));
            }
        }

        stats.states = states.len();
        Ok(stats)
    }
}

/// Property-test probes over the checker's internals, exposed for the
/// `proptests` integration suite. Not part of the public API.
#[doc(hidden)]
pub mod testkit {
    use super::*;
    use netsim::rng::SimRng;

    fn probe_ctx<'a>(plan: &'a Plan, arch: ArchClass, scenario: &'a str) -> Ctx<'a> {
        Ctx {
            plan,
            arch,
            sync: false,
            len: 2,
            cq_chunks: 4,
            cq_reserve: 2,
            max_states: 200_000,
            scenario,
            por: false,
            jobs: 1,
            safe: safe_worms(plan),
            sym: None,
        }
    }

    fn probe_scenarios() -> Vec<Scenario> {
        let mut v = scenarios(4);
        v.push(Scenario {
            name: "star-3-leaf-local",
            topo: star_of_leaves(3),
            n_switches: 4,
            worms: star_worms(3),
        });
        v
    }

    /// Asserts, along a random walk of every symmetric scenario, that the
    /// canonical key is constant on orbits: a random permutation of a
    /// reachable state canonicalizes to the same key as the state itself.
    /// Returns the number of states checked.
    pub fn canonical_quotient_probe(arch: ArchClass, seed: u64) -> usize {
        let mut rng = SimRng::new(seed);
        let mut checked = 0;
        for scenario in &probe_scenarios() {
            let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
            let sym = symmetry::build(&plan);
            if sym.is_trivial() {
                continue;
            }
            let ctx = probe_ctx(&plan, arch, scenario.name);
            let mut state = ctx.initial();
            for _ in 0..40 {
                let perm = sym.random_element(&mut rng);
                let permuted = symmetry::apply(&plan, &perm, &state);
                assert_eq!(
                    sym.canonical_key(&plan, &permuted),
                    sym.canonical_key(&plan, &state),
                    "canonical key must be constant on the orbit \
                     (scenario {}, arch {arch:?})",
                    scenario.name
                );
                checked += 1;
                let succs = ctx.successors(&state);
                if succs.is_empty() {
                    break;
                }
                let pick = rng.below(succs.len());
                state = succs.into_iter().nth(pick).expect("picked").1;
            }
        }
        assert!(checked > 0, "at least one scenario must be symmetric");
        checked
    }

    /// Asserts, along random walks, the ample-set premise: two enabled
    /// transitions of different worms, at least one of which is
    /// switch-disjoint from every other worm, commute — both orders stay
    /// enabled and land in the same state. Returns the number of pairs
    /// checked.
    pub fn commutation_probe(arch: ArchClass, seed: u64) -> usize {
        let mut rng = SimRng::new(seed ^ 0x00C0_FFEE);
        let mut checked = 0;
        for scenario in &probe_scenarios() {
            let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
            let ctx = probe_ctx(&plan, arch, scenario.name);
            let safe = &ctx.safe;
            let mut state = ctx.initial();
            for _ in 0..60 {
                let succs = ctx.successors(&state);
                if succs.is_empty() {
                    break;
                }
                for (i, (la, sa)) in succs.iter().enumerate() {
                    for (lb, sb) in succs.iter().skip(i + 1) {
                        let wa = plan.visits[la.visit()].worm;
                        let wb = plan.visits[lb.visit()].worm;
                        if wa == wb || (!safe[wa] && !safe[wb]) {
                            continue;
                        }
                        let ab = ctx.apply_label(sa, *lb).unwrap_or_else(|| {
                            panic!(
                                "independent step must stay enabled ({scenario:?})",
                                scenario = scenario.name
                            )
                        });
                        let ba = ctx.apply_label(sb, *la).unwrap_or_else(|| {
                            panic!(
                                "independent step must stay enabled ({scenario:?})",
                                scenario = scenario.name
                            )
                        });
                        assert_eq!(ab, ba, "independent steps must commute");
                        checked += 1;
                    }
                }
                let pick = rng.below(succs.len());
                state = succs.into_iter().nth(pick).expect("picked").1;
            }
        }
        assert!(checked > 0, "some scenario must have independent steps");
        checked
    }

    /// A random 1–3-leaf tree fabric with 1–3 random worms.
    fn random_fabric(rng: &mut SimRng) -> Scenario {
        let leaves = 1 + rng.below(3);
        let per_leaf: Vec<usize> = (0..leaves)
            .map(|i| if i == 0 { 2 } else { 1 + rng.below(2) })
            .collect();
        let n_hosts: usize = per_leaf.iter().sum();
        let mut b = TopologyBuilder::new(n_hosts);
        let root = b.add_switch(leaves, 0);
        let mut next_host = 0u32;
        for (i, &nh) in per_leaf.iter().enumerate() {
            let leaf = b.add_switch(nh + 1, 1);
            for p in 0..nh {
                b.attach_host(NodeId(next_host), leaf, p);
                next_host += 1;
            }
            b.connect(leaf, nh, root, i);
        }
        let all: Vec<u32> = (0..next_host).collect();
        let n_worms = 1 + rng.below(3);
        let mut worms = Vec::new();
        for _ in 0..n_worms {
            let src = all[rng.below(all.len())];
            let others: Vec<u32> = all.iter().copied().filter(|&h| h != src).collect();
            let kind = if others.len() == 1 || rng.chance(0.5) {
                WormKind::Unicast(NodeId(others[rng.below(others.len())]))
            } else {
                let mut dests = others.clone();
                rng.shuffle(&mut dests);
                let take = 2 + rng.below(dests.len() - 1);
                mcast(n_hosts, &dests[..take.min(dests.len())])
            };
            worms.push((NodeId(src), kind));
        }
        Scenario {
            name: "random-fabric",
            topo: b.build(),
            n_switches: leaves + 1,
            worms,
        }
    }

    /// Generates a random fabric + worm set, then asserts (per
    /// architecture) that the reduced checker agrees with the unreduced
    /// oracle on it, and that canonicalization is a sound quotient along
    /// a random walk. Returns the number of checks performed.
    pub fn random_scenario_probe(seed: u64) -> usize {
        let mut rng = SimRng::new(seed ^ 0x5CE0_0BE5);
        let scenario = random_fabric(&mut rng);
        let bounds = ModelBounds {
            max_switches: 8,
            max_states: 200_000,
            ..ModelBounds::default()
        };
        let mut checked = 0;
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let plan =
                build_plan(&scenario, ReplicatePolicy::ReturnOnly, 2).expect("tree fabrics route");
            let oracle = run_plan(
                scenario.name,
                &plan,
                arch,
                false,
                &bounds,
                &ModelOptions::oracle(),
                true,
            );
            let reduced = run_plan(
                scenario.name,
                &plan,
                arch,
                false,
                &bounds,
                &ModelOptions::default(),
                true,
            );
            match (&oracle, &reduced) {
                (Ok(o), Ok(r)) => {
                    assert!(
                        r.states <= o.states,
                        "reduction must never explore more states ({arch:?})"
                    );
                }
                (Err(o), Err(r)) => assert_eq!(o.kind, r.kind, "verdicts must agree ({arch:?})"),
                (o, r) => panic!(
                    "oracle and reduced checker disagree ({arch:?}): {:?} vs {:?}",
                    o.as_ref().map(|s| s.states).map_err(|v| &v.kind),
                    r.as_ref().map(|s| s.states).map_err(|v| &v.kind),
                ),
            }
            checked += 1;
            let sym = symmetry::build(&plan);
            if sym.is_trivial() {
                continue;
            }
            let ctx = probe_ctx(&plan, arch, scenario.name);
            let mut state = ctx.initial();
            for _ in 0..20 {
                let perm = sym.random_element(&mut rng);
                let permuted = symmetry::apply(&plan, &perm, &state);
                assert_eq!(
                    sym.canonical_key(&plan, &permuted),
                    sym.canonical_key(&plan, &state),
                    "random fabric: canonical key must be constant on the orbit"
                );
                checked += 1;
                let succs = ctx.successors(&state);
                if succs.is_empty() {
                    break;
                }
                let pick = rng.below(succs.len());
                state = succs.into_iter().nth(pick).expect("picked").1;
            }
        }
        checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_follow_the_real_routing_tables() {
        let scenario = &scenarios(2)[1]; // pair-up-down
        let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
        // Worm 0 (h0 -> {2,3}): ascends s0 then replicates at s1.
        let entry = plan.entries[0];
        assert_eq!(plan.visits[entry].sw, 0);
        assert!(!plan.visits[entry].descending);
        assert_eq!(plan.visits[entry].branches.len(), 1);
        let Target::Visit(root) = plan.visits[entry].branches[0].target else {
            panic!("worm 0 must continue to the root");
        };
        assert_eq!(plan.visits[root].sw, 1);
        assert_eq!(plan.visits[root].branches.len(), 2);
        assert!(plan.visits[root]
            .branches
            .iter()
            .all(|b| matches!(b.target, Target::Host(_))));
        // Worm 1 (h2 -> {0,1}) descends into s0: the revisit is flagged
        // descending and draws from the reserve.
        let w1root = plan.entries[1];
        let Target::Visit(leaf) = plan.visits[w1root].branches[0].target else {
            panic!("worm 1 must descend to the leaf");
        };
        assert!(plan.visits[leaf].descending);
    }

    #[test]
    fn return_only_revisits_the_source_switch() {
        let scenario = &scenarios(2)[2]; // pair-replicate-revisit
        let plan = build_plan(scenario, ReplicatePolicy::ReturnOnly, 2).expect("plan");
        // h0 -> {1,2,3} under ReturnOnly: s0 (ascending) -> s1 -> s0
        // (descending) — three visits, two of them at s0.
        let w0: Vec<_> = plan.visits.iter().filter(|v| v.worm == 0).collect();
        assert_eq!(w0.len(), 3);
        assert_eq!(w0.iter().filter(|v| v.sw == 0).count(), 2);
        assert_eq!(w0.iter().filter(|v| v.descending).count(), 1);
    }

    #[test]
    fn central_buffer_verifies_at_the_two_switch_bound() {
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        let CheckOutcome::Verified(stats) = out else {
            panic!("central buffer must verify: {out:?}");
        };
        assert_eq!(stats.scenarios, 3);
        assert!(stats.states > 100, "exploration too shallow: {stats:?}");
    }

    #[test]
    fn input_buffered_async_verifies() {
        let out = check_model(
            ArchClass::InputBuffered,
            false,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        assert!(out.is_verified(), "{out:?}");
    }

    #[test]
    fn sync_replication_deadlocks_with_minimal_counterexample() {
        let out = check_model(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("lock-step replication must deadlock");
        };
        assert_eq!(v.kind, "deadlock");
        assert_eq!(v.scenario, "single-crossed-mcast");
        // Minimal trace: inject both worms, then the two crossed grants.
        assert_eq!(v.trace.len(), 4, "{v}");
        assert!(
            v.trace
                .iter()
                .filter(|s| s.label.starts_with("grant"))
                .count()
                == 2,
            "{v}"
        );
    }

    #[test]
    fn sync_flag_is_ignored_for_the_central_buffer() {
        let out = check_model(
            ArchClass::CentralBuffer,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        assert!(out.is_verified(), "{out:?}");
    }

    #[test]
    fn forward_and_return_policy_also_verifies() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let out = check_model(
                arch,
                false,
                ReplicatePolicy::ForwardAndReturn,
                &ModelBounds::default(),
            );
            assert!(out.is_verified(), "{arch:?}: {out:?}");
        }
    }

    #[test]
    fn quad_fabric_verifies_when_bounds_allow() {
        let bounds = ModelBounds {
            max_switches: 4,
            ..ModelBounds::default()
        };
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Verified(stats) = out else {
            panic!("quad fabric must verify");
        };
        assert_eq!(stats.scenarios, 4);
    }

    #[test]
    fn state_bound_is_reported_not_overrun() {
        let bounds = ModelBounds {
            max_states: 10,
            ..ModelBounds::default()
        };
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("a 10-state bound cannot cover the space");
        };
        assert_eq!(v.kind, "state-bound");
    }

    // --- PR 8: reduction, parallelism, composition -------------------

    fn star_plan(leaves: usize, worm_chunks: usize) -> Plan {
        let scenario = Scenario {
            name: "star-test",
            topo: star_of_leaves(leaves),
            n_switches: leaves + 1,
            worms: star_worms(leaves),
        };
        build_plan(&scenario, ReplicatePolicy::ReturnOnly, worm_chunks).expect("plan")
    }

    #[test]
    fn reduced_checker_agrees_with_the_oracle_on_defaults() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            for sync in [false, true] {
                let oracle = check_model(
                    arch,
                    sync,
                    ReplicatePolicy::ReturnOnly,
                    &ModelBounds::default(),
                );
                let reduced = check_model_opts(
                    arch,
                    sync,
                    ReplicatePolicy::ReturnOnly,
                    &ModelBounds::default(),
                    &ModelOptions::default(),
                );
                assert_eq!(
                    oracle.is_verified(),
                    reduced.is_verified(),
                    "{arch:?} sync={sync}: oracle {oracle:?} vs reduced {reduced:?}"
                );
                if let (CheckOutcome::Violated(o), CheckOutcome::Violated(r)) = (&oracle, &reduced)
                {
                    assert_eq!(o.kind, r.kind);
                    assert_eq!(o.scenario, r.scenario);
                }
            }
        }
    }

    #[test]
    fn verdicts_are_byte_identical_across_worker_counts() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            for sync in [false, true] {
                let runs: Vec<String> = [1usize, 2, 4]
                    .into_iter()
                    .map(|jobs| {
                        let opts = ModelOptions {
                            jobs,
                            ..ModelOptions::default()
                        };
                        format!(
                            "{:?}",
                            check_model_opts(
                                arch,
                                sync,
                                ReplicatePolicy::ReturnOnly,
                                &ModelBounds::default(),
                                &opts,
                            )
                        )
                    })
                    .collect();
                assert_eq!(runs[0], runs[1], "{arch:?} sync={sync}: jobs 1 vs 2");
                assert_eq!(runs[0], runs[2], "{arch:?} sync={sync}: jobs 1 vs 4");
            }
        }
    }

    #[test]
    fn symmetry_and_por_reduce_the_star_fabric_at_least_10x() {
        // 7 isomorphic leaf-local worms: the oracle enumerates the full
        // product of per-worm phases; the reduced checker collapses it.
        // worm_chunks = 1 keeps the oracle affordable in debug builds.
        let plan = star_plan(7, 1);
        let bounds = ModelBounds {
            max_switches: 8,
            worm_chunks: 1,
            ..ModelBounds::default()
        };
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let oracle = run_plan(
                "star",
                &plan,
                arch,
                false,
                &bounds,
                &ModelOptions::oracle(),
                true,
            )
            .expect("oracle verifies");
            let reduced = run_plan(
                "star",
                &plan,
                arch,
                false,
                &bounds,
                &ModelOptions::default(),
                true,
            )
            .expect("reduced verifies");
            assert!(
                reduced.states * 10 <= oracle.states,
                "{arch:?}: reduced {} vs oracle {} states",
                reduced.states,
                oracle.states
            );
            assert!(reduced.orbit_hits > 0 || reduced.ample_skips > 0);
        }
    }

    #[test]
    fn oracle_state_bounds_where_the_reduced_checker_verifies() {
        // At 16 switches the joint space is ~5^15 states: the oracle must
        // hit the bound, exact+reduced and compositional must verify.
        let bounds = ModelBounds {
            max_switches: 16,
            max_states: 50_000,
            ..ModelBounds::default()
        };
        let oracle = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Violated(v) = &oracle else {
            panic!("oracle must exhaust the state bound: {oracle:?}");
        };
        assert_eq!(v.kind, "state-bound");

        let exact_reduced = check_model_opts(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
            &ModelOptions {
                mode: ModelMode::Exact,
                ..ModelOptions::default()
            },
        );
        let CheckOutcome::Verified(stats) = exact_reduced else {
            panic!("reduced exact checker must verify: {exact_reduced:?}");
        };
        assert!(
            stats.states * 10 <= bounds.max_states,
            "≥10× under the bound the oracle exhausted: {stats:?}"
        );

        let auto = check_model_opts(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
            &ModelOptions::default(),
        );
        assert!(
            auto.is_verified(),
            "auto (compositional beyond 4 switches) must verify: {auto:?}"
        );
    }

    #[test]
    fn compositional_mode_finds_the_sync_deadlock_locally() {
        let out = check_model_opts(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
            &ModelOptions {
                mode: ModelMode::Compositional,
                ..ModelOptions::default()
            },
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("compositional mode must still find the crossed-grant deadlock");
        };
        assert_eq!(v.kind, "deadlock");
        assert_eq!(v.scenario, "single-crossed-mcast@s0");
        let replayed = reexecute_violation(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
            &v,
        )
        .expect("sub-scenario trace must re-execute");
        assert_eq!(replayed, v.trace.len());
    }

    #[test]
    fn compositional_mode_verifies_the_safe_architectures() {
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let out = check_model_opts(
                arch,
                false,
                ReplicatePolicy::ReturnOnly,
                &ModelBounds::default(),
                &ModelOptions {
                    mode: ModelMode::Compositional,
                    ..ModelOptions::default()
                },
            );
            assert!(out.is_verified(), "{arch:?}: {out:?}");
        }
    }

    #[test]
    fn counterexamples_reexecute_against_the_rebuilt_model() {
        let out = check_model(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("expected the sync deadlock");
        };
        let replayed = reexecute_violation(
            ArchClass::InputBuffered,
            true,
            ReplicatePolicy::ReturnOnly,
            &ModelBounds::default(),
            &v,
        )
        .expect("trace must re-execute");
        assert_eq!(replayed, 4);
    }

    #[test]
    fn accumulator_deadlock_carries_replayable_cq_events() {
        // cq_chunks 2 / reserve 1: the ascending pool is 1 chunk, a
        // 2-chunk worm can never be admitted — its accumulator sweeps the
        // pool and starves everyone. A genuine deadlock whose trace
        // carries CqReserve events (granted=false) replayable through the
        // semantic-event machinery.
        let bounds = ModelBounds {
            cq_chunks: 2,
            cq_reserve: 1,
            ..ModelBounds::default()
        };
        let out = check_model(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
        );
        let CheckOutcome::Violated(v) = out else {
            panic!("undersized pool must deadlock");
        };
        assert_eq!(v.kind, "deadlock");
        assert!(
            v.events.iter().any(|(_, e)| matches!(
                e,
                netsim::trace::SemEvent::CqReserve { granted: false, .. }
            )),
            "trace must carry the denied reservation: {:?}",
            v.events
        );
        let replay = crate::replay::replay_model_violation(
            ArchClass::CentralBuffer,
            false,
            ReplicatePolicy::ReturnOnly,
            &bounds,
            &v,
        )
        .expect("events must replay through the pure cq machine");
        assert!(replay.cq.is_some());
        assert_eq!(replay.steps, v.trace.len());
    }

    #[test]
    fn scale_scenarios_are_gated_by_max_switches() {
        assert_eq!(scenarios(2).len(), 3);
        assert_eq!(scenarios(4).len(), 4);
        assert_eq!(scenarios(8).len(), 5);
        assert_eq!(scenarios(16).len(), 6);
    }
}
