//! Header-encoding cross-validation between `mintopo::reach` and the
//! switch decode path.
//!
//! The reach module derives an `N`-bit reachability string per output
//! port; the switch decode consumes those strings to rewrite bit-string
//! worm headers at each hop. Nothing but convention keeps the two in
//! agreement, so this lint decodes a family of representative destination
//! shapes at every switch — through
//! [`switches::verify_bitstring_roundtrip`], i.e. the *production* decode
//! path, not a re-implementation — and reports any switch/port whose
//! branch headers fail to partition the destination set.

use crate::report::ConfigReport;
use mintopo::reach::PortClass;
use mintopo::route::{ReplicatePolicy, RouteTables};
use netsim::destset::DestSet;
use netsim::ids::SwitchId;

/// Destination-set shapes exercised per switch: the widest sets the
/// switch can legally see, each down port's own reachability string, and
/// the pairwise union of neighboring down-port strings (the cross-subtree
/// shape that forces a fan-out).
///
/// A worm either resolves entirely into the down cones (widest such
/// shape: the down-union) or ascends through *one* up port — and under
/// `ReturnOnly` an ascending worm carries its whole destination set, so
/// the widest legal ascending shape is that port's reach string alone.
/// On tables from [`RouteTables::build`] every up port reaches every
/// host and the ascending shapes collapse to the full destination set;
/// on masked tables ([`RouteTables::build_masked`]) the exact reach
/// strings keep the shapes inside what the degraded routing can actually
/// cover, so legitimate coverage holes are not reported as decode
/// failures. A switch without up ports (a root, or an interior stage of
/// a unidirectional MIN) only ever sees residuals inside its down-union.
fn shapes_for(tables: &RouteTables, sw: SwitchId) -> Vec<DestSet> {
    let table = tables.table(sw);
    let down_union = table.down_union();
    let mut shapes: Vec<DestSet> = Vec::new();
    let push = |shapes: &mut Vec<DestSet>, s: DestSet| {
        if !s.is_empty() && !shapes.contains(&s) {
            shapes.push(s);
        }
    };
    push(&mut shapes, down_union.clone());
    for &u in table.up_ports() {
        push(&mut shapes, table.port(u).reach.clone());
    }
    let down_reaches: Vec<&DestSet> = (0..table.n_ports())
        .filter_map(|p| {
            let info = table.port(p);
            (info.class == PortClass::Down && !info.reach.is_empty()).then_some(&info.reach)
        })
        .collect();
    for r in &down_reaches {
        push(&mut shapes, (*r).clone());
    }
    for pair in down_reaches.windows(2) {
        push(&mut shapes, pair[0].or(pair[1]));
    }
    shapes
}

/// Round-trips every representative shape through every switch's decode
/// under `policy`, appending an error per inconsistency and counting the
/// checks in `report.stats.roundtrips`.
///
/// Shapes enter the decode through the [`switches::ReachEncoding`] seam,
/// so the same lint body serves dense strings and compressed run sets.
pub fn lint_roundtrips(tables: &RouteTables, policy: ReplicatePolicy, report: &mut ConfigReport) {
    for s in 0..tables.n_switches() {
        let sw = SwitchId::from(s);
        let table = tables.table(sw);
        for dests in shapes_for(tables, sw) {
            report.stats.roundtrips += 1;
            if let Err(e) = switches::verify_roundtrip_encoded(table, &dests, policy) {
                report.error(
                    "header-roundtrip-mismatch",
                    format!("{sw}: reach string fails to round-trip through decode: {e}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::topology::TopologyBuilder;
    use netsim::ids::NodeId;

    fn tables() -> RouteTables {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        RouteTables::build(&b.build())
    }

    #[test]
    fn consistent_tables_lint_clean_under_both_policies() {
        let t = tables();
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let mut r = ConfigReport::new();
            lint_roundtrips(&t, policy, &mut r);
            assert!(r.is_clean(), "{policy:?}: {:?}", r.diagnostics);
            assert!(r.stats.roundtrips > 0, "lint must actually check shapes");
        }
    }

    #[test]
    fn shapes_cover_full_set_and_subtrees() {
        let t = tables();
        let shapes = shapes_for(&t, SwitchId(2));
        assert!(shapes.contains(&DestSet::full(4)));
        // Root's two subtree strings and their union.
        assert!(shapes.contains(&DestSet::from_nodes(4, [0, 1].map(NodeId))));
        assert!(shapes.contains(&DestSet::from_nodes(4, [2, 3].map(NodeId))));
        // Shapes are deduplicated: the two subtree strings plus their
        // union (= the root's full down-union) make three distinct sets.
        assert!(shapes.len() >= 3);
    }
}
