//! Property tests for the header-encoding cross-validation: every reach
//! bit-string the routing layer can emit must decode losslessly through
//! the production switch decode path, across random topology shapes and
//! random destination sets.
//!
//! Driven by hand-rolled seeded case loops over [`SimRng`] streams (no
//! external property-testing crate), matching the `mintopo` and `netsim`
//! proptest suites.

use mdw_analysis::{
    analyze_fabric, certify_fabric, lint_roundtrips, Certificate, CompactTables, ConfigReport,
    RunSet,
};
use mintopo::irregular::Irregular;
use mintopo::karytree::KaryTree;
use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::topology::Topology;
use mintopo::unimin::UniMin;
use netsim::ids::{NodeId, SwitchId};
use netsim::rng::SimRng;
use switches::verify_bitstring_roundtrip;

const CASES: u64 = 24;
const POLICIES: [ReplicatePolicy; 2] = [
    ReplicatePolicy::ReturnOnly,
    ReplicatePolicy::ForwardAndReturn,
];

fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0xA11A_5EED ^ test).fork(case)
}

/// Samples tree parameters (k, n) from the small shapes the suite covers.
fn karytree_params(r: &mut SimRng) -> (usize, usize) {
    match r.below(7) {
        0 => (2, 4), // 16 hosts, 4 stages
        i => (2 + (i - 1) % 3, 2 + (i - 1) / 3),
    }
}

/// Random destination sets at random switches of random k-ary trees
/// round-trip through decode under both replication policies: the
/// resolved branches cover exactly the requested set, once each, on
/// ports the reachability strings justify. Every switch of a
/// bidirectional tree can route any set (interior switches escape
/// upward), so the probe is unconstrained.
#[test]
fn karytree_reach_strings_decode_losslessly() {
    for case in 0..CASES {
        let mut r = case_rng(1, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts();
        let tables = RouteTables::build(tree.topology());
        for _ in 0..4 {
            let sw = SwitchId::from(r.below(tree.topology().n_switches()));
            let src = NodeId(r.below(hosts) as u32);
            let size = 1 + r.below(hosts.min(17) - 1);
            let dests = r.dest_set(hosts, size, src);
            for policy in POLICIES {
                verify_bitstring_roundtrip(tables.table(sw), &dests, policy).unwrap_or_else(|e| {
                    panic!("case {case} (k={k}, n={n}, sw={sw:?}, {policy:?}): {e}")
                });
            }
        }
    }
}

/// The analyzer's own shape enumeration (`lint_roundtrips`) comes back
/// clean over random shapes of all three topology classes, and actually
/// exercised at least one probe per switch.
#[test]
fn lint_roundtrips_clean_on_random_topologies() {
    for case in 0..CASES {
        let mut r = case_rng(2, case);
        let (k, n) = karytree_params(&mut r);
        let seed = r.below(500) as u64;
        let tables = [
            RouteTables::build(KaryTree::new(k, n).topology()),
            RouteTables::build(UniMin::new(2 + (k % 3), 2 + (n % 2)).topology()),
            RouteTables::build(Irregular::new(6, 8, 12, 3, seed).topology()),
        ];
        for tables in &tables {
            for policy in POLICIES {
                let mut report = ConfigReport::new();
                lint_roundtrips(tables, policy, &mut report);
                assert!(report.is_clean(), "case {case}: {:?}", report.diagnostics);
                assert!(report.stats.roundtrips > 0, "case {case}");
            }
        }
    }
}

/// Canonicalization is a sound quotient: along random walks of every
/// symmetric model scenario, a random element of the symmetry group
/// applied to a reachable state leaves the canonical key unchanged
/// (DESIGN.md §14).
#[test]
fn model_canonicalization_is_constant_on_orbits() {
    use mdw_analysis::checks::ArchClass;
    for case in 0..CASES {
        let mut r = case_rng(4, case);
        let seed = r.below(1 << 30) as u64;
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let checked = mdw_analysis::model::testkit::canonical_quotient_probe(arch, seed);
            assert!(checked > 0, "case {case} ({arch:?})");
        }
    }
}

/// The ample-set premise of the partial-order reduction: enabled
/// transitions of switch-disjoint worms commute — both orders stay
/// enabled and reach the same state — along random walks of the model
/// scenarios.
#[test]
fn model_independent_steps_commute() {
    use mdw_analysis::checks::ArchClass;
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let seed = r.below(1 << 30) as u64;
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let checked = mdw_analysis::model::testkit::commutation_probe(arch, seed);
            assert!(checked > 0, "case {case} ({arch:?})");
        }
    }
}

/// Randomly generated tree fabrics + worm sets: the reduced checker
/// agrees with the unreduced oracle, and canonicalization stays a sound
/// quotient on the random plan's group.
#[test]
fn random_scenarios_agree_between_oracle_and_reduced_checker() {
    for case in 0..CASES {
        let mut r = case_rng(6, case);
        let seed = r.below(1 << 30) as u64;
        let checked = mdw_analysis::model::testkit::random_scenario_probe(seed);
        assert!(checked > 0, "case {case}");
    }
}

/// Run-length compression of dense destination strings is exact: every
/// random set round-trips `dense → runs → dense` bit-identically, with
/// universe, cardinality, and membership preserved — and never needs
/// more runs than members.
#[test]
fn runset_compression_roundtrips_dense_sets_exactly() {
    for case in 0..CASES {
        let mut r = case_rng(7, case);
        let hosts = 2 + r.below(400);
        let src = NodeId(r.below(hosts) as u32);
        let size = 1 + r.below(hosts - 1);
        let dense = r.dest_set(hosts, size, src);
        let runs = RunSet::from_dense(&dense);
        assert_eq!(runs.to_dense(), dense, "case {case} ({hosts} hosts)");
        assert_eq!(runs.universe(), hosts, "case {case}");
        assert_eq!(runs.count(), dense.count(), "case {case}");
        assert!(runs.n_runs() <= runs.count(), "case {case}");
        for h in 0..hosts {
            let node = NodeId(h as u32);
            assert_eq!(
                runs.contains(node),
                dense.contains(node),
                "case {case}, host {h}"
            );
        }
    }
    // The degenerate shapes the sampler can't hit.
    for hosts in [1usize, 2, 64, 65] {
        let empty = RunSet::empty(hosts);
        assert_eq!(empty.to_dense().count(), 0);
        let full = RunSet::full(hosts);
        assert_eq!(full.to_dense().count(), hosts);
        assert_eq!(full.n_runs(), 1, "consecutive bits coalesce to one run");
    }
}

/// Compressed routing tables are an exact mirror of the dense ones on
/// random shapes of all three topology classes: every port's run-encoded
/// reach set expands back to the dense bit-string, classes and port
/// order preserved, and deriving compact tables straight from the
/// topology equals compressing the dense build.
#[test]
fn compact_tables_mirror_dense_tables_exactly() {
    fn check(topo: &Topology, case: u64) {
        let dense = RouteTables::build(topo);
        let compact = CompactTables::from_dense(&dense);
        assert_eq!(
            compact,
            CompactTables::build(topo),
            "case {case}: direct derivation must equal dense compression"
        );
        assert_eq!(compact.n_hosts(), dense.n_hosts());
        for s in 0..dense.n_switches() {
            let sw = SwitchId::from(s);
            let (d, c) = (dense.table(sw), compact.table(sw));
            assert_eq!(d.n_ports(), c.n_ports(), "case {case}, switch {s}");
            for p in 0..d.n_ports() {
                let (dp, cp) = (d.port(p), c.port(p));
                assert_eq!(dp.class, cp.class, "case {case}, switch {s} port {p}");
                assert_eq!(
                    cp.reach.to_dense(),
                    dp.reach,
                    "case {case}, switch {s} port {p}"
                );
            }
        }
    }
    for case in 0..CASES {
        let mut r = case_rng(8, case);
        let (k, n) = karytree_params(&mut r);
        let seed = r.below(500) as u64;
        check(KaryTree::new(k, n).topology(), case);
        check(UniMin::new(2 + (k % 3), 2 + (n % 2)).topology(), case);
        check(Irregular::new(6, 8, 12, 3, seed).topology(), case);
    }
}

/// The O(routes) certificate checker and the explicit CDG analyzer agree
/// on random shapes of all three topology classes: both accept the
/// honest up*/down* tables, and the certificate's channel/dependency
/// counts equal the explicit graph's node/edge counts (the checker
/// visits exactly the edges the explicit pass enumerates).
#[test]
fn certificate_checker_agrees_with_the_explicit_cdg() {
    fn check(topo: &Topology, cert: &Certificate, case: u64) {
        let tables = RouteTables::build(topo);
        let mut explicit = ConfigReport::new();
        analyze_fabric(topo, &tables, ReplicatePolicy::ReturnOnly, &mut explicit);
        let mut certified = ConfigReport::new();
        certify_fabric(
            cert,
            topo,
            &CompactTables::from_dense(&tables),
            &mut certified,
        );
        assert!(
            !explicit.has_errors() && !certified.has_errors(),
            "case {case}: {:?} / {:?}",
            explicit.diagnostics,
            certified.diagnostics
        );
        assert_eq!(
            (explicit.stats.channels, explicit.stats.dependencies),
            (certified.stats.channels, certified.stats.dependencies),
            "case {case}: both paths must count the same fabric"
        );
    }
    for case in 0..CASES {
        let mut r = case_rng(9, case);
        let (k, n) = karytree_params(&mut r);
        let seed = r.below(500) as u64;
        // The k-ary family gets the closed-form stage rule; arbitrary
        // shapes get the explicit (depth, id) order.
        let tree = KaryTree::new(k, n);
        check(tree.topology(), &Certificate::for_karytree(&tree), case);
        let uni = UniMin::new(2 + (k % 3), 2 + (n % 2));
        check(
            uni.topology(),
            &Certificate::for_topology(uni.topology()),
            case,
        );
        let irr = Irregular::new(6, 8, 12, 3, seed);
        check(
            irr.topology(),
            &Certificate::for_topology(irr.topology()),
            case,
        );
    }
}

/// The full fabric pass — CDG + SCC + round-trips — finds no cycle in
/// any random k-ary tree: up*/down* LCA routing is provably
/// deadlock-free, and the analyzer must agree on every instance.
#[test]
fn random_karytree_cdgs_are_acyclic() {
    for case in 0..CASES {
        let mut r = case_rng(3, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let tables = RouteTables::build(tree.topology());
        for policy in POLICIES {
            let mut report = ConfigReport::new();
            analyze_fabric(tree.topology(), &tables, policy, &mut report);
            assert!(
                report.is_clean(),
                "case {case} (k={k}, n={n}): {:?}",
                report.diagnostics
            );
            assert!(report.cycles.is_empty(), "case {case}");
            assert_eq!(
                report.stats.sccs, report.stats.channels,
                "case {case}: acyclic graphs have only singleton SCCs"
            );
        }
    }
}
