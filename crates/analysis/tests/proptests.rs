//! Property tests for the header-encoding cross-validation: every reach
//! bit-string the routing layer can emit must decode losslessly through
//! the production switch decode path, across random topology shapes and
//! random destination sets.
//!
//! Driven by hand-rolled seeded case loops over [`SimRng`] streams (no
//! external property-testing crate), matching the `mintopo` and `netsim`
//! proptest suites.

use mdw_analysis::{analyze_fabric, lint_roundtrips, ConfigReport};
use mintopo::irregular::Irregular;
use mintopo::karytree::KaryTree;
use mintopo::route::{ReplicatePolicy, RouteTables};
use mintopo::unimin::UniMin;
use netsim::ids::{NodeId, SwitchId};
use netsim::rng::SimRng;
use switches::verify_bitstring_roundtrip;

const CASES: u64 = 24;
const POLICIES: [ReplicatePolicy; 2] = [
    ReplicatePolicy::ReturnOnly,
    ReplicatePolicy::ForwardAndReturn,
];

fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0xA11A_5EED ^ test).fork(case)
}

/// Samples tree parameters (k, n) from the small shapes the suite covers.
fn karytree_params(r: &mut SimRng) -> (usize, usize) {
    match r.below(7) {
        0 => (2, 4), // 16 hosts, 4 stages
        i => (2 + (i - 1) % 3, 2 + (i - 1) / 3),
    }
}

/// Random destination sets at random switches of random k-ary trees
/// round-trip through decode under both replication policies: the
/// resolved branches cover exactly the requested set, once each, on
/// ports the reachability strings justify. Every switch of a
/// bidirectional tree can route any set (interior switches escape
/// upward), so the probe is unconstrained.
#[test]
fn karytree_reach_strings_decode_losslessly() {
    for case in 0..CASES {
        let mut r = case_rng(1, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts();
        let tables = RouteTables::build(tree.topology());
        for _ in 0..4 {
            let sw = SwitchId::from(r.below(tree.topology().n_switches()));
            let src = NodeId(r.below(hosts) as u32);
            let size = 1 + r.below(hosts.min(17) - 1);
            let dests = r.dest_set(hosts, size, src);
            for policy in POLICIES {
                verify_bitstring_roundtrip(tables.table(sw), &dests, policy).unwrap_or_else(|e| {
                    panic!("case {case} (k={k}, n={n}, sw={sw:?}, {policy:?}): {e}")
                });
            }
        }
    }
}

/// The analyzer's own shape enumeration (`lint_roundtrips`) comes back
/// clean over random shapes of all three topology classes, and actually
/// exercised at least one probe per switch.
#[test]
fn lint_roundtrips_clean_on_random_topologies() {
    for case in 0..CASES {
        let mut r = case_rng(2, case);
        let (k, n) = karytree_params(&mut r);
        let seed = r.below(500) as u64;
        let tables = [
            RouteTables::build(KaryTree::new(k, n).topology()),
            RouteTables::build(UniMin::new(2 + (k % 3), 2 + (n % 2)).topology()),
            RouteTables::build(Irregular::new(6, 8, 12, 3, seed).topology()),
        ];
        for tables in &tables {
            for policy in POLICIES {
                let mut report = ConfigReport::new();
                lint_roundtrips(tables, policy, &mut report);
                assert!(report.is_clean(), "case {case}: {:?}", report.diagnostics);
                assert!(report.stats.roundtrips > 0, "case {case}");
            }
        }
    }
}

/// Canonicalization is a sound quotient: along random walks of every
/// symmetric model scenario, a random element of the symmetry group
/// applied to a reachable state leaves the canonical key unchanged
/// (DESIGN.md §14).
#[test]
fn model_canonicalization_is_constant_on_orbits() {
    use mdw_analysis::checks::ArchClass;
    for case in 0..CASES {
        let mut r = case_rng(4, case);
        let seed = r.below(1 << 30) as u64;
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let checked = mdw_analysis::model::testkit::canonical_quotient_probe(arch, seed);
            assert!(checked > 0, "case {case} ({arch:?})");
        }
    }
}

/// The ample-set premise of the partial-order reduction: enabled
/// transitions of switch-disjoint worms commute — both orders stay
/// enabled and reach the same state — along random walks of the model
/// scenarios.
#[test]
fn model_independent_steps_commute() {
    use mdw_analysis::checks::ArchClass;
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let seed = r.below(1 << 30) as u64;
        for arch in [ArchClass::CentralBuffer, ArchClass::InputBuffered] {
            let checked = mdw_analysis::model::testkit::commutation_probe(arch, seed);
            assert!(checked > 0, "case {case} ({arch:?})");
        }
    }
}

/// Randomly generated tree fabrics + worm sets: the reduced checker
/// agrees with the unreduced oracle, and canonicalization stays a sound
/// quotient on the random plan's group.
#[test]
fn random_scenarios_agree_between_oracle_and_reduced_checker() {
    for case in 0..CASES {
        let mut r = case_rng(6, case);
        let seed = r.below(1 << 30) as u64;
        let checked = mdw_analysis::model::testkit::random_scenario_probe(seed);
        assert!(checked > 0, "case {case}");
    }
}

/// The full fabric pass — CDG + SCC + round-trips — finds no cycle in
/// any random k-ary tree: up*/down* LCA routing is provably
/// deadlock-free, and the analyzer must agree on every instance.
#[test]
fn random_karytree_cdgs_are_acyclic() {
    for case in 0..CASES {
        let mut r = case_rng(3, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let tables = RouteTables::build(tree.topology());
        for policy in POLICIES {
            let mut report = ConfigReport::new();
            analyze_fabric(tree.topology(), &tables, policy, &mut report);
            assert!(
                report.is_clean(),
                "case {case} (k={k}, n={n}): {:?}",
                report.diagnostics
            );
            assert!(report.cycles.is_empty(), "case {case}");
            assert_eq!(
                report.stats.sccs, report.stats.channels,
                "case {case}: acyclic graphs have only singleton SCCs"
            );
        }
    }
}
