//! Minimal in-tree stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the subset of criterion's API that the `mdw-bench` benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing is wall-clock over a fixed warmup +
//! sample loop — good enough for relative comparisons and for keeping the
//! benches compiling; swap the real crate back in for publication-grade
//! statistics.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units of work per iteration, reported as a rate alongside the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/param` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs the closure under timing; passed to `bench_function` callbacks.
pub struct Bencher {
    samples: usize,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine` over warmup + `samples` iterations, recording the
    /// mean per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warmup pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    crit: &'a mut Criterion,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares work-per-iteration so a rate is printed with the time.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: Display,
    {
        let mut b = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.last_mean);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<F, I, T>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &T),
        I: Display,
        T: ?Sized,
    {
        let mut b = Bencher {
            samples: self.samples,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.last_mean);
        self
    }

    fn report(&mut self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{id}: {mean:?}/iter{rate}", self.name);
        self.crit.benches_run += 1;
    }

    /// Ends the group (no-op; accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level bench driver, a stand-in for `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            crit: self,
            throughput: None,
            samples: 10,
        }
    }
}

/// Declares a bench group function list, like `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, like `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn stub_api_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
        assert_eq!(c.benches_run, 2);
    }
}
