//! The host / network-interface model.
//!
//! Each host is a [`netsim::engine::Component`] with one injection and one
//! ejection port. It polls a [`TrafficSource`] for messages, charges
//! software send/receive overheads on a serialized "CPU", segments messages
//! into packets that respect the network's maximum packet size, injects
//! flits at link rate, reassembles arriving packets into messages, and
//! reports deliveries to the shared [`DeliveryTracker`].
//!
//! The multicast scheme is chosen per host ([`McastScheme`]):
//!
//! * **HardwareBitString** — one multidestination worm per packet segment,
//!   replicated by the switches (the paper's preferred single-phase
//!   scheme);
//! * **HardwareMultiport** — several multiport-encoded worms planned by
//!   [`mintopo::multiport::plan_multiport`], each charged its own send
//!   overhead;
//! * **SoftwareBinomial** — the U-Min software baseline: `ceil(log2(d+1))`
//!   phases of unicast hop messages, forwarded (and re-charged overheads)
//!   at every intermediate destination.

use crate::degrade::FabricMode;
use crate::recovery::{RecoveryConfig, RecoveryShared};
use crate::swmcast::{SwContext, SwCoordinator};
use crate::traffic::{DeliveryHook, MessageSpec, TrafficSource};
use crate::umin;
use mintopo::karytree::KaryTree;
use mintopo::multiport::plan_multiport;
use netsim::destset::DestSet;
use netsim::engine::{Component, PortIo};
use netsim::flit::Flit;
use netsim::header::RoutingHeader;
use netsim::ids::{MessageId, NodeId, PacketId};
use netsim::message::{Message, MessageKind};
use netsim::packet::{packetize, Packet, PacketBuilder, PacketIdGen};
use netsim::stats::DeliveryTracker;
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

/// Monotonic generator of unique [`MessageId`]s, shared by all hosts.
#[derive(Debug, Default, Clone)]
pub struct MessageIdGen(u64);

impl MessageIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next unused id.
    pub fn next_id(&mut self) -> MessageId {
        let id = MessageId(self.0);
        self.0 += 1;
        id
    }
}

/// How this host implements multicast messages.
#[derive(Clone)]
pub enum McastScheme {
    /// Single-phase bit-string multidestination worms (paper's scheme).
    HardwareBitString,
    /// Multiport-encoded worms planned on the given tree (companion work
    /// \[32\]); arbitrary sets may need several worms.
    HardwareMultiport(Rc<KaryTree>),
    /// U-Min binomial software multicast over unicast messages \[38\].
    SoftwareBinomial,
}

impl std::fmt::Debug for McastScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McastScheme::HardwareBitString => write!(f, "HardwareBitString"),
            McastScheme::HardwareMultiport(_) => write!(f, "HardwareMultiport"),
            McastScheme::SoftwareBinomial => write!(f, "SoftwareBinomial"),
        }
    }
}

/// Host parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// This host's node id.
    pub node: NodeId,
    /// System size `N`.
    pub n_hosts: usize,
    /// Payload bits per flit (8 for SP2-style byte-wide flits).
    pub bits_per_flit: usize,
    /// Maximum packet size (header + payload) the network accepts.
    pub max_packet_flits: u16,
    /// Software cost charged per message send, in cycles.
    pub send_overhead: u32,
    /// Software cost charged before a received multicast is forwarded, in
    /// cycles (software scheme only).
    pub recv_overhead: u32,
    /// Multicast implementation.
    pub scheme: McastScheme,
    /// End-to-end recovery parameters; `None` keeps the zero-overhead
    /// fast path (no dedup map, no timers) for fault-free runs.
    pub recovery: Option<RecoveryConfig>,
}

#[derive(Debug)]
struct RxState {
    expected: u16,
    seqs: HashSet<u16>,
}

/// A sent message awaiting acknowledgement from some destinations.
#[derive(Debug)]
struct OutstandingSend {
    msg: Message,
    remaining: DestSet,
    attempts: u32,
    deadline: Cycle,
}

/// How often (in cycles) a host scans its outstanding sends for expired
/// retransmission deadlines. Power of two so the check is a mask.
const RETRY_SCAN_INTERVAL: Cycle = 16;

/// Shared generators and bookkeeping every host needs.
#[derive(Clone)]
pub struct HostShared {
    /// Delivery tracker (latency bookkeeping).
    pub tracker: Rc<RefCell<DeliveryTracker>>,
    /// Software-multicast forwarding contexts.
    pub coord: Rc<RefCell<SwCoordinator>>,
    /// Message-id generator.
    pub msg_ids: Rc<RefCell<MessageIdGen>>,
    /// Packet-id generator.
    pub pkt_ids: Rc<RefCell<PacketIdGen>>,
    /// Out-of-band ACK ledger and recovery counters (only consulted by
    /// hosts whose config enables recovery).
    pub recovery: Rc<RefCell<RecoveryShared>>,
}

impl HostShared {
    /// Creates the shared state for a system of `n_hosts` nodes.
    pub fn new(n_hosts: usize) -> Self {
        HostShared {
            tracker: Rc::new(RefCell::new(DeliveryTracker::new(n_hosts))),
            coord: Rc::new(RefCell::new(SwCoordinator::new())),
            msg_ids: Rc::new(RefCell::new(MessageIdGen::new())),
            pkt_ids: Rc::new(RefCell::new(PacketIdGen::new())),
            recovery: Rc::new(RefCell::new(RecoveryShared::new())),
        }
    }
}

/// A host NIC component (one injection port, one ejection port).
pub struct Host {
    cfg: HostConfig,
    shared: HostShared,
    source: Box<dyn TrafficSource>,
    hook: Option<Rc<RefCell<dyn DeliveryHook>>>,
    cpu_free_at: Cycle,
    pending: VecDeque<(Cycle, Vec<Rc<Packet>>)>,
    nic: VecDeque<Rc<Packet>>,
    tx: Option<(Rc<Packet>, u16)>,
    rx: HashMap<MessageId, RxState>,
    /// Whether any flit of the worm currently draining from the ejection
    /// port carried a corruption mark (worms arrive contiguously).
    worm_corrupt: bool,
    outstanding: HashMap<MessageId, OutstandingSend>,
    /// Fault-response mode (injection gate + degradation planner); `None`
    /// keeps the fault-oblivious fast path.
    mode: Option<Rc<FabricMode>>,
}

impl Host {
    /// Creates a host.
    ///
    /// # Panics
    ///
    /// Panics if the maximum packet size cannot even fit a unicast header
    /// plus one payload flit.
    pub fn new(cfg: HostConfig, shared: HostShared, source: Box<dyn TrafficSource>) -> Self {
        let uni = RoutingHeader::Unicast { dest: cfg.node };
        let hdr = uni.header_flits(cfg.n_hosts, cfg.bits_per_flit) as u16;
        assert!(
            cfg.max_packet_flits > hdr,
            "max packet of {} flits cannot carry any payload",
            cfg.max_packet_flits
        );
        Host {
            cfg,
            shared,
            source,
            hook: None,
            cpu_free_at: 0,
            pending: VecDeque::new(),
            nic: VecDeque::new(),
            tx: None,
            rx: HashMap::new(),
            worm_corrupt: false,
            outstanding: HashMap::new(),
            mode: None,
        }
    }

    /// Installs a delivery observer (e.g. a barrier engine).
    pub fn set_hook(&mut self, hook: Rc<RefCell<dyn DeliveryHook>>) {
        self.hook = Some(hook);
    }

    /// Attaches the shared fault-response mode cell. While its gate is up
    /// this host aborts/holds injection; while its degradation planner is
    /// installed, hardware multicasts are split into a coverable worm plus
    /// U-Min unicast fallback for the peeled remainder. Payloads dropped at
    /// the gate are only recovered when [`HostConfig::recovery`] is on.
    pub fn set_fabric_mode(&mut self, mode: Rc<FabricMode>) {
        self.mode = Some(mode);
    }

    /// This host's node id.
    pub fn node(&self) -> NodeId {
        self.cfg.node
    }

    /// Messages and packets awaiting injection (saturation probe).
    pub fn backlog(&self) -> usize {
        self.pending.len() + self.nic.len() + usize::from(self.tx.is_some())
    }

    /// Serializes `overhead` cycles of CPU work starting no earlier than
    /// `now`; returns the completion time.
    fn cpu_schedule(&mut self, now: Cycle, overhead: u32) -> Cycle {
        let start = self.cpu_free_at.max(now);
        self.cpu_free_at = start + Cycle::from(overhead);
        self.cpu_free_at
    }

    /// Largest payload per packet for a given header.
    fn max_payload(&self, header: &RoutingHeader) -> u16 {
        let hdr = header.header_flits(self.cfg.n_hosts, self.cfg.bits_per_flit) as u16;
        assert!(
            self.cfg.max_packet_flits > hdr,
            "header of {hdr} flits leaves no payload room in {}-flit packets",
            self.cfg.max_packet_flits
        );
        self.cfg.max_packet_flits - hdr
    }

    fn schedule_packets(&mut self, now: Cycle, packets: Vec<Packet>) {
        let ready = self.cpu_schedule(now, self.cfg.send_overhead);
        self.pending
            .push_back((ready, packets.into_iter().map(Rc::new).collect()));
    }

    /// Puts a freshly sent message on the retransmission wheel, awaiting
    /// ACKs from `dests`. No-op unless recovery is enabled.
    fn track_send(&mut self, now: Cycle, msg: &Message, dests: DestSet) {
        if let Some(rcfg) = &self.cfg.recovery {
            self.outstanding.insert(
                msg.id(),
                OutstandingSend {
                    msg: msg.clone(),
                    remaining: dests,
                    attempts: 0,
                    deadline: rcfg.deadline_after(now, 0),
                },
            );
        }
    }

    /// Handles a message the workload asked us to send.
    fn send_message(&mut self, now: Cycle, spec: MessageSpec) {
        let id = self.shared.msg_ids.borrow_mut().next_id();
        let msg = Message::new(
            id,
            self.cfg.node,
            spec.kind.clone(),
            spec.payload_flits,
            now,
        );
        // Barrier gathers are consumed inside the network; they never
        // produce a host delivery, so the tracker must not expect one.
        if !matches!(spec.kind, MessageKind::BarrierGather { .. }) {
            self.shared.tracker.borrow_mut().register(&msg);
        }
        match (&spec.kind, self.cfg.scheme.clone()) {
            (MessageKind::Unicast(dest), _) => {
                let max = self.max_payload(&RoutingHeader::Unicast {
                    dest: self.cfg.node,
                });
                let pkts = packetize(
                    &msg,
                    max,
                    self.cfg.n_hosts,
                    self.cfg.bits_per_flit,
                    &mut self.shared.pkt_ids.borrow_mut(),
                );
                self.schedule_packets(now, pkts);
                self.track_send(now, &msg, DestSet::from_nodes(self.cfg.n_hosts, [*dest]));
            }
            (MessageKind::Multicast(dests), McastScheme::HardwareBitString) => {
                match self
                    .mode
                    .as_ref()
                    .and_then(|m| m.split(self.cfg.node, dests))
                {
                    Some(plan) => {
                        if !plan.worm.is_empty() {
                            self.send_worm(now, &msg, &plan.worm);
                            self.track_send(now, &msg, plan.worm.clone());
                        }
                        if !plan.peeled.is_empty() {
                            self.send_peeled(now, id, now, &plan.peeled, spec.payload_flits);
                        }
                    }
                    None => {
                        self.send_worm(now, &msg, dests);
                        self.track_send(now, &msg, dests.clone());
                    }
                }
            }
            (MessageKind::Multicast(dests), McastScheme::HardwareMultiport(tree)) => {
                self.send_multiport(now, &msg, dests, &tree);
                self.track_send(now, &msg, dests.clone());
            }
            (MessageKind::Multicast(dests), McastScheme::SoftwareBinomial) => {
                // A root that addresses itself "delivers" locally: the
                // binomial list excludes it, so account for it here.
                if dests.contains(self.cfg.node) {
                    self.shared
                        .tracker
                        .borrow_mut()
                        .deliver(id, self.cfg.node, now);
                }
                let list = Rc::new(umin::participant_list(self.cfg.node, dests));
                let n = list.len();
                for h in umin::handoffs(0, n) {
                    self.send_hop(now, id, now, &list, h, spec.payload_flits);
                }
            }
            (MessageKind::BarrierGather { .. }, _) => {
                let pkts = packetize(
                    &msg,
                    self.cfg.max_packet_flits,
                    self.cfg.n_hosts,
                    self.cfg.bits_per_flit,
                    &mut self.shared.pkt_ids.borrow_mut(),
                );
                self.schedule_packets(now, pkts);
            }
        }
    }

    /// Packetizes `msg` as one bit-string worm addressed to exactly `worm`
    /// (a subset of the message's destinations when degraded) and schedules
    /// it; returns the number of packets. Wheel tracking is the caller's
    /// job — retransmissions must not reset their entry's backoff state.
    fn send_worm(&mut self, now: Cycle, msg: &Message, worm: &DestSet) -> u64 {
        let narrowed = Message::new(
            msg.id(),
            msg.src(),
            MessageKind::Multicast(worm.clone()),
            msg.payload_flits(),
            msg.created(),
        );
        let max = self.max_payload(&RoutingHeader::BitString {
            dests: worm.clone(),
        });
        let pkts = packetize(
            &narrowed,
            max,
            self.cfg.n_hosts,
            self.cfg.bits_per_flit,
            &mut self.shared.pkt_ids.borrow_mut(),
        );
        let n = pkts.len() as u64;
        self.schedule_packets(now, pkts);
        n
    }

    /// Serves destinations no worm can reach through the U-Min binomial
    /// unicast fallback. Each hop is an independently recoverable unicast
    /// that delivers (and ACKs) the root message at its destination, so the
    /// peeled destinations must NOT stay on the root's wheel entry.
    fn send_peeled(
        &mut self,
        now: Cycle,
        root: MessageId,
        root_created: Cycle,
        peeled: &DestSet,
        payload_flits: u16,
    ) {
        if peeled.contains(self.cfg.node) {
            self.shared
                .tracker
                .borrow_mut()
                .deliver(root, self.cfg.node, now);
        }
        let list = Rc::new(umin::participant_list(self.cfg.node, peeled));
        let n = list.len();
        for h in umin::handoffs(0, n) {
            self.send_hop(now, root, root_created, &list, h, payload_flits);
        }
    }

    /// Plans and schedules the multiport worms of a multicast.
    fn send_multiport(&mut self, now: Cycle, msg: &Message, dests: &DestSet, tree: &KaryTree) {
        let plan = plan_multiport(tree, self.cfg.node, dests);
        for worm in &plan.worms {
            let header = RoutingHeader::Multiport {
                masks: worm.masks.clone(),
            };
            let max = self.max_payload(&header);
            let total = msg.payload_flits();
            let n_segs = (total.div_ceil(max)).max(1);
            let mut pkts = Vec::with_capacity(n_segs as usize);
            for seq in 0..n_segs {
                let start = u32::from(seq) * u32::from(max);
                let payload = (u32::from(total) - start).min(u32::from(max)) as u16;
                pkts.push(
                    PacketBuilder::new(self.cfg.node, header.clone(), payload, self.cfg.n_hosts)
                        .bits_per_flit(self.cfg.bits_per_flit)
                        .id(self.shared.pkt_ids.borrow_mut().next_id())
                        .msg(msg.id())
                        .segment(seq, n_segs)
                        .created(msg.created())
                        .build(),
                );
            }
            // Each worm is a separate software send.
            self.schedule_packets(now, pkts);
        }
    }

    /// Creates, registers and schedules one software-multicast hop message.
    fn send_hop(
        &mut self,
        now: Cycle,
        root: MessageId,
        root_created: Cycle,
        list: &Rc<Vec<NodeId>>,
        handoff: umin::Handoff,
        payload_flits: u16,
    ) {
        let hop_id = self.shared.msg_ids.borrow_mut().next_id();
        self.shared.coord.borrow_mut().register(
            hop_id,
            SwContext {
                root,
                list: list.clone(),
                my_idx: handoff.child,
                hi: handoff.hi,
                payload_flits,
                root_created,
            },
        );
        let child = list[handoff.child];
        let hop_msg = Message::new(
            hop_id,
            self.cfg.node,
            MessageKind::Unicast(child),
            payload_flits,
            now,
        );
        let max = self.max_payload(&RoutingHeader::Unicast { dest: child });
        let pkts = packetize(
            &hop_msg,
            max,
            self.cfg.n_hosts,
            self.cfg.bits_per_flit,
            &mut self.shared.pkt_ids.borrow_mut(),
        );
        self.schedule_packets(now, pkts);
        // Each hop is an independently recoverable unicast; the forwarding
        // context stays registered until the (sole surviving) copy claims it.
        self.track_send(
            now,
            &hop_msg,
            DestSet::from_nodes(self.cfg.n_hosts, [child]),
        );
    }

    /// A message finished reassembling at this host.
    fn on_message_complete(&mut self, id: MessageId, now: Cycle) {
        if id.0 & netsim::ids::SWITCH_MSG_BIT != 0 {
            // Switch-synthesized broadcast (barrier release): no tracker
            // entry exists; the protocol engine hook handles it.
            if let Some(hook) = &self.hook {
                hook.borrow_mut().on_delivered(id, self.cfg.node, now);
            }
            return;
        }
        // With recovery on, a retransmitted copy of an already-completed
        // message must be discarded before it reaches the tracker (which
        // treats double delivery as a protocol bug) or claims a forwarding
        // context a second time.
        if self.cfg.recovery.is_some()
            && !self
                .shared
                .recovery
                .borrow_mut()
                .first_delivery(id, self.cfg.node)
        {
            return;
        }
        let ctx = self.shared.coord.borrow_mut().claim(id);
        if let Some(ctx) = ctx {
            // Software-multicast hop: deliver the root message here, then
            // forward to our children after the receive overhead.
            self.shared
                .tracker
                .borrow_mut()
                .deliver(ctx.root, self.cfg.node, now);
            if let Some(hook) = &self.hook {
                hook.borrow_mut().on_delivered(ctx.root, self.cfg.node, now);
            }
            let handoffs = ctx.handoffs();
            if !handoffs.is_empty() {
                self.cpu_free_at = self
                    .cpu_free_at
                    .max(now + Cycle::from(self.cfg.recv_overhead));
                for h in handoffs {
                    self.send_hop(
                        now,
                        ctx.root,
                        ctx.root_created,
                        &ctx.list,
                        h,
                        ctx.payload_flits,
                    );
                }
            }
        } else {
            self.shared
                .tracker
                .borrow_mut()
                .deliver(id, self.cfg.node, now);
            if let Some(hook) = &self.hook {
                hook.borrow_mut().on_delivered(id, self.cfg.node, now);
            }
        }
    }

    /// Scans the retransmission wheel: clears acknowledged destinations,
    /// resends expired messages to whoever is still missing, and abandons
    /// messages that exhausted their retries.
    fn service_retries(&mut self, now: Cycle) {
        let Some(rcfg) = self.cfg.recovery.clone() else {
            return;
        };
        if self.outstanding.is_empty() {
            return;
        }
        let mut fire = Vec::new();
        {
            let mut rec = self.shared.recovery.borrow_mut();
            self.outstanding.retain(|id, o| {
                let acked: Vec<NodeId> = o
                    .remaining
                    .iter()
                    .filter(|&n| rec.is_acked(*id, n))
                    .collect();
                for n in acked {
                    o.remaining.remove(n);
                }
                if o.remaining.is_empty() {
                    return false;
                }
                if now >= o.deadline {
                    if o.attempts >= rcfg.max_retries {
                        rec.counters.gave_up += 1;
                        return false;
                    }
                    fire.push(*id);
                }
                true
            });
        }
        // `retain` visits entries in hash order, which varies per process
        // and per thread; retransmission order feeds the shared packet-id
        // stream, so it must not. Fire in message-id order.
        fire.sort_unstable();
        for id in fire {
            let (msg, remaining) = {
                let o = self.outstanding.get_mut(&id).expect("entry retained");
                o.attempts += 1;
                o.deadline = rcfg.deadline_after(now, o.attempts);
                (o.msg.clone(), o.remaining.clone())
            };
            let (n_packets, offloaded) = self.retransmit(now, &msg, &remaining);
            // Destinations handed to the U-Min fallback ride their own hop
            // ledger entries; leaving them here would retransmit the worm
            // (and respawn hops) forever, since hop deliveries ACK the hop
            // id, not the root.
            if !offloaded.is_empty() {
                if let Some(o) = self.outstanding.get_mut(&id) {
                    o.remaining.subtract(&offloaded);
                    if o.remaining.is_empty() {
                        self.outstanding.remove(&id);
                    }
                }
            }
            let mut rec = self.shared.recovery.borrow_mut();
            rec.counters.retransmits += 1;
            rec.counters.packets_retransmitted += n_packets;
        }
    }

    /// Re-injects `msg` toward exactly `remaining`; returns the number of
    /// worms scheduled plus the destinations offloaded to the U-Min
    /// fallback (which the caller must drop from the wheel entry). The
    /// resend carries the original message id (so receivers dedup and
    /// latency is charged from the first attempt) and pays the software
    /// send overhead again.
    fn retransmit(&mut self, now: Cycle, msg: &Message, remaining: &DestSet) -> (u64, DestSet) {
        let none = DestSet::empty(self.cfg.n_hosts);
        match (msg.kind(), self.cfg.scheme.clone()) {
            (MessageKind::Unicast(_), _) => {
                let max = self.max_payload(&RoutingHeader::Unicast {
                    dest: self.cfg.node,
                });
                let pkts = packetize(
                    msg,
                    max,
                    self.cfg.n_hosts,
                    self.cfg.bits_per_flit,
                    &mut self.shared.pkt_ids.borrow_mut(),
                );
                let n = pkts.len() as u64;
                self.schedule_packets(now, pkts);
                (n, none)
            }
            (MessageKind::Multicast(_), McastScheme::HardwareBitString) => {
                // One worm per segment, addressed only to the laggards —
                // re-split when the fabric degraded since the first send.
                let (worm, peeled) = match self
                    .mode
                    .as_ref()
                    .and_then(|m| m.split(self.cfg.node, remaining))
                {
                    Some(plan) => (plan.worm, plan.peeled),
                    None => (remaining.clone(), none),
                };
                let mut n = 0u64;
                if !worm.is_empty() {
                    n += self.send_worm(now, msg, &worm);
                }
                if !peeled.is_empty() {
                    self.send_peeled(now, msg.id(), msg.created(), &peeled, msg.payload_flits());
                }
                (n, peeled)
            }
            (MessageKind::Multicast(_), McastScheme::HardwareMultiport(tree)) => {
                // Replan worms over the shrunken set.
                let before = self.pending.iter().map(|(_, p)| p.len()).sum::<usize>();
                self.send_multiport(now, msg, remaining, &tree);
                let after = self.pending.iter().map(|(_, p)| p.len()).sum::<usize>();
                ((after - before) as u64, none)
            }
            (MessageKind::Multicast(_), McastScheme::SoftwareBinomial)
            | (MessageKind::BarrierGather { .. }, _) => {
                unreachable!("no retransmission wheel entries exist for this kind")
            }
        }
    }
}

impl Component for Host {
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        // Ejection: consume at link rate, reassemble.
        if let Some(flit) = io.recv(0) {
            io.return_credit(0);
            if flit.is_head() {
                self.worm_corrupt = false;
            }
            self.worm_corrupt |= flit.corrupted();
            if flit.is_tail() {
                let pkt = flit.packet().clone();
                if self.cfg.recovery.is_some() && !pkt.checksum_ok(self.worm_corrupt) {
                    // Failed CRC: drop the packet; the sender's timeout
                    // will resend it.
                    self.shared.recovery.borrow_mut().counters.corrupt_discards += 1;
                } else {
                    let entry = self.rx.entry(pkt.msg()).or_insert_with(|| RxState {
                        expected: pkt.n_packets(),
                        seqs: HashSet::new(),
                    });
                    entry.seqs.insert(pkt.seq());
                    if entry.seqs.len() == usize::from(entry.expected) {
                        self.rx.remove(&pkt.msg());
                        self.on_message_complete(pkt.msg(), now);
                    }
                }
            }
        }

        // Recovery: periodically service the retransmission wheel.
        if self.cfg.recovery.is_some() && now.is_multiple_of(RETRY_SCAN_INTERVAL) {
            self.service_retries(now);
        }

        // Generation.
        if let Some(spec) = self.source.poll(now) {
            self.send_message(now, spec);
        }

        // Software-ready packets move to the NIC queue.
        while self.pending.front().is_some_and(|(ready, _)| *ready <= now) {
            let (_, pkts) = self.pending.pop_front().expect("front exists");
            self.nic.extend(pkts);
        }

        // Quiesce gate: abort the worm being injected (the switches are
        // about to purge it) and toss queued packets — their headers were
        // planned against tables that are being replaced, and a stale
        // bit-string could be unroutable after the swap. Tracked messages
        // come back through the retransmission wheel.
        if self.mode.as_ref().is_some_and(|m| m.gated()) {
            let mode = self.mode.as_ref().expect("checked").clone();
            if self.tx.take().is_some() {
                mode.count_aborted_tx();
            }
            let dropped =
                (self.nic.len() + self.pending.iter().map(|(_, p)| p.len()).sum::<usize>()) as u64;
            if dropped > 0 {
                self.nic.clear();
                self.pending.clear();
                mode.count_dropped_queued(dropped);
            }
            return;
        }

        // Injection at link rate.
        if self.tx.is_none() {
            self.tx = self.nic.pop_front().map(|p| (p, 0));
        }
        if let Some((pkt, idx)) = &mut self.tx {
            if io.can_send(0) {
                io.send(0, Flit::new(pkt.clone(), *idx));
                *idx += 1;
                if *idx == pkt.total_flits() {
                    self.tx = None;
                }
            }
        }
    }
}

impl std::fmt::Debug for Host {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Host({}, scheme {:?}, backlog {})",
            self.cfg.node,
            self.cfg.scheme,
            self.backlog()
        )
    }
}

/// Builds a unicast packet id for tests.
#[doc(hidden)]
pub fn test_packet_id(v: u64) -> PacketId {
    PacketId(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::ScheduledSource;
    use mintopo::route::RouteTables;
    use mintopo::topology::TopologyBuilder;
    use netsim::engine::Engine;
    use switches::{CentralBufferSwitch, SwitchConfig, SwitchStats};

    /// One CB switch, `n` hosts, all driven by scheduled sources.
    struct World {
        engine: Engine,
        shared: HostShared,
    }

    fn world(n: usize, scheme: McastScheme, schedules: Vec<Vec<(Cycle, MessageSpec)>>) -> World {
        world_with(n, scheme, schedules, None)
    }

    fn world_with(
        n: usize,
        scheme: McastScheme,
        schedules: Vec<Vec<(Cycle, MessageSpec)>>,
        recovery: Option<RecoveryConfig>,
    ) -> World {
        let mut b = TopologyBuilder::new(n);
        let sw = b.add_switch(8, 0);
        for h in 0..n {
            b.attach_host(NodeId::from(h), sw, h);
        }
        let topo = b.build();
        let tables = Rc::new(RouteTables::build(&topo));
        let swcfg = SwitchConfig::default();
        let shared = HostShared::new(n);
        let mut engine = Engine::new();
        let to_switch: Vec<_> = (0..8)
            .map(|_| engine.add_link(1, swcfg.staging_flits))
            .collect();
        let to_host: Vec<_> = (0..8).map(|_| engine.add_link(1, 8)).collect();
        let stats = Rc::new(RefCell::new(SwitchStats::default()));
        engine.add_component(
            Box::new(CentralBufferSwitch::new(sw, swcfg, tables, stats)),
            to_switch.clone(),
            to_host.clone(),
        );
        for (h, schedule) in schedules.into_iter().enumerate() {
            let cfg = HostConfig {
                node: NodeId::from(h),
                n_hosts: n,
                bits_per_flit: 8,
                max_packet_flits: 128,
                send_overhead: 40,
                recv_overhead: 20,
                scheme: scheme.clone(),
                recovery: recovery.clone(),
            };
            let host = Host::new(
                cfg,
                shared.clone(),
                Box::new(ScheduledSource::new(schedule)),
            );
            engine.add_component(Box::new(host), vec![to_host[h]], vec![to_switch[h]]);
        }
        World { engine, shared }
    }

    fn mcast_spec(dests: &[u32], n: usize, payload: u16) -> MessageSpec {
        MessageSpec {
            kind: MessageKind::Multicast(DestSet::from_nodes(n, dests.iter().map(|&d| NodeId(d)))),
            payload_flits: payload,
        }
    }

    #[test]
    fn unicast_end_to_end_latency_includes_overhead() {
        let spec = MessageSpec {
            kind: MessageKind::Unicast(NodeId(1)),
            payload_flits: 16,
        };
        let mut w = world(
            4,
            McastScheme::HardwareBitString,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
        );
        w.engine.run_for(300);
        let t = w.shared.tracker.borrow();
        assert_eq!(t.completed_unicasts(), 1);
        let lat = t.unicast.summary().max;
        // send_overhead (40) + 18 flits serialization + switch pipeline.
        assert!(lat >= 58, "latency {lat} too small");
        assert!(lat <= 90, "latency {lat} unexpectedly large");
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn hardware_multicast_delivers_to_all() {
        let spec = mcast_spec(&[1, 2, 3], 4, 32);
        let mut w = world(
            4,
            McastScheme::HardwareBitString,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
        );
        w.engine.run_for(500);
        let t = w.shared.tracker.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.deliveries(), 3);
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn software_multicast_delivers_to_all_and_is_slower() {
        let run = |scheme: McastScheme| -> u64 {
            let spec = mcast_spec(&[1, 2, 3, 4, 5, 6, 7], 8, 32);
            let mut w = world(8, scheme, {
                let mut v = vec![vec![(1, spec)]];
                v.extend((1..8).map(|_| vec![]));
                v
            });
            w.engine.run_for(3000);
            let t = w.shared.tracker.borrow();
            assert_eq!(t.completed_mcasts(), 1);
            assert_eq!(t.deliveries(), 7);
            assert_eq!(t.outstanding(), 0);
            t.mcast_last.summary().max
        };
        let hw = run(McastScheme::HardwareBitString);
        let sw = run(McastScheme::SoftwareBinomial);
        assert!(
            sw > hw,
            "software multicast ({sw}) must be slower than hardware ({hw})"
        );
        // 7 destinations -> 3 phases, each costing >= send_overhead.
        assert!(sw >= hw + 80, "sw {sw} vs hw {hw}");
    }

    #[test]
    fn long_message_is_segmented_and_reassembled() {
        let spec = MessageSpec {
            kind: MessageKind::Unicast(NodeId(2)),
            payload_flits: 500, // > 126-flit max payload -> 4 packets
        };
        let mut w = world(
            4,
            McastScheme::HardwareBitString,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
        );
        w.engine.run_for(2000);
        let t = w.shared.tracker.borrow();
        assert_eq!(t.completed_unicasts(), 1);
        assert_eq!(t.payload_delivered(), 500);
    }

    #[test]
    fn software_multicast_including_the_sender_self_delivers() {
        let mut dests = DestSet::from_nodes(4, [0, 2].map(NodeId));
        dests.insert(NodeId(0));
        let spec = MessageSpec {
            kind: MessageKind::Multicast(dests),
            payload_flits: 8,
        };
        let mut w = world(
            4,
            McastScheme::SoftwareBinomial,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
        );
        w.engine.run_for(1000);
        let t = w.shared.tracker.borrow();
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.deliveries(), 2, "self + host 2");
        assert_eq!(t.outstanding(), 0);
    }

    #[test]
    fn retransmit_race_dedups_and_settles() {
        // Timeout far below the delivery latency: the sender retransmits
        // while the original copy is still in flight, so the ACK lands
        // after a retransmission already fired and the receivers see
        // several copies of the same message.
        let rcfg = RecoveryConfig {
            timeout: 32,
            timeout_cap: 32,
            max_retries: 8,
        };
        let spec = mcast_spec(&[1, 2, 3], 4, 16);
        let mut w = world_with(
            4,
            McastScheme::HardwareBitString,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
            Some(rcfg),
        );
        w.engine.run_for(4_000);
        let t = w.shared.tracker.borrow();
        assert_eq!(t.completed_mcasts(), 1, "one logical completion");
        assert_eq!(t.deliveries(), 3, "no double delivery");
        assert_eq!(t.outstanding(), 0);
        drop(t);
        let rec = w.shared.recovery.borrow();
        assert!(rec.counters.retransmits >= 1, "the race actually happened");
        assert!(
            rec.counters.duplicate_discards >= 1,
            "duplicate copies were discarded, not re-delivered"
        );
        assert_eq!(rec.counters.gave_up, 0, "acks eventually stop the wheel");
    }

    #[test]
    fn multicast_latency_last_definition() {
        // Two destinations: one on the same switch "near", both reachable;
        // last-delivery must be >= average-delivery.
        let spec = mcast_spec(&[1, 3], 4, 64);
        let mut w = world(
            4,
            McastScheme::HardwareBitString,
            vec![vec![(1, spec)], vec![], vec![], vec![]],
        );
        w.engine.run_for(600);
        let t = w.shared.tracker.borrow();
        let last = t.mcast_last.summary().max;
        let avg = t.mcast_avg.summary().max;
        assert!(last >= avg);
    }
}
