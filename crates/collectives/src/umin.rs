//! The U-Min binomial-tree software multicast schedule (Xu, Gui & Ni,
//! Supercomputing '94 — the paper's software baseline \[38\]).
//!
//! A multicast to `d` destinations is implemented as `ceil(log2(d+1))`
//! phases of unicast messages over the **sorted** participant list
//! `[root, d_0, d_1, ...]` (sorting by node id keeps the phases
//! contention-free in a MIN — U-Min's key property). In each phase every
//! informed node hands off the upper half of its remaining range:
//!
//! ```text
//! covers [lo, hi)          sender keeps [lo, lo+h), child (index lo+h)
//! h = ceil((hi-lo)/2)      receives responsibility for [lo+h, hi)
//! ```
//!
//! The first hand-off is the largest, so deep subtrees start early.

use netsim::destset::DestSet;
use netsim::ids::NodeId;

/// One forwarding obligation: send to `list[child]`, which then covers
/// `list[child..hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Index of the child in the participant list.
    pub child: usize,
    /// Exclusive upper bound of the child's responsibility range.
    pub hi: usize,
}

/// Builds the participant list for a multicast: the root followed by the
/// destinations in ascending id order (the root is removed from the
/// destination set if present).
pub fn participant_list(root: NodeId, dests: &DestSet) -> Vec<NodeId> {
    let mut list = Vec::with_capacity(dests.count() + 1);
    list.push(root);
    list.extend(dests.iter().filter(|&d| d != root));
    list
}

/// Computes the hand-offs a participant must perform.
///
/// `me` is the participant's index in the list and `hi` the exclusive upper
/// bound of the range it is currently responsible for (the full list length
/// for the root; the `hi` carried by the hop message for others). Hand-offs
/// are returned in sending order (largest subtree first).
///
/// # Panics
///
/// Panics if `me >= hi`.
pub fn handoffs(me: usize, hi: usize) -> Vec<Handoff> {
    assert!(me < hi, "sender must be inside its responsibility range");
    let mut out = Vec::new();
    let (mut lo, mut hi) = (me, hi);
    while hi - lo > 1 {
        let h = (hi - lo).div_ceil(2);
        out.push(Handoff { child: lo + h, hi });
        hi = lo + h;
        let _ = &mut lo; // lo stays: sender keeps the lower half
    }
    out
}

/// Number of phases the binomial schedule needs for `d` destinations:
/// `ceil(log2(d + 1))`.
pub fn phases(d: usize) -> usize {
    (usize::BITS - d.leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates the schedule in phases, checking everyone gets covered and
    /// the phase count matches `phases(d)`.
    fn run_schedule(n: usize) -> usize {
        // informed[i] = phase at which list[i] learned the message.
        let mut informed = vec![usize::MAX; n];
        informed[0] = 0;
        let mut ranges = vec![(0usize, n)];
        let mut max_phase = 0;
        while let Some((me, hi)) = ranges.pop() {
            for h in handoffs(me, hi) {
                let phase =
                    informed[me] + 1 + handoffs(me, hi).iter().position(|x| x == &h).unwrap();
                informed[h.child] = informed[h.child].min(phase);
                ranges.push((h.child, h.hi));
            }
        }
        for (i, p) in informed.iter().enumerate() {
            assert_ne!(*p, usize::MAX, "participant {i} never informed");
            max_phase = max_phase.max(*p);
        }
        max_phase
    }

    #[test]
    fn participant_list_sorted_and_rootless() {
        let dests = DestSet::from_nodes(16, [9, 2, 5].map(NodeId));
        let list = participant_list(NodeId(7), &dests);
        assert_eq!(list, vec![NodeId(7), NodeId(2), NodeId(5), NodeId(9)]);
        // Root inside the set is dropped from the tail.
        let dests2 = DestSet::from_nodes(16, [7, 2].map(NodeId));
        let list2 = participant_list(NodeId(7), &dests2);
        assert_eq!(list2, vec![NodeId(7), NodeId(2)]);
    }

    #[test]
    fn handoffs_cover_range_disjointly() {
        for n in 1..40 {
            // Collect every participant's range via BFS and verify the
            // union of {child ranges} + sender singleton = full range.
            let mut seen = vec![false; n];
            let mut stack = vec![(0usize, n)];
            while let Some((me, hi)) = stack.pop() {
                assert!(!seen[me], "participant {me} informed twice (n={n})");
                seen[me] = true;
                for h in handoffs(me, hi) {
                    stack.push((h.child, h.hi));
                }
            }
            assert!(seen.iter().all(|&s| s), "coverage hole at n={n}");
        }
    }

    #[test]
    fn phase_count_is_logarithmic() {
        assert_eq!(phases(0), 0);
        assert_eq!(phases(1), 1);
        assert_eq!(phases(2), 2);
        assert_eq!(phases(3), 2);
        assert_eq!(phases(4), 3);
        assert_eq!(phases(7), 3);
        assert_eq!(phases(8), 4);
        assert_eq!(phases(15), 4);
        assert_eq!(phases(16), 5);
    }

    #[test]
    fn schedule_completes_in_log_phases() {
        for d in [1usize, 2, 3, 7, 15, 16, 31, 63] {
            let got = run_schedule(d + 1);
            assert!(
                got <= phases(d),
                "d={d}: schedule took {got} phases, expected <= {}",
                phases(d)
            );
        }
    }

    #[test]
    fn first_handoff_is_largest() {
        let hs = handoffs(0, 16);
        assert_eq!(hs[0].child, 8);
        assert_eq!(hs[0].hi, 16);
        // Subsequent hand-offs shrink.
        for w in hs.windows(2) {
            assert!(w[0].hi - w[0].child >= w[1].hi - w[1].child);
        }
    }

    #[test]
    #[should_panic(expected = "inside its responsibility")]
    fn invalid_range_panics() {
        let _ = handoffs(5, 5);
    }
}
