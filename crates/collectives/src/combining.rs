//! Host-side protocol engine for switch-combining barriers.
//!
//! With combining enabled in the switches (see
//! `switches::CentralBufferSwitch::enable_barrier_combining`), a barrier
//! round is: every host injects one dataless gather worm; switches merge
//! them pairwise up the combining tree in hardware; the combining root
//! emits a broadcast release worm that reaches every host. The host side
//! is therefore trivial — send one gather, wait for the release — which is
//! exactly the point: the log-depth combining happens in the network, not
//! on host CPUs.

use crate::traffic::{DeliveryHook, MessageSpec, TrafficSource};
use netsim::ids::{MessageId, NodeId, SWITCH_MSG_BIT};
use netsim::message::MessageKind;
use netsim::stats::LatencyStats;
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Shared state machine of repeated switch-combining barrier rounds.
#[derive(Debug)]
pub struct CombiningBarrierEngine {
    n_hosts: usize,
    rounds_wanted: u64,
    round: u64,
    round_start: Cycle,
    must_send: HashSet<NodeId>,
    got_release: HashSet<NodeId>,
    /// Completed-round latencies.
    pub latencies: LatencyStats,
}

impl CombiningBarrierEngine {
    /// Creates an engine running `rounds` rounds over `n_hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if the system has fewer than two hosts.
    pub fn new(n_hosts: usize, rounds: u64) -> Rc<RefCell<Self>> {
        assert!(n_hosts >= 2, "a barrier needs at least two hosts");
        Rc::new(RefCell::new(CombiningBarrierEngine {
            n_hosts,
            rounds_wanted: rounds,
            round: 0,
            round_start: 0,
            must_send: (0..n_hosts).map(NodeId::from).collect(),
            got_release: HashSet::new(),
            latencies: LatencyStats::new(),
        }))
    }

    /// Completed rounds.
    pub fn completed_rounds(&self) -> u64 {
        self.round
    }

    /// `true` once all requested rounds have finished.
    pub fn done(&self) -> bool {
        self.round >= self.rounds_wanted
    }

    /// Creates the per-host traffic source view.
    pub fn source_for(engine: &Rc<RefCell<Self>>, node: NodeId) -> CombiningBarrierSource {
        CombiningBarrierSource {
            engine: engine.clone(),
            node,
        }
    }

    fn poll(&mut self, node: NodeId, _now: Cycle) -> Option<MessageSpec> {
        if self.done() {
            return None;
        }
        if self.must_send.remove(&node) {
            return Some(MessageSpec {
                kind: MessageKind::BarrierGather {
                    round: self.round as u32,
                },
                payload_flits: 0,
            });
        }
        None
    }
}

impl DeliveryHook for CombiningBarrierEngine {
    fn on_delivered(&mut self, msg: MessageId, host: NodeId, now: Cycle) {
        // Only switch-synthesized broadcasts are releases; ignore other
        // traffic so the engine composes with background workloads.
        if self.done() || msg.0 & SWITCH_MSG_BIT == 0 {
            return;
        }
        self.got_release.insert(host);
        if self.got_release.len() == self.n_hosts {
            self.latencies.push(now - self.round_start);
            self.round += 1;
            self.round_start = now;
            self.must_send = (0..self.n_hosts).map(NodeId::from).collect();
            self.got_release.clear();
        }
    }
}

/// Per-host view of the shared [`CombiningBarrierEngine`].
pub struct CombiningBarrierSource {
    engine: Rc<RefCell<CombiningBarrierEngine>>,
    node: NodeId,
}

impl TrafficSource for CombiningBarrierSource {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        self.engine.borrow_mut().poll(self.node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_host_sends_one_gather_per_round() {
        let e = CombiningBarrierEngine::new(4, 1);
        for h in 0..4u32 {
            let mut s = CombiningBarrierEngine::source_for(&e, NodeId(h));
            let spec = s.poll(0).expect("gather");
            assert!(matches!(spec.kind, MessageKind::BarrierGather { round: 0 }));
            assert!(s.poll(1).is_none(), "only one gather per round");
        }
    }

    #[test]
    fn round_completes_when_all_hosts_hold_the_release() {
        let e = CombiningBarrierEngine::new(3, 2);
        let release = MessageId(SWITCH_MSG_BIT | 7);
        e.borrow_mut().on_delivered(release, NodeId(0), 50);
        e.borrow_mut().on_delivered(release, NodeId(1), 55);
        assert_eq!(e.borrow().completed_rounds(), 0);
        e.borrow_mut().on_delivered(release, NodeId(2), 60);
        assert_eq!(e.borrow().completed_rounds(), 1);
        assert_eq!(e.borrow().latencies.summary().max, 60);
        // Round 2 gathers become available again.
        let mut s = CombiningBarrierEngine::source_for(&e, NodeId(1));
        assert!(matches!(
            s.poll(61).expect("gather").kind,
            MessageKind::BarrierGather { round: 1 }
        ));
    }

    #[test]
    fn non_switch_messages_are_ignored() {
        let e = CombiningBarrierEngine::new(2, 1);
        e.borrow_mut().on_delivered(MessageId(5), NodeId(0), 10);
        e.borrow_mut().on_delivered(MessageId(6), NodeId(1), 11);
        assert_eq!(e.borrow().completed_rounds(), 0, "unicasts don't count");
    }
}
