//! Shared software state of in-flight software multicasts.
//!
//! In a real system every hop message of a software multicast carries (in
//! its payload) the root-message identity and the sub-range of destinations
//! the receiver must keep forwarding to. We model that payload metadata
//! with a coordinator map keyed by hop-message id: the sending host
//! registers the context, the receiving host claims it, forwards to its
//! children, and reports delivery of the *root* message.

use crate::umin;
use netsim::ids::{MessageId, NodeId};
use netsim::Cycle;
use std::collections::HashMap;
use std::rc::Rc;

/// Forwarding context carried (conceptually, in the payload) by one
/// software-multicast hop message.
#[derive(Debug, Clone)]
pub struct SwContext {
    /// The root multicast message this hop belongs to.
    pub root: MessageId,
    /// The sorted participant list `[root, dests...]`, shared by all hops.
    pub list: Rc<Vec<NodeId>>,
    /// The receiver's index in the list.
    pub my_idx: usize,
    /// Exclusive upper bound of the receiver's responsibility range.
    pub hi: usize,
    /// Payload length of the multicast, in flits.
    pub payload_flits: u16,
    /// Generation cycle of the root message.
    pub root_created: Cycle,
}

impl SwContext {
    /// Hand-offs the receiving host must perform.
    pub fn handoffs(&self) -> Vec<umin::Handoff> {
        umin::handoffs(self.my_idx, self.hi)
    }
}

/// Registry of hop-message contexts, shared by all hosts.
#[derive(Debug, Default)]
pub struct SwCoordinator {
    contexts: HashMap<MessageId, SwContext>,
}

impl SwCoordinator {
    /// Creates an empty coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the context a hop message will carry.
    ///
    /// # Panics
    ///
    /// Panics if the hop-message id is already registered.
    pub fn register(&mut self, hop: MessageId, ctx: SwContext) {
        let prev = self.contexts.insert(hop, ctx);
        assert!(prev.is_none(), "hop message {hop} registered twice");
    }

    /// Claims (removes and returns) the context of a received hop message,
    /// if it was one.
    pub fn claim(&mut self, hop: MessageId) -> Option<SwContext> {
        self.contexts.remove(&hop)
    }

    /// Contexts not yet claimed (in-flight hop messages).
    pub fn in_flight(&self) -> usize {
        self.contexts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_claim_roundtrip() {
        let mut c = SwCoordinator::new();
        let list = Rc::new(vec![NodeId(0), NodeId(1), NodeId(2)]);
        c.register(
            MessageId(5),
            SwContext {
                root: MessageId(1),
                list: list.clone(),
                my_idx: 2,
                hi: 3,
                payload_flits: 64,
                root_created: 10,
            },
        );
        assert_eq!(c.in_flight(), 1);
        let ctx = c.claim(MessageId(5)).expect("registered");
        assert_eq!(ctx.root, MessageId(1));
        assert!(ctx.handoffs().is_empty(), "leaf has no children");
        assert_eq!(c.in_flight(), 0);
        assert!(c.claim(MessageId(5)).is_none());
    }

    #[test]
    fn context_handoffs_follow_umin() {
        let list = Rc::new((0..8).map(NodeId).collect::<Vec<_>>());
        let ctx = SwContext {
            root: MessageId(0),
            list,
            my_idx: 4,
            hi: 8,
            payload_flits: 1,
            root_created: 0,
        };
        let hs = ctx.handoffs();
        assert_eq!(hs, umin::handoffs(4, 8));
        assert!(!hs.is_empty());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_register_panics() {
        let mut c = SwCoordinator::new();
        let list = Rc::new(vec![NodeId(0)]);
        let ctx = SwContext {
            root: MessageId(1),
            list,
            my_idx: 0,
            hi: 1,
            payload_flits: 1,
            root_created: 0,
        };
        c.register(MessageId(5), ctx.clone());
        c.register(MessageId(5), ctx);
    }
}
