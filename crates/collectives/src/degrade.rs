//! Graceful degradation of hardware multicast under link failures
//! (DESIGN.md §10).
//!
//! When the fault-response orchestrator reroutes around dead links, some
//! destinations may become unreachable by *any* single bit-string worm from
//! a given source (the masked routing tables cannot cover them without
//! violating the up*/down* discipline), while still being reachable by
//! plain unicast over surviving paths. [`FabricMode`] is the shared cell
//! through which the orchestrator tells every host how to cope:
//!
//! * **gate** — raised during the quiesce window; hosts abort the worm they
//!   are mid-injection on (the switches are about to purge it anyway) and
//!   stop injecting until the gate drops. Aborted and dropped packets are
//!   counted; their payloads come back through the end-to-end
//!   retransmission ledger ([`crate::recovery`]).
//! * **degraded planner** — installed when the reroute leaves worm-coverage
//!   holes. Each hardware multicast is split by
//!   [`mintopo::route::plan_mcast_coverage`]: the coverable part still goes
//!   as one multidestination worm, and the peeled remainder is served by
//!   binomial-tree U-Min unicasts ([`crate::umin`]) over the surviving
//!   paths, acknowledged through the same ACK ledger. On heal the
//!   orchestrator clears the planner and hosts return to pure hardware
//!   multicast.

use mintopo::route::{plan_mcast_coverage, McastPlan, ReplicatePolicy, RouteTables};
use mintopo::topology::Topology;
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Coverage planner over the currently active (masked) routing tables.
#[derive(Debug, Clone)]
pub struct DegradePlanner {
    /// The rerouted tables hosts' worms will actually be decoded against.
    pub tables: Rc<RouteTables>,
    /// Topology the tables were built for.
    pub topo: Rc<Topology>,
    /// Replication policy of the deployed switches.
    pub policy: ReplicatePolicy,
    /// Trace hop budget (protects against malformed tables looping).
    pub max_hops: usize,
}

impl DegradePlanner {
    /// Splits `dests` into the part one worm from `src` can cover and the
    /// part that must fall back to unicast. A malformed-table trace error
    /// degrades the whole set rather than panicking mid-run.
    pub fn split(&self, src: NodeId, dests: &DestSet) -> McastPlan {
        plan_mcast_coverage(
            &self.tables,
            &self.topo,
            src,
            dests,
            self.policy,
            self.max_hops,
        )
        .unwrap_or_else(|_| McastPlan {
            worm: DestSet::empty(self.tables.n_hosts()),
            peeled: dests.clone(),
        })
    }
}

/// Running totals of degradation activity, summed across all hosts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DegradeCounters {
    /// Worms aborted mid-injection when the gate went up.
    pub aborted_tx: u64,
    /// Queued (not yet injected) packets dropped at the gate.
    pub dropped_queued: u64,
    /// Multicasts whose destination set was split by the planner.
    pub split_mcasts: u64,
    /// Destinations served through the U-Min unicast fallback.
    pub peeled_dests: u64,
    /// Multicasts diverted whole to U-Min while the fabric sat on the
    /// [`Rung::UMinOnly`] ladder rung.
    pub umin_forced: u64,
}

/// Rungs of the degradation ladder a storm controller walks the fabric
/// down (and, with hysteresis, back up). Ordered by severity:
/// `FullMcast < MaskedMcast < UMinOnly < ReadOnly`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Healthy: every multicast goes as one hardware worm.
    FullMcast,
    /// Masked tables active: worm-coverable parts still go as worms, the
    /// peeled remainder rides U-Min unicast.
    MaskedMcast,
    /// Route churn too fast to trust worm coverage: every multicast is
    /// diverted whole to binomial-tree U-Min unicast.
    UMinOnly,
    /// Lockdown: hosts stop injecting entirely; queries still answer
    /// from the last installed state.
    ReadOnly,
}

impl std::fmt::Display for Rung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Rung::FullMcast => "full-mcast",
            Rung::MaskedMcast => "masked-mcast",
            Rung::UMinOnly => "umin-only",
            Rung::ReadOnly => "read-only",
        })
    }
}

/// Shared fault-response mode cell between the orchestrator and all hosts.
#[derive(Debug, Default)]
pub struct FabricMode {
    gated: Cell<bool>,
    umin_only: Cell<bool>,
    lockdown: Cell<bool>,
    planner: RefCell<Option<DegradePlanner>>,
    counters: RefCell<DegradeCounters>,
}

impl FabricMode {
    /// Creates a healthy, ungated mode cell.
    pub fn new() -> Rc<Self> {
        Rc::new(FabricMode::default())
    }

    /// Raises the injection gate (quiesce drain window).
    pub fn gate(&self) {
        self.gated.set(true);
    }

    /// Lowers the injection gate.
    pub fn ungate(&self) {
        self.gated.set(false);
    }

    /// `true` while hosts must not inject — during a quiesce window or
    /// while parked on the [`Rung::ReadOnly`] ladder rung.
    pub fn gated(&self) -> bool {
        self.gated.get() || self.lockdown.get()
    }

    /// Parks the fabric on (or releases it from) the [`Rung::UMinOnly`]
    /// rung: while set, [`split`](Self::split) diverts every multicast
    /// whole to the U-Min unicast fallback regardless of what the masked
    /// tables could cover.
    pub fn set_umin_only(&self, on: bool) {
        self.umin_only.set(on);
    }

    /// Parks the fabric on (or releases it from) the [`Rung::ReadOnly`]
    /// rung: while set, [`gated`](Self::gated) holds regardless of the
    /// quiesce gate.
    pub fn set_lockdown(&self, on: bool) {
        self.lockdown.set(on);
    }

    /// The ladder rung the mode cell currently expresses — the most
    /// severe of the independent switches that are set.
    pub fn rung(&self) -> Rung {
        if self.lockdown.get() {
            Rung::ReadOnly
        } else if self.umin_only.get() {
            Rung::UMinOnly
        } else if self.degraded() {
            Rung::MaskedMcast
        } else {
            Rung::FullMcast
        }
    }

    /// Enters degraded mode: multicasts are split through `planner`.
    pub fn degrade(&self, planner: DegradePlanner) {
        *self.planner.borrow_mut() = Some(planner);
    }

    /// Leaves degraded mode (fabric healed): back to pure hardware worms.
    pub fn heal(&self) {
        *self.planner.borrow_mut() = None;
    }

    /// `true` while a degradation planner is installed.
    pub fn degraded(&self) -> bool {
        self.planner.borrow().is_some()
    }

    /// Splits a multicast under the installed planner; `None` when healthy
    /// (callers send the whole set as one worm). On the
    /// [`Rung::UMinOnly`] rung the entire set is peeled unconditionally.
    pub fn split(&self, src: NodeId, dests: &DestSet) -> Option<McastPlan> {
        if self.umin_only.get() {
            let mut c = self.counters.borrow_mut();
            c.split_mcasts += 1;
            c.peeled_dests += dests.count() as u64;
            c.umin_forced += 1;
            return Some(McastPlan {
                worm: DestSet::empty(dests.universe()),
                peeled: dests.clone(),
            });
        }
        let plan = self
            .planner
            .borrow()
            .as_ref()
            .map(|p| p.split(src, dests))?;
        if !plan.peeled.is_empty() {
            let mut c = self.counters.borrow_mut();
            c.split_mcasts += 1;
            c.peeled_dests += plan.peeled.count() as u64;
        }
        Some(plan)
    }

    /// Snapshot of the degradation counters.
    pub fn counters(&self) -> DegradeCounters {
        *self.counters.borrow()
    }

    pub(crate) fn count_aborted_tx(&self) {
        self.counters.borrow_mut().aborted_tx += 1;
    }

    pub(crate) fn count_dropped_queued(&self, n: u64) {
        self.counters.borrow_mut().dropped_queued += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_and_planner_toggles() {
        let m = FabricMode::new();
        assert!(!m.gated());
        m.gate();
        assert!(m.gated());
        m.ungate();
        assert!(!m.gated());
        assert!(!m.degraded());
        assert!(m.split(NodeId(0), &DestSet::full(4)).is_none());
    }

    #[test]
    fn degraded_split_peels_unreachable_dests() {
        use mintopo::topology::TopologyBuilder;
        use netsim::ids::SwitchId;
        // Two leaf switches under two roots; kill the crossing links so
        // worms from host 0 cannot cover {h2} together with {h1}.
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let r0 = b.add_switch(2, 0);
        let r1 = b.add_switch(2, 0);
        b.attach_host(NodeId(0), s0, 0);
        b.attach_host(NodeId(1), s0, 1);
        b.attach_host(NodeId(2), s1, 0);
        b.attach_host(NodeId(3), s1, 1);
        b.connect(s0, 2, r0, 0);
        b.connect(s0, 3, r1, 0);
        b.connect(s1, 2, r0, 1);
        b.connect(s1, 3, r1, 1);
        let topo = Rc::new(b.build());
        let dead = [(SwitchId(2), 1), (SwitchId(3), 0)];
        let tables = Rc::new(RouteTables::build_masked(&topo, &dead));
        let m = FabricMode::new();
        m.degrade(DegradePlanner {
            tables,
            topo,
            policy: ReplicatePolicy::ReturnOnly,
            max_hops: 32,
        });
        let dests = DestSet::from_nodes(4, [1, 2].map(NodeId));
        let plan = m.split(NodeId(0), &dests).expect("degraded");
        assert_eq!(plan.worm, DestSet::from_nodes(4, [1].map(NodeId)));
        assert_eq!(plan.peeled, DestSet::from_nodes(4, [2].map(NodeId)));
        assert_eq!(m.counters().split_mcasts, 1);
        assert_eq!(m.counters().peeled_dests, 1);
        m.heal();
        assert!(m.split(NodeId(0), &dests).is_none());
    }

    #[test]
    fn ladder_rungs_order_by_severity_and_drive_the_mode() {
        assert!(Rung::FullMcast < Rung::MaskedMcast);
        assert!(Rung::MaskedMcast < Rung::UMinOnly);
        assert!(Rung::UMinOnly < Rung::ReadOnly);

        let m = FabricMode::new();
        assert_eq!(m.rung(), Rung::FullMcast);

        // UMinOnly: everything peels, even with no planner installed.
        m.set_umin_only(true);
        assert_eq!(m.rung(), Rung::UMinOnly);
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let plan = m.split(NodeId(0), &dests).expect("umin-only must split");
        assert!(plan.worm.is_empty());
        assert_eq!(plan.peeled, dests);
        assert_eq!(m.counters().umin_forced, 1);
        assert_eq!(m.counters().peeled_dests, 3);

        // ReadOnly: gate holds without the quiesce gate being raised.
        m.set_lockdown(true);
        assert_eq!(m.rung(), Rung::ReadOnly);
        assert!(m.gated());
        m.set_lockdown(false);
        assert!(!m.gated());

        // Back down the ladder: releasing umin-only restores FullMcast.
        m.set_umin_only(false);
        assert_eq!(m.rung(), Rung::FullMcast);
        assert!(m.split(NodeId(0), &dests).is_none());
    }
}
