//! Traffic-source and delivery-hook interfaces between hosts and workloads.

use netsim::ids::{MessageId, NodeId};
use netsim::message::MessageKind;
use netsim::Cycle;

/// A request to send one message, produced by a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpec {
    /// Destination(s).
    pub kind: MessageKind,
    /// Payload length in flits.
    pub payload_flits: u16,
}

/// Per-host message generator, polled once per cycle by the host.
pub trait TrafficSource {
    /// Returns the next message to send this cycle, if any.
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec>;
}

/// A source that never generates traffic (receivers-only hosts).
#[derive(Debug, Default, Clone, Copy)]
pub struct SilentSource;

impl TrafficSource for SilentSource {
    fn poll(&mut self, _now: Cycle) -> Option<MessageSpec> {
        None
    }
}

/// A source that replays a fixed schedule of `(cycle, spec)` pairs, in
/// order.
#[derive(Debug)]
pub struct ScheduledSource {
    schedule: std::collections::VecDeque<(Cycle, MessageSpec)>,
}

impl ScheduledSource {
    /// Creates a source from `(cycle, spec)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the cycles are not non-decreasing.
    pub fn new(entries: Vec<(Cycle, MessageSpec)>) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "schedule must be sorted by cycle"
        );
        ScheduledSource {
            schedule: entries.into(),
        }
    }
}

impl TrafficSource for ScheduledSource {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        match self.schedule.front() {
            Some((at, _)) if *at <= now => self.schedule.pop_front().map(|(_, s)| s),
            _ => None,
        }
    }
}

/// Chains sources by priority: polls each in order and returns the first
/// message offered. Lets a protocol engine (barrier, reduce) run on top of
/// a background workload on the same host.
pub struct ChainSource {
    sources: Vec<Box<dyn TrafficSource>>,
}

impl ChainSource {
    /// Creates a chain; `sources[0]` has the highest priority.
    pub fn new(sources: Vec<Box<dyn TrafficSource>>) -> Self {
        ChainSource { sources }
    }
}

impl TrafficSource for ChainSource {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        self.sources.iter_mut().find_map(|s| s.poll(now))
    }
}

/// Observer of completed message deliveries (used by protocol layers such
/// as the barrier engine).
pub trait DeliveryHook {
    /// Called when `host` has completely received message `msg` at `now`.
    /// For software-multicast hop messages, `msg` is the *root* message id.
    fn on_delivered(&mut self, msg: MessageId, host: NodeId, now: Cycle);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silent_source_is_silent() {
        let mut s = SilentSource;
        assert_eq!(s.poll(0), None);
        assert_eq!(s.poll(1_000_000), None);
    }

    #[test]
    fn scheduled_source_fires_in_order() {
        let spec = |d: u32| MessageSpec {
            kind: MessageKind::Unicast(NodeId(d)),
            payload_flits: 4,
        };
        let mut s = ScheduledSource::new(vec![(5, spec(1)), (5, spec(2)), (9, spec(3))]);
        assert_eq!(s.poll(4), None);
        assert_eq!(s.poll(5), Some(spec(1)));
        assert_eq!(s.poll(5), Some(spec(2)));
        assert_eq!(s.poll(6), None);
        assert_eq!(s.poll(20), Some(spec(3)));
        assert_eq!(s.poll(21), None);
    }

    #[test]
    fn chain_source_respects_priority() {
        let spec = |d: u32| MessageSpec {
            kind: MessageKind::Unicast(NodeId(d)),
            payload_flits: 1,
        };
        let hi = ScheduledSource::new(vec![(5, spec(1))]);
        let lo = ScheduledSource::new(vec![(0, spec(2)), (0, spec(3))]);
        let mut chain = ChainSource::new(vec![Box::new(hi), Box::new(lo)]);
        assert_eq!(chain.poll(0), Some(spec(2)), "low fires while high idle");
        assert_eq!(chain.poll(5), Some(spec(1)), "high preempts");
        assert_eq!(chain.poll(6), Some(spec(3)));
        assert_eq!(chain.poll(7), None);
    }

    #[test]
    #[should_panic(expected = "sorted by cycle")]
    fn unsorted_schedule_panics() {
        let spec = MessageSpec {
            kind: MessageKind::Unicast(NodeId(0)),
            payload_flits: 1,
        };
        let _ = ScheduledSource::new(vec![(9, spec.clone()), (5, spec)]);
    }
}
