//! Reduction and all-reduce on top of the messaging machinery (extension).
//!
//! The paper motivates multidestination worms with collective operations —
//! "broadcast and multicast are fundamental and they are used in several
//! other operations like barrier synchronization and reduction" \[25\]. This
//! module implements the reduction pattern: partial values combine up the
//! *mirror* of the U-Min binomial tree (each node sends once to its parent
//! after hearing from all of its children), and for all-reduce the root
//! broadcasts the result using whatever multicast scheme the hosts were
//! built with — hardware worms or software forwarding.
//!
//! Values are modeled statically (the combined value of a subtree is the
//! sum of its members' inputs, known at planning time); what the
//! simulation measures is the protocol's traffic and latency.

use crate::traffic::{DeliveryHook, MessageSpec, TrafficSource};
use crate::umin;
use netsim::destset::DestSet;
use netsim::ids::{MessageId, NodeId};
use netsim::message::MessageKind;
use netsim::stats::LatencyStats;
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Shared state machine of repeated reduction / all-reduce rounds.
#[derive(Debug)]
pub struct ReduceEngine {
    n_hosts: usize,
    root: NodeId,
    rounds_wanted: u64,
    payload_flits: u16,
    allreduce: bool,
    /// Per-host input values (defaults to `host id + 1`).
    values: Vec<u64>,
    children: Vec<Vec<usize>>,
    parent: Vec<Option<usize>>,
    // Round state.
    round: u64,
    round_start: Cycle,
    pending_children: Vec<usize>,
    sent_up: Vec<bool>,
    bcast_pending: bool,
    bcast_msg: Option<MessageId>,
    got_result: HashSet<NodeId>,
    /// The combined value of the last completed round.
    pub last_result: Option<u64>,
    /// Completed-round latencies.
    pub latencies: LatencyStats,
}

impl ReduceEngine {
    /// Creates an engine running `rounds` rounds rooted at `root`. When
    /// `allreduce` is set, the root broadcasts the result and a round
    /// completes when every host has it; otherwise the round completes at
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if the system has fewer than two hosts.
    pub fn new(
        n_hosts: usize,
        root: NodeId,
        rounds: u64,
        payload_flits: u16,
        allreduce: bool,
    ) -> Rc<RefCell<Self>> {
        assert!(n_hosts >= 2, "a reduction needs at least two hosts");
        // The participant list is [root, others ascending]; index 0 = root.
        let list = umin::participant_list(root, &{
            let mut all = DestSet::full(n_hosts);
            all.remove(root);
            all
        });
        // Children per list index via the binomial hand-offs.
        let mut children_idx: Vec<Vec<usize>> = vec![Vec::new(); n_hosts];
        let mut parent_idx: Vec<Option<usize>> = vec![None; n_hosts];
        let mut stack = vec![(0usize, n_hosts)];
        while let Some((me, hi)) = stack.pop() {
            for h in umin::handoffs(me, hi) {
                children_idx[me].push(h.child);
                parent_idx[h.child] = Some(me);
                stack.push((h.child, h.hi));
            }
        }
        // Translate list indices to node ids.
        let node_of = |idx: usize| list[idx];
        let mut children = vec![Vec::new(); n_hosts];
        let mut parent = vec![None; n_hosts];
        for idx in 0..n_hosts {
            let node = node_of(idx);
            children[node.index()] = children_idx[idx]
                .iter()
                .map(|&c| node_of(c).index())
                .collect();
            parent[node.index()] = parent_idx[idx].map(|p| node_of(p).index());
        }
        let pending: Vec<usize> = (0..n_hosts).map(|h| children[h].len()).collect();
        Rc::new(RefCell::new(ReduceEngine {
            n_hosts,
            root,
            rounds_wanted: rounds,
            payload_flits,
            allreduce,
            values: (0..n_hosts as u64).map(|v| v + 1).collect(),
            pending_children: pending,
            children,
            parent,
            round: 0,
            round_start: 0,
            sent_up: vec![false; n_hosts],
            bcast_pending: false,
            bcast_msg: None,
            got_result: HashSet::new(),
            last_result: None,
            latencies: LatencyStats::new(),
        }))
    }

    /// Sets a host's input value (before the first round).
    pub fn set_value(&mut self, host: NodeId, value: u64) {
        self.values[host.index()] = value;
    }

    /// The sum every round must produce.
    pub fn expected_sum(&self) -> u64 {
        self.values.iter().sum()
    }

    /// Completed rounds.
    pub fn completed_rounds(&self) -> u64 {
        self.round
    }

    /// `true` once all requested rounds have finished.
    pub fn done(&self) -> bool {
        self.round >= self.rounds_wanted
    }

    /// Creates the per-host traffic source view.
    pub fn source_for(engine: &Rc<RefCell<Self>>, node: NodeId) -> ReduceSource {
        ReduceSource {
            engine: engine.clone(),
            node,
        }
    }

    fn parent_of(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    fn finish_round(&mut self, now: Cycle) {
        self.last_result = Some(self.expected_sum());
        self.latencies.push(now - self.round_start);
        self.round += 1;
        self.round_start = now;
        self.pending_children = (0..self.n_hosts).map(|h| self.children[h].len()).collect();
        self.sent_up = vec![false; self.n_hosts];
        self.bcast_pending = false;
        self.bcast_msg = None;
        self.got_result.clear();
    }

    fn poll(&mut self, node: NodeId, now: Cycle) -> Option<MessageSpec> {
        if self.done() {
            return None;
        }
        let h = node.index();
        if node == self.root {
            // Root: when fully combined, either broadcast (allreduce) or
            // complete the round right here.
            if self.pending_children[h] == 0 {
                if self.allreduce {
                    if !self.bcast_pending {
                        self.bcast_pending = true;
                        let mut dests = DestSet::full(self.n_hosts);
                        dests.remove(self.root);
                        return Some(MessageSpec {
                            kind: MessageKind::Multicast(dests),
                            payload_flits: self.payload_flits,
                        });
                    }
                } else {
                    self.finish_round(now);
                }
            }
            return None;
        }
        if self.pending_children[h] == 0 && !self.sent_up[h] {
            self.sent_up[h] = true;
            let parent = self.parent_of(h).expect("non-root has a parent");
            return Some(MessageSpec {
                kind: MessageKind::Unicast(NodeId::from(parent)),
                payload_flits: self.payload_flits,
            });
        }
        None
    }
}

impl DeliveryHook for ReduceEngine {
    fn on_delivered(&mut self, msg: MessageId, host: NodeId, now: Cycle) {
        if self.done() {
            return;
        }
        if self.bcast_pending {
            // Broadcast copies of the result.
            if self.bcast_msg.is_none() {
                self.bcast_msg = Some(msg);
            }
            if self.bcast_msg == Some(msg) {
                self.got_result.insert(host);
                if self.got_result.len() == self.n_hosts - 1 {
                    self.finish_round(now);
                }
                return;
            }
        }
        // A partial value arrived at `host` from one of its children.
        let h = host.index();
        assert!(
            self.pending_children[h] > 0,
            "unexpected reduction message at {host}"
        );
        self.pending_children[h] -= 1;
    }
}

/// Per-host view of the shared [`ReduceEngine`].
pub struct ReduceSource {
    engine: Rc<RefCell<ReduceEngine>>,
    node: NodeId,
}

impl TrafficSource for ReduceSource {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        self.engine.borrow_mut().poll(self.node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_structure_is_consistent() {
        let e = ReduceEngine::new(16, NodeId(0), 1, 8, false);
        let e = e.borrow();
        // Every non-root has a parent; child lists mirror parents.
        for h in 0..16usize {
            if h == 0 {
                assert!(e.parent[h].is_none());
            } else {
                let p = e.parent[h].expect("parent exists");
                assert!(e.children[p].contains(&h));
            }
        }
        let total_children: usize = e.children.iter().map(Vec::len).sum();
        assert_eq!(total_children, 15);
    }

    #[test]
    fn leaves_send_immediately_internal_nodes_wait() {
        let e = ReduceEngine::new(8, NodeId(0), 1, 8, false);
        // Host 7 is a leaf in the binomial tree over [0..8).
        let leaf = (0..8usize)
            .find(|&h| e.borrow().children[h].is_empty())
            .expect("some leaf");
        let mut src = ReduceEngine::source_for(&e, NodeId::from(leaf));
        assert!(src.poll(0).is_some(), "leaf sends right away");
        assert!(src.poll(1).is_none(), "only once");
        // An internal node waits for its children.
        let internal = (1..8usize)
            .find(|&h| !e.borrow().children[h].is_empty())
            .expect("some internal node");
        let mut isrc = ReduceEngine::source_for(&e, NodeId::from(internal));
        assert!(isrc.poll(0).is_none(), "internal node waits");
    }

    #[test]
    fn reduce_round_completes_at_root() {
        let e = ReduceEngine::new(4, NodeId(0), 1, 8, false);
        // children of root over [0,4): handoffs(0,4) -> child 2 (hi 4), child 1 (hi 2).
        // Simulate deliveries: host 3 -> 2, then 2 -> 0 and 1 -> 0.
        e.borrow_mut().on_delivered(MessageId(1), NodeId(2), 10);
        e.borrow_mut().on_delivered(MessageId(2), NodeId(0), 20);
        e.borrow_mut().on_delivered(MessageId(3), NodeId(0), 25);
        let mut root = ReduceEngine::source_for(&e, NodeId(0));
        assert!(root.poll(26).is_none(), "plain reduce sends nothing");
        let eng = e.borrow();
        assert_eq!(eng.completed_rounds(), 1);
        assert_eq!(eng.last_result, Some(1 + 2 + 3 + 4));
        assert_eq!(eng.latencies.summary().max, 26);
    }

    #[test]
    fn allreduce_broadcasts_then_completes() {
        let e = ReduceEngine::new(4, NodeId(0), 1, 8, true);
        e.borrow_mut().on_delivered(MessageId(1), NodeId(2), 10);
        e.borrow_mut().on_delivered(MessageId(2), NodeId(0), 20);
        e.borrow_mut().on_delivered(MessageId(3), NodeId(0), 25);
        let mut root = ReduceEngine::source_for(&e, NodeId(0));
        let spec = root.poll(26).expect("broadcast fires");
        assert!(matches!(spec.kind, MessageKind::Multicast(_)));
        assert!(root.poll(27).is_none(), "broadcast only once");
        for h in [1u32, 2, 3] {
            e.borrow_mut()
                .on_delivered(MessageId(9), NodeId(h), 40 + u64::from(h));
        }
        assert_eq!(e.borrow().completed_rounds(), 1);
        assert!(e.borrow().done());
    }

    #[test]
    fn custom_values_change_the_sum() {
        let e = ReduceEngine::new(4, NodeId(0), 1, 8, false);
        e.borrow_mut().set_value(NodeId(2), 100);
        assert_eq!(e.borrow().expected_sum(), 1 + 2 + 100 + 4);
    }
}
