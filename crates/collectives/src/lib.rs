//! # collectives — hosts, software & hardware multicast, barriers
//!
//! The end-host layer of the reproduction:
//!
//! * [`host::Host`] — NIC/processor model: message generation, software
//!   send/receive overheads on a serialized CPU, packetization under the
//!   network's maximum packet size, injection/ejection at link rate,
//!   reassembly and delivery reporting;
//! * [`umin`] — the U-Min binomial-tree schedule (the paper's software
//!   multicast baseline \[38\]);
//! * [`swmcast`] — forwarding contexts for in-flight software multicasts;
//! * [`traffic`] — the [`traffic::TrafficSource`] interface workloads
//!   implement, plus simple scheduled/silent sources;
//! * [`barrier`] — gather + multicast-release barrier rounds (extension
//!   experiment, cf. the paper's §9 outlook on hardware barriers \[34\]);
//! * [`reduce`] — reduction / all-reduce rounds over the mirrored binomial
//!   tree (extension experiment E13);
//! * [`recovery`] — end-to-end fault recovery: checksum validation,
//!   duplicate suppression, and timeout-driven retransmission.

pub mod barrier;
pub mod combining;
pub mod degrade;
pub mod host;
pub mod recovery;
pub mod reduce;
pub mod swmcast;
pub mod traffic;
pub mod umin;

pub use barrier::{BarrierEngine, BarrierSource};
pub use combining::{CombiningBarrierEngine, CombiningBarrierSource};
pub use degrade::{DegradeCounters, DegradePlanner, FabricMode, Rung};
pub use host::{Host, HostConfig, HostShared, McastScheme, MessageIdGen};
pub use recovery::{RecoveryConfig, RecoveryCounters, RecoveryShared};
pub use reduce::{ReduceEngine, ReduceSource};
pub use swmcast::{SwContext, SwCoordinator};
pub use traffic::{
    ChainSource, DeliveryHook, MessageSpec, ScheduledSource, SilentSource, TrafficSource,
};
