//! End-to-end recovery: acknowledgements, duplicate suppression, and
//! sender-side retransmission.
//!
//! The fault layer ([`netsim::fault`]) can swallow whole worms, corrupt
//! flits, and leak credits. This module gives hosts the protocol to survive
//! it: receivers validate the packet checksum and discard corrupt or
//! duplicate packets; senders keep every un-acknowledged message on a
//! timeout wheel and retransmit — with bounded exponential backoff — to
//! exactly the destinations that have not acknowledged yet.
//!
//! Acknowledgements travel out of band through [`RecoveryShared`], a map
//! the receiving host marks and the sending host polls. This models a
//! dedicated low-bandwidth service network (as on the SP2), so ACK traffic
//! does not perturb the data network being measured; data-network faults
//! therefore never delay or destroy ACKs, only the data worms themselves.
//!
//! Recovery is opt-in per run: without a [`RecoveryConfig`] the hosts keep
//! their zero-overhead fast path and behave bit-identically to builds
//! before this module existed.

use netsim::ids::{MessageId, NodeId};
use netsim::Cycle;
use std::collections::{HashMap, HashSet};

/// Sender-side retransmission parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Cycles to wait for a destination's ACK before the first resend.
    /// Must comfortably exceed the fault-free delivery latency.
    pub timeout: Cycle,
    /// Backoff cap: the doubled timeout never exceeds this.
    pub timeout_cap: Cycle,
    /// Resend attempts per message before giving up.
    pub max_retries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            timeout: 2_000,
            timeout_cap: 32_000,
            max_retries: 10,
        }
    }
}

impl RecoveryConfig {
    /// Retransmission deadline for attempt number `attempts` (0-based),
    /// with exponential backoff capped at `timeout_cap`.
    pub fn deadline_after(&self, now: Cycle, attempts: u32) -> Cycle {
        let backoff = self
            .timeout
            .saturating_mul(1u64.checked_shl(attempts).unwrap_or(u64::MAX))
            .min(self.timeout_cap);
        now + backoff
    }
}

/// Running totals of recovery activity, summed across all hosts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Retransmission events (one per message-level timeout that fired).
    pub retransmits: u64,
    /// Worms re-injected by retransmissions.
    pub packets_retransmitted: u64,
    /// Packets discarded at a receiver for checksum failure.
    pub corrupt_discards: u64,
    /// Completed messages discarded at a receiver as duplicates.
    pub duplicate_discards: u64,
    /// Messages abandoned after exhausting every retry.
    pub gave_up: u64,
}

/// Shared ACK ledger and counters (the out-of-band service network).
#[derive(Debug, Default)]
pub struct RecoveryShared {
    acked: HashMap<MessageId, HashSet<NodeId>>,
    /// Aggregated recovery activity.
    pub counters: RecoveryCounters,
}

impl RecoveryShared {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `node` acknowledged `msg`. Idempotent: duplicate and
    /// reordered ACKs (one per retransmitted copy, or arriving after the
    /// sender already dropped its wheel entry) simply return `false` with
    /// no side effect — an ACK can never be *un*-recorded. Returns `true`
    /// only the first time.
    pub fn ack(&mut self, msg: MessageId, node: NodeId) -> bool {
        self.acked.entry(msg).or_default().insert(node)
    }

    /// Records that `node` completed `msg`. Returns `false` — and counts a
    /// duplicate — if it had already been recorded, in which case the
    /// caller must not deliver the message again.
    pub fn first_delivery(&mut self, msg: MessageId, node: NodeId) -> bool {
        if self.ack(msg, node) {
            true
        } else {
            self.counters.duplicate_discards += 1;
            false
        }
    }

    /// `true` once `node` has acknowledged `msg`.
    pub fn is_acked(&self, msg: MessageId, node: NodeId) -> bool {
        self.acked.get(&msg).is_some_and(|s| s.contains(&node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_delivery_dedupes() {
        let mut r = RecoveryShared::new();
        assert!(r.first_delivery(MessageId(7), NodeId(3)));
        assert!(r.is_acked(MessageId(7), NodeId(3)));
        assert!(!r.first_delivery(MessageId(7), NodeId(3)));
        assert_eq!(r.counters.duplicate_discards, 1);
        // A different node on the same message is not a duplicate.
        assert!(r.first_delivery(MessageId(7), NodeId(4)));
        assert!(!r.is_acked(MessageId(7), NodeId(5)));
    }

    #[test]
    fn duplicate_and_reordered_acks_are_idempotent() {
        let mut r = RecoveryShared::new();
        // Dup ACK: the second (and third) report of the same ack is a
        // no-op — recorded once, never counted as a data duplicate.
        assert!(r.ack(MessageId(1), NodeId(0)));
        assert!(!r.ack(MessageId(1), NodeId(0)));
        assert!(!r.ack(MessageId(1), NodeId(0)));
        assert!(r.is_acked(MessageId(1), NodeId(0)));
        assert_eq!(r.counters.duplicate_discards, 0);
        // Reordered across nodes/messages: order of arrival is irrelevant.
        assert!(r.ack(MessageId(2), NodeId(1)));
        assert!(r.ack(MessageId(1), NodeId(1)));
        assert!(r.is_acked(MessageId(2), NodeId(1)));
        assert!(r.is_acked(MessageId(1), NodeId(1)));
        // A late ACK for a message the sender has long forgotten (gave up
        // or completed) is accepted harmlessly and stays queryable.
        assert!(r.ack(MessageId(999), NodeId(3)));
        assert!(!r.ack(MessageId(999), NodeId(3)));
    }

    #[test]
    fn delivery_after_ack_is_a_duplicate() {
        // ACK-then-delivery interleaving: if the out-of-band ack beat the
        // (retransmitted) data copy, the copy must be discarded.
        let mut r = RecoveryShared::new();
        assert!(r.ack(MessageId(5), NodeId(2)));
        assert!(!r.first_delivery(MessageId(5), NodeId(2)));
        assert_eq!(r.counters.duplicate_discards, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let cfg = RecoveryConfig {
            timeout: 100,
            timeout_cap: 350,
            max_retries: 5,
        };
        assert_eq!(cfg.deadline_after(1_000, 0), 1_100);
        assert_eq!(cfg.deadline_after(1_000, 1), 1_200);
        assert_eq!(cfg.deadline_after(1_000, 2), 1_350, "capped");
        assert_eq!(cfg.deadline_after(1_000, 63), 1_350);
        assert_eq!(cfg.deadline_after(1_000, 64), 1_350, "shift overflow safe");
    }
}
