//! Barrier synchronization on top of the multicast machinery (the paper's
//! §9 points at hardware barrier support \[34\] as follow-on work; this is
//! the extension experiment E11).
//!
//! The protocol is a flat gather + multicast release: every non-root host
//! sends a dataless *arrival* unicast to the root; once all `N-1` arrivals
//! are in, the root issues a dataless *release* multicast to everyone. The
//! release travels by whatever [`crate::host::McastScheme`] the hosts were
//! built with, so the same protocol measures hardware-worm barriers against
//! software-multicast barriers.
//!
//! [`BarrierEngine`] is both the per-host [`TrafficSource`] (via
//! [`BarrierEngine::source_for`]) and the [`DeliveryHook`] that advances
//! the round state machine.

use crate::traffic::{DeliveryHook, MessageSpec, TrafficSource};
use netsim::destset::DestSet;
use netsim::ids::{MessageId, NodeId};
use netsim::message::MessageKind;
use netsim::stats::LatencyStats;
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Shared state machine of repeated barrier rounds.
#[derive(Debug)]
pub struct BarrierEngine {
    n_hosts: usize,
    root: NodeId,
    rounds_wanted: u64,
    round: u64,
    round_start: Cycle,
    arrivals: usize,
    /// Hosts that still must send their arrival for the current round.
    must_arrive: HashSet<NodeId>,
    release_pending: bool,
    released: HashSet<NodeId>,
    release_msg: Option<MessageId>,
    /// Completed-round latencies (arrival start to last release delivery).
    pub latencies: LatencyStats,
}

impl BarrierEngine {
    /// Creates an engine running `rounds` barrier rounds rooted at `root`.
    ///
    /// # Panics
    ///
    /// Panics if the system has fewer than two hosts.
    pub fn new(n_hosts: usize, root: NodeId, rounds: u64) -> Rc<RefCell<Self>> {
        assert!(n_hosts >= 2, "a barrier needs at least two hosts");
        Rc::new(RefCell::new(BarrierEngine {
            n_hosts,
            root,
            rounds_wanted: rounds,
            round: 0,
            round_start: 0,
            arrivals: 0,
            must_arrive: (0..n_hosts)
                .map(NodeId::from)
                .filter(|&h| h != root)
                .collect(),
            release_pending: false,
            released: HashSet::new(),
            release_msg: None,
            latencies: LatencyStats::new(),
        }))
    }

    /// Completed rounds.
    pub fn completed_rounds(&self) -> u64 {
        self.round
    }

    /// `true` once all requested rounds have finished.
    pub fn done(&self) -> bool {
        self.round >= self.rounds_wanted
    }

    /// Creates the per-host traffic source view.
    pub fn source_for(engine: &Rc<RefCell<Self>>, node: NodeId) -> BarrierSource {
        BarrierSource {
            engine: engine.clone(),
            node,
        }
    }

    fn poll(&mut self, node: NodeId, _now: Cycle) -> Option<MessageSpec> {
        if self.done() {
            return None;
        }
        if node == self.root {
            if self.arrivals == self.n_hosts - 1 && !self.release_pending {
                self.release_pending = true;
                let mut dests = DestSet::full(self.n_hosts);
                dests.remove(self.root);
                return Some(MessageSpec {
                    kind: MessageKind::Multicast(dests),
                    payload_flits: 0,
                });
            }
            return None;
        }
        if self.must_arrive.remove(&node) {
            return Some(MessageSpec {
                kind: MessageKind::Unicast(self.root),
                payload_flits: 0,
            });
        }
        None
    }
}

impl DeliveryHook for BarrierEngine {
    fn on_delivered(&mut self, msg: MessageId, host: NodeId, now: Cycle) {
        if self.done() {
            return;
        }
        if host == self.root {
            // An arrival landed. Remember the first arrival message id of
            // the round as "the release to watch for" sentinel is not
            // needed; we only count.
            self.arrivals += 1;
            assert!(
                self.arrivals < self.n_hosts,
                "more arrivals than participants"
            );
        } else {
            // A release copy landed (the only multicast in flight). Track
            // which message is the release to tolerate stray unicasts in
            // mixed workloads.
            if self.release_msg.is_none() && self.release_pending {
                self.release_msg = Some(msg);
            }
            if self.release_msg == Some(msg) {
                self.released.insert(host);
                if self.released.len() == self.n_hosts - 1 {
                    // Round complete.
                    self.latencies.push(now - self.round_start);
                    self.round += 1;
                    self.round_start = now;
                    self.arrivals = 0;
                    self.release_pending = false;
                    self.release_msg = None;
                    self.released.clear();
                    self.must_arrive = (0..self.n_hosts)
                        .map(NodeId::from)
                        .filter(|&h| h != self.root)
                        .collect();
                }
            }
        }
    }
}

/// Per-host view of the shared [`BarrierEngine`].
pub struct BarrierSource {
    engine: Rc<RefCell<BarrierEngine>>,
    node: NodeId,
}

impl TrafficSource for BarrierSource {
    fn poll(&mut self, now: Cycle) -> Option<MessageSpec> {
        self.engine.borrow_mut().poll(self.node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_root_sends_arrival_once_per_round() {
        let e = BarrierEngine::new(4, NodeId(0), 1);
        let mut s1 = BarrierEngine::source_for(&e, NodeId(1));
        let first = s1.poll(0);
        assert!(matches!(
            first,
            Some(MessageSpec {
                kind: MessageKind::Unicast(NodeId(0)),
                payload_flits: 0
            })
        ));
        assert!(s1.poll(1).is_none(), "only one arrival per round");
    }

    #[test]
    fn root_releases_after_all_arrivals() {
        let e = BarrierEngine::new(3, NodeId(0), 1);
        let mut root = BarrierEngine::source_for(&e, NodeId(0));
        assert!(root.poll(0).is_none());
        e.borrow_mut().on_delivered(MessageId(10), NodeId(0), 5);
        assert!(root.poll(6).is_none(), "one arrival is not enough");
        e.borrow_mut().on_delivered(MessageId(11), NodeId(0), 7);
        let release = root.poll(8).expect("release fires");
        match release.kind {
            MessageKind::Multicast(d) => {
                assert_eq!(d.count(), 2);
                assert!(!d.contains(NodeId(0)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(root.poll(9).is_none(), "release only once");
    }

    #[test]
    fn full_round_advances_and_records_latency() {
        let e = BarrierEngine::new(3, NodeId(0), 2);
        // Round 1: both arrivals, then release deliveries.
        e.borrow_mut().on_delivered(MessageId(1), NodeId(0), 5);
        e.borrow_mut().on_delivered(MessageId(2), NodeId(0), 6);
        let mut root = BarrierEngine::source_for(&e, NodeId(0));
        let _release = root.poll(7).expect("release");
        e.borrow_mut().release_pending = true; // poll set it already; keep state consistent
        e.borrow_mut().on_delivered(MessageId(3), NodeId(1), 20);
        e.borrow_mut().on_delivered(MessageId(3), NodeId(2), 25);
        let eng = e.borrow();
        assert_eq!(eng.completed_rounds(), 1);
        assert_eq!(eng.latencies.summary().max, 25);
        assert!(!eng.done());
    }

    #[test]
    fn done_after_requested_rounds() {
        let e = BarrierEngine::new(2, NodeId(0), 1);
        e.borrow_mut().on_delivered(MessageId(1), NodeId(0), 5);
        let mut root = BarrierEngine::source_for(&e, NodeId(0));
        let _ = root.poll(6).expect("release");
        e.borrow_mut().on_delivered(MessageId(2), NodeId(1), 9);
        assert!(e.borrow().done());
        let mut s1 = BarrierEngine::source_for(&e, NodeId(1));
        assert!(s1.poll(10).is_none(), "no traffic after completion");
    }
}
