//! Property-based tests for the netsim substrate: destination-set algebra,
//! packetization, and link flow-control invariants.
//!
//! The cases are driven by hand-rolled seeded loops over [`SimRng`] streams
//! rather than an external property-testing crate, so the sampled inputs are
//! bit-for-bit reproducible from the constants below. On failure, the case
//! index is in the panic message; re-run with that seed to shrink by hand.

use netsim::destset::DestSet;
use netsim::flit::Flit;
use netsim::header::{PortMask, RoutingHeader};
use netsim::ids::{MessageId, NodeId};
use netsim::link::Link;
use netsim::message::{Message, MessageKind};
use netsim::packet::{packetize, PacketBuilder, PacketIdGen};
use netsim::rng::SimRng;

const N: usize = 96; // non-power-of-two universe to stress word boundaries
const CASES: u64 = 64;

/// One deterministic generator per (test, case) pair.
fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0x9672_0000 ^ test).fork(case)
}

/// Random subset of `0..n`, possibly empty.
fn random_destset(r: &mut SimRng, n: usize) -> DestSet {
    let size = r.below(n);
    let mut s = DestSet::empty(n);
    for _ in 0..size {
        s.insert(NodeId::from(r.below(n)));
    }
    s
}

#[test]
fn destset_union_commutes() {
    for case in 0..CASES {
        let mut r = case_rng(1, case);
        let a = random_destset(&mut r, N);
        let b = random_destset(&mut r, N);
        assert_eq!(a.or(&b), b.or(&a), "case {case}");
    }
}

#[test]
fn destset_intersection_commutes() {
    for case in 0..CASES {
        let mut r = case_rng(2, case);
        let a = random_destset(&mut r, N);
        let b = random_destset(&mut r, N);
        assert_eq!(a.and(&b), b.and(&a), "case {case}");
    }
}

#[test]
fn destset_minus_partitions() {
    for case in 0..CASES {
        let mut r = case_rng(3, case);
        let a = random_destset(&mut r, N);
        let b = random_destset(&mut r, N);
        // a = (a\b) ∪ (a∩b), disjointly.
        let diff = a.minus(&b);
        let inter = a.and(&b);
        assert!(
            !diff.intersects(&inter) || diff.is_empty() || inter.is_empty(),
            "case {case}"
        );
        assert_eq!(diff.or(&inter), a.clone(), "case {case}");
        assert_eq!(diff.count() + inter.count(), a.count(), "case {case}");
    }
}

#[test]
fn destset_iter_roundtrip() {
    for case in 0..CASES {
        let mut r = case_rng(4, case);
        let a = random_destset(&mut r, N);
        let rebuilt = DestSet::from_nodes(N, a.iter());
        assert_eq!(rebuilt, a.clone(), "case {case}");
        // Iteration is strictly ascending.
        let ids: Vec<u32> = a.iter().map(|n| n.0).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "case {case}");
    }
}

#[test]
fn destset_subset_laws() {
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let a = random_destset(&mut r, N);
        let b = random_destset(&mut r, N);
        assert!(a.and(&b).is_subset_of(&a), "case {case}");
        assert!(a.is_subset_of(&a.or(&b)), "case {case}");
        assert_eq!(a.intersects(&b), !a.and(&b).is_empty(), "case {case}");
    }
}

#[test]
fn portmask_roundtrip() {
    for case in 0..CASES {
        let mut r = case_rng(6, case);
        let mut ports = std::collections::BTreeSet::new();
        for _ in 0..r.below(16) {
            ports.insert(r.below(16));
        }
        let mask = PortMask::from_ports(ports.iter().copied());
        assert_eq!(mask.count(), ports.len(), "case {case}");
        let back: std::collections::BTreeSet<usize> = mask.iter().collect();
        assert_eq!(back, ports, "case {case}");
    }
}

#[test]
fn bitstring_restrict_shrinks() {
    for case in 0..CASES {
        let mut r = case_rng(7, case);
        let a = random_destset(&mut r, N);
        let b = random_destset(&mut r, N);
        let h = RoutingHeader::bitstring(a.clone());
        match h.restrict_to(&b) {
            RoutingHeader::BitString { dests } => {
                assert!(dests.is_subset_of(&a), "case {case}");
                assert!(dests.is_subset_of(&b), "case {case}");
                assert_eq!(dests, a.and(&b), "case {case}");
            }
            other => panic!("case {case}: unexpected header {other:?}"),
        }
    }
}

#[test]
fn packetize_preserves_payload() {
    for case in 0..CASES {
        let mut r = case_rng(8, case);
        let payload = r.below(2000) as u16;
        let max = 1 + r.below(255) as u16;
        let src = r.below(16) as u32;
        let dst = r.below(16) as u32;
        let msg = Message::new(
            MessageId(1),
            NodeId(src),
            MessageKind::Unicast(NodeId(dst)),
            payload,
            0,
        );
        let mut ids = PacketIdGen::new();
        let pkts = packetize(&msg, max, 16, 8, &mut ids);
        let total: u32 = pkts.iter().map(|p| u32::from(p.payload_flits())).sum();
        assert_eq!(total, u32::from(payload), "case {case}");
        assert!(pkts.iter().all(|p| p.payload_flits() <= max), "case {case}");
        // Sequence numbers are contiguous and sized consistently.
        for (i, p) in pkts.iter().enumerate() {
            assert_eq!(usize::from(p.seq()), i, "case {case}");
            assert_eq!(usize::from(p.n_packets()), pkts.len(), "case {case}");
        }
        assert!(pkts.last().unwrap().is_last(), "case {case}");
        // Ids unique.
        let mut seen: Vec<_> = pkts.iter().map(|p| p.id()).collect();
        seen.dedup();
        assert_eq!(seen.len(), pkts.len(), "case {case}");
    }
}

/// Link invariants under an arbitrary receiver schedule: flits arrive
/// in order, exactly once, never before their delay, and all credits
/// come back.
#[test]
fn link_flow_control_invariants() {
    for case in 0..CASES {
        let mut r = case_rng(9, case);
        let delay = 1 + r.below(4) as u32;
        let credits = 1 + r.below(7) as u32;
        let recv_pattern: Vec<bool> = (0..10 + r.below(190)).map(|_| r.chance(0.5)).collect();

        let mut link = Link::new(delay, credits);
        let pkt = std::rc::Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), 60, 16).build());
        let total = pkt.total_flits();
        let mut sent = 0u16;
        let mut received = 0u16;
        let mut outstanding_credits = 0u32;
        for (now, &recv_now) in recv_pattern.iter().enumerate() {
            let now = now as u64;
            link.begin_cycle(now);
            if sent < total && link.can_send(now) {
                link.send(now, Flit::new(pkt.clone(), sent));
                sent += 1;
                outstanding_credits += 1;
            }
            if recv_now {
                if let Some(f) = link.recv(now) {
                    assert_eq!(f.idx(), received, "case {case}: in-order delivery");
                    received += 1;
                    link.return_credit(now);
                    outstanding_credits -= 1;
                }
            }
        }
        // Drain: consume everything left.
        let start = recv_pattern.len() as u64;
        // With a window of one credit a flit's slot recycles only after a
        // full round trip (2·delay + epsilon cycles).
        for extra in 0..(u64::from(total) * (2 * u64::from(delay) + 4) + 40) {
            let now = start + extra;
            link.begin_cycle(now);
            if sent < total && link.can_send(now) {
                link.send(now, Flit::new(pkt.clone(), sent));
                sent += 1;
                outstanding_credits += 1;
            }
            if let Some(f) = link.recv(now) {
                assert_eq!(f.idx(), received, "case {case}");
                received += 1;
                link.return_credit(now);
                outstanding_credits -= 1;
            }
        }
        assert_eq!(sent, total, "case {case}: everything sent");
        assert_eq!(
            received, total,
            "case {case}: everything received exactly once"
        );
        assert_eq!(outstanding_credits, 0, "case {case}");
        assert_eq!(link.in_flight(), 0, "case {case}");
        // All credits returned to the sender after propagation.
        link.begin_cycle(start + 10_000);
        assert_eq!(link.credits(), credits, "case {case}");
    }
}
