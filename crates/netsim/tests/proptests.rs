//! Property-based tests for the netsim substrate: destination-set algebra,
//! packetization, and link flow-control invariants.

use netsim::destset::DestSet;
use netsim::flit::Flit;
use netsim::header::{PortMask, RoutingHeader};
use netsim::ids::{MessageId, NodeId};
use netsim::link::Link;
use netsim::message::{Message, MessageKind};
use netsim::packet::{packetize, PacketBuilder, PacketIdGen};
use proptest::collection::{btree_set, vec};
use proptest::prelude::*;

const N: usize = 96; // non-power-of-two universe to stress word boundaries

fn destset(n: usize) -> impl Strategy<Value = DestSet> {
    btree_set(0..n as u32, 0..n).prop_map(move |s| DestSet::from_nodes(n, s.into_iter().map(NodeId)))
}

proptest! {
    #[test]
    fn destset_union_commutes(a in destset(N), b in destset(N)) {
        prop_assert_eq!(a.or(&b), b.or(&a));
    }

    #[test]
    fn destset_intersection_commutes(a in destset(N), b in destset(N)) {
        prop_assert_eq!(a.and(&b), b.and(&a));
    }

    #[test]
    fn destset_minus_partitions(a in destset(N), b in destset(N)) {
        // a = (a\b) ∪ (a∩b), disjointly.
        let diff = a.minus(&b);
        let inter = a.and(&b);
        prop_assert!(!diff.intersects(&inter) || diff.is_empty() || inter.is_empty());
        prop_assert_eq!(diff.or(&inter), a.clone());
        prop_assert_eq!(diff.count() + inter.count(), a.count());
    }

    #[test]
    fn destset_iter_roundtrip(a in destset(N)) {
        let rebuilt = DestSet::from_nodes(N, a.iter());
        prop_assert_eq!(rebuilt, a.clone());
        // Iteration is strictly ascending.
        let ids: Vec<u32> = a.iter().map(|n| n.0).collect();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn destset_subset_laws(a in destset(N), b in destset(N)) {
        prop_assert!(a.and(&b).is_subset_of(&a));
        prop_assert!(a.is_subset_of(&a.or(&b)));
        prop_assert_eq!(a.intersects(&b), !a.and(&b).is_empty());
    }

    #[test]
    fn portmask_roundtrip(ports in btree_set(0usize..16, 0..16)) {
        let mask = PortMask::from_ports(ports.iter().copied());
        prop_assert_eq!(mask.count(), ports.len());
        let back: std::collections::BTreeSet<usize> = mask.iter().collect();
        prop_assert_eq!(back, ports);
    }

    #[test]
    fn bitstring_restrict_shrinks(a in destset(N), b in destset(N)) {
        let h = RoutingHeader::bitstring(a.clone());
        match h.restrict_to(&b) {
            RoutingHeader::BitString { dests } => {
                prop_assert!(dests.is_subset_of(&a));
                prop_assert!(dests.is_subset_of(&b));
                prop_assert_eq!(dests, a.and(&b));
            }
            other => prop_assert!(false, "unexpected header {:?}", other),
        }
    }

    #[test]
    fn packetize_preserves_payload(
        payload in 0u16..2000,
        max in 1u16..256,
        src in 0u32..16,
        dst in 0u32..16,
    ) {
        let msg = Message::new(
            MessageId(1),
            NodeId(src),
            MessageKind::Unicast(NodeId(dst)),
            payload,
            0,
        );
        let mut ids = PacketIdGen::new();
        let pkts = packetize(&msg, max, 16, 8, &mut ids);
        let total: u32 = pkts.iter().map(|p| u32::from(p.payload_flits())).sum();
        prop_assert_eq!(total, u32::from(payload));
        prop_assert!(pkts.iter().all(|p| p.payload_flits() <= max));
        // Sequence numbers are contiguous and sized consistently.
        for (i, p) in pkts.iter().enumerate() {
            prop_assert_eq!(usize::from(p.seq()), i);
            prop_assert_eq!(usize::from(p.n_packets()), pkts.len());
        }
        prop_assert!(pkts.last().unwrap().is_last());
        // Ids unique.
        let mut seen: Vec<_> = pkts.iter().map(|p| p.id()).collect();
        seen.dedup();
        prop_assert_eq!(seen.len(), pkts.len());
    }

    /// Link invariants under an arbitrary receiver schedule: flits arrive
    /// in order, exactly once, never before their delay, and all credits
    /// come back.
    #[test]
    fn link_flow_control_invariants(
        delay in 1u32..5,
        credits in 1u32..8,
        recv_pattern in vec(any::<bool>(), 10..200),
    ) {
        let mut link = Link::new(delay, credits);
        let pkt = std::rc::Rc::new(
            PacketBuilder::unicast(NodeId(0), NodeId(1), 60, 16).build(),
        );
        let total = pkt.total_flits();
        let mut sent = 0u16;
        let mut received = 0u16;
        let mut outstanding_credits = 0u32;
        for (now, &recv_now) in recv_pattern.iter().enumerate() {
            let now = now as u64;
            link.begin_cycle(now);
            if sent < total && link.can_send(now) {
                link.send(now, Flit::new(pkt.clone(), sent));
                sent += 1;
                outstanding_credits += 1;
            }
            if recv_now {
                if let Some(f) = link.recv(now) {
                    prop_assert_eq!(f.idx(), received, "in-order delivery");
                    received += 1;
                    link.return_credit(now);
                    outstanding_credits -= 1;
                }
            }
        }
        // Drain: consume everything left.
        let start = recv_pattern.len() as u64;
        // With a window of one credit a flit's slot recycles only after a
        // full round trip (2·delay + epsilon cycles).
        for extra in 0..(u64::from(total) * (2 * u64::from(delay) + 4) + 40) {
            let now = start + extra;
            link.begin_cycle(now);
            if sent < total && link.can_send(now) {
                link.send(now, Flit::new(pkt.clone(), sent));
                sent += 1;
                outstanding_credits += 1;
            }
            if let Some(f) = link.recv(now) {
                prop_assert_eq!(f.idx(), received);
                received += 1;
                link.return_credit(now);
                outstanding_credits -= 1;
            }
        }
        prop_assert_eq!(sent, total, "everything sent");
        prop_assert_eq!(received, total, "everything received exactly once");
        prop_assert_eq!(outstanding_credits, 0);
        prop_assert_eq!(link.in_flight(), 0);
        // All credits returned to the sender after propagation.
        link.begin_cycle(start + 10_000);
        prop_assert_eq!(link.credits(), credits);
    }
}
