//! Strongly-typed identifiers for simulation entities.
//!
//! Newtypes keep host, switch, link, packet and message identifiers from being
//! mixed up at compile time (C-NEWTYPE). All of them are cheap `Copy` types
//! with ordering and hashing, so they work as map keys and sort keys.

use std::fmt;

/// Bit set in [`MessageId`]s and [`PacketId`]s synthesized *inside
/// switches* (e.g. combined barrier-gather worms and their release
/// broadcasts), keeping them disjoint from host-generated ids.
pub const SWITCH_MSG_BIT: u64 = 1 << 62;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }

        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                $name(v as $inner)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A processing node (host / network interface) in the system.
    NodeId,
    u32,
    "n"
);
id_type!(
    /// A switch in the interconnection network.
    SwitchId,
    u32,
    "s"
);
id_type!(
    /// A unidirectional link registered with the [`crate::engine::Engine`].
    LinkId,
    u32,
    "l"
);
id_type!(
    /// An end-to-end message, possibly segmented into several packets.
    MessageId,
    u64,
    "m"
);
id_type!(
    /// A single network packet (one worm).
    PacketId,
    u64,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_are_distinct_types() {
        // This is mostly a compile-time property; check basic round-trips.
        let n = NodeId(7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), n);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn ids_order_and_hash() {
        let mut set = HashSet::new();
        set.insert(PacketId(1));
        set.insert(PacketId(2));
        set.insert(PacketId(1));
        assert_eq!(set.len(), 2);
        assert!(PacketId(1) < PacketId(2));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(MessageId::default(), MessageId(0));
        assert_eq!(SwitchId::default().index(), 0);
    }

    #[test]
    fn display_prefixes() {
        assert_eq!(SwitchId(3).to_string(), "s3");
        assert_eq!(LinkId(9).to_string(), "l9");
        assert_eq!(MessageId(5).to_string(), "m5");
        assert_eq!(PacketId(5).to_string(), "p5");
    }
}
