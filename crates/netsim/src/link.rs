//! Unidirectional links with fixed propagation delay and credit-based flow
//! control.
//!
//! Each link moves at most one flit per cycle in the forward direction and
//! one credit per cycle in the reverse direction. The credit window equals
//! the receiver-side staging buffer the downstream component exposes: the
//! sender spends one credit per flit, and the receiver returns a credit when
//! it frees the corresponding staging slot. A full-duplex physical cable is
//! modeled as two `Link`s.

use crate::flit::Flit;
use crate::Cycle;
use std::collections::VecDeque;

/// A unidirectional, credit flow-controlled link.
///
/// Links are owned by the [`crate::engine::Engine`]; components access them
/// through [`crate::engine::PortIo`].
#[derive(Debug)]
pub struct Link {
    delay: u32,
    credits: u32,
    max_credits: u32,
    flit_q: VecDeque<(Cycle, Flit)>,
    credit_q: VecDeque<Cycle>,
    last_recv: Option<Cycle>,
    last_send: Option<Cycle>,
    total_flits: u64,
}

impl Link {
    /// Creates a link with `delay ≥ 1` cycles of propagation and a credit
    /// window of `credits` flits.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` (same-cycle visibility would make component
    /// ordering observable) or `credits == 0`.
    pub fn new(delay: u32, credits: u32) -> Self {
        assert!(delay >= 1, "link delay must be at least one cycle");
        assert!(credits >= 1, "credit window must be at least one flit");
        Link {
            delay,
            credits,
            max_credits: credits,
            flit_q: VecDeque::new(),
            credit_q: VecDeque::new(),
            last_recv: None,
            last_send: None,
            total_flits: 0,
        }
    }

    /// Propagation delay in cycles.
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// Credits currently available to the sender.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Configured credit window.
    pub fn max_credits(&self) -> u32 {
        self.max_credits
    }

    /// Total flits ever sent on this link.
    pub fn total_flits(&self) -> u64 {
        self.total_flits
    }

    /// Number of flits currently in flight (sent but not received).
    pub fn in_flight(&self) -> usize {
        self.flit_q.len()
    }

    /// Makes credits that have propagated back available to the sender.
    ///
    /// The [`crate::engine::Engine`] calls this at the start of every
    /// cycle; call it yourself only when driving a standalone `Link`
    /// (e.g. in tests).
    pub fn begin_cycle(&mut self, now: Cycle) {
        while let Some(&arr) = self.credit_q.front() {
            if arr <= now {
                self.credit_q.pop_front();
                self.credits += 1;
                debug_assert!(
                    self.credits <= self.max_credits,
                    "credit overflow: more credits returned than spent"
                );
            } else {
                break;
            }
        }
    }

    /// Sender side: `true` if a flit may be sent this cycle.
    pub fn can_send(&self, now: Cycle) -> bool {
        self.credits > 0 && self.last_send != Some(now)
    }

    /// Sender side: sends a flit, consuming a credit.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available or a flit was already sent this
    /// cycle (bandwidth is one flit per cycle).
    pub fn send(&mut self, now: Cycle, flit: Flit) {
        assert!(self.credits > 0, "send without credit");
        assert_ne!(self.last_send, Some(now), "link bandwidth exceeded");
        self.credits -= 1;
        self.last_send = Some(now);
        self.total_flits += 1;
        self.flit_q.push_back((now + self.delay as Cycle, flit));
    }

    /// Receiver side: the flit arriving this cycle, if any, without
    /// consuming it.
    pub fn peek(&self, now: Cycle) -> Option<&Flit> {
        match self.flit_q.front() {
            Some((arr, flit)) if *arr <= now => Some(flit),
            _ => None,
        }
    }

    /// Receiver side: consumes the arrived flit (at most one per cycle).
    ///
    /// The receiver must eventually call [`Link::return_credit`] once per
    /// consumed flit, when the staging slot it occupied frees up.
    pub fn recv(&mut self, now: Cycle) -> Option<Flit> {
        if self.last_recv == Some(now) {
            return None;
        }
        match self.flit_q.front() {
            Some((arr, _)) if *arr <= now => {
                self.last_recv = Some(now);
                Some(self.flit_q.pop_front().expect("front exists").1)
            }
            _ => None,
        }
    }

    /// Receiver side: returns one credit toward the sender; it becomes
    /// usable after the propagation delay.
    pub fn return_credit(&mut self, now: Cycle) {
        self.credit_q.push_back(now + self.delay as Cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::PacketBuilder;
    use std::rc::Rc;

    fn flit() -> Flit {
        let p = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), 4, 16).build());
        Flit::new(p, 0)
    }

    #[test]
    fn delivery_respects_delay() {
        let mut l = Link::new(3, 4);
        l.begin_cycle(0);
        assert!(l.can_send(0));
        l.send(0, flit());
        assert_eq!(l.in_flight(), 1);
        for now in 1..3 {
            l.begin_cycle(now);
            assert!(l.peek(now).is_none());
            assert!(l.recv(now).is_none());
        }
        l.begin_cycle(3);
        assert!(l.peek(3).is_some());
        assert!(l.recv(3).is_some());
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.total_flits(), 1);
    }

    #[test]
    fn bandwidth_is_one_flit_per_cycle() {
        let mut l = Link::new(1, 4);
        l.begin_cycle(0);
        l.send(0, flit());
        assert!(!l.can_send(0), "second send same cycle must be refused");
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeded")]
    fn double_send_panics() {
        let mut l = Link::new(1, 4);
        l.send(0, flit());
        l.send(0, flit());
    }

    #[test]
    fn credits_block_and_return() {
        let mut l = Link::new(1, 2);
        l.begin_cycle(0);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
        assert_eq!(l.credits(), 0);
        assert!(!l.can_send(2));
        // Receiver consumes and frees one slot at cycle 2.
        l.begin_cycle(2);
        assert!(l.recv(2).is_some());
        l.return_credit(2);
        // Credit arrives at sender at cycle 3.
        l.begin_cycle(3);
        assert!(l.can_send(3));
        assert_eq!(l.credits(), 1);
    }

    #[test]
    fn recv_limited_to_one_per_cycle() {
        let mut l = Link::new(1, 4);
        l.begin_cycle(0);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
        l.begin_cycle(2);
        assert!(l.recv(2).is_some());
        assert!(l.recv(2).is_none(), "only one flit per cycle may arrive");
        l.begin_cycle(3);
        assert!(l.recv(3).is_some());
    }

    #[test]
    #[should_panic(expected = "delay must be at least one")]
    fn zero_delay_rejected() {
        let _ = Link::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "send without credit")]
    fn send_without_credit_panics() {
        let mut l = Link::new(1, 1);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
    }
}
