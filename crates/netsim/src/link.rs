//! Unidirectional links with fixed propagation delay and credit-based flow
//! control.
//!
//! Each link moves at most one flit per cycle in the forward direction and
//! one credit per cycle in the reverse direction. The credit window equals
//! the receiver-side staging buffer the downstream component exposes: the
//! sender spends one credit per flit, and the receiver returns a credit when
//! it frees the corresponding staging slot. A full-duplex physical cable is
//! modeled as two `Link`s.

use crate::fault::{FaultCounters, LinkFaults};
use crate::flit::Flit;
use crate::ids::LinkId;
use crate::Cycle;
use std::collections::VecDeque;

/// One queued flit with its arrival time and injected fate.
#[derive(Debug)]
struct InFlight {
    arrives: Cycle,
    flit: Flit,
    dropped: bool,
}

/// One observed link up/down transition, published by the engine.
///
/// Events come from two sources: the stochastic outage schedule of an
/// installed [`crate::fault::FaultPlan`], and scripted outage windows
/// ([`Link::script_outage`]). Recording is opt-in per link
/// ([`Link::publish_transitions`]) so runs that never drain the event
/// stream do not accumulate unbounded history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEvent {
    /// The link that changed state.
    pub link: LinkId,
    /// Cycle at which the transition took effect.
    pub at: Cycle,
    /// `true` = the link went down, `false` = it came back up.
    pub down: bool,
}

/// A unidirectional, credit flow-controlled link.
///
/// Links are owned by the [`crate::engine::Engine`]; components access them
/// through [`crate::engine::PortIo`].
///
/// An optional [`LinkFaults`] stream (installed via
/// [`Link::install_faults`]) can condemn worms, corrupt flits, take the
/// link down for intervals, and leak returned credits. Fault-free links
/// pay only an `Option` check on these paths.
#[derive(Debug)]
pub struct Link {
    delay: u32,
    credits: u32,
    max_credits: u32,
    flit_q: VecDeque<InFlight>,
    credit_q: VecDeque<Cycle>,
    last_recv: Option<Cycle>,
    last_send: Option<Cycle>,
    total_flits: u64,
    faults: Option<Box<LinkFaults>>,
    /// Scripted outage windows `[from, until)`, in schedule order.
    scripted: Vec<(Cycle, Cycle)>,
    /// Administrative down state, toggled by a control plane
    /// ([`Link::set_forced_down`]) rather than by the fault clock.
    forced_down: bool,
    /// Raw up/down state at the last `begin_cycle`, for edge detection.
    was_down: bool,
    /// When set, up/down transitions are appended to `transitions`.
    publish: bool,
    /// Recorded transitions awaiting [`Link::take_transitions`].
    transitions: Vec<(Cycle, bool)>,
    /// Membership flag for the engine's active-link set (the engine calls
    /// [`Link::begin_cycle`] only on links where this is set).
    pub(crate) active: bool,
}

impl Link {
    /// Creates a link with `delay ≥ 1` cycles of propagation and a credit
    /// window of `credits` flits.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` (same-cycle visibility would make component
    /// ordering observable) or `credits == 0`.
    pub fn new(delay: u32, credits: u32) -> Self {
        assert!(delay >= 1, "link delay must be at least one cycle");
        assert!(credits >= 1, "credit window must be at least one flit");
        Link {
            delay,
            credits,
            max_credits: credits,
            // At most `credits` flits can be in flight (each send spends a
            // credit) and at most `credits` credits can be propagating
            // back, so both queues never reallocate after this.
            flit_q: VecDeque::with_capacity(credits as usize),
            credit_q: VecDeque::with_capacity(credits as usize),
            last_recv: None,
            last_send: None,
            total_flits: 0,
            faults: None,
            scripted: Vec::new(),
            forced_down: false,
            was_down: false,
            publish: false,
            transitions: Vec::new(),
            active: false,
        }
    }

    /// Installs a fault stream on this link (see [`crate::fault`]).
    pub fn install_faults(&mut self, faults: LinkFaults) {
        self.faults = Some(Box::new(faults));
    }

    /// Schedules a deterministic outage: the link refuses new flits during
    /// `[from, until)`. In-flight flits still arrive and credits still
    /// propagate, exactly like a stochastic [`crate::fault::FaultPlan`]
    /// outage. Transition publication is enabled as a side effect so the
    /// outage is observable through [`Link::take_transitions`].
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn script_outage(&mut self, from: Cycle, until: Cycle) {
        assert!(until > from, "outage window must be non-empty");
        self.scripted.push((from, until));
        self.publish = true;
    }

    /// Enables recording of up/down transitions on this link.
    pub fn publish_transitions(&mut self) {
        self.publish = true;
    }

    /// Sets the administrative (control-plane-driven) down state. Unlike
    /// [`Link::script_outage`] the state has no scheduled end: it holds
    /// until the next call. The edge is detected and published immediately
    /// (publication is enabled as a side effect), so a resident service
    /// can drive link state from a command stream without waiting for the
    /// link to become active in the engine's ledger.
    pub fn set_forced_down(&mut self, now: Cycle, down: bool) {
        self.forced_down = down;
        self.publish = true;
        let raw = self.is_down(now);
        if raw != self.was_down {
            self.was_down = raw;
            self.transitions.push((now, raw));
        }
    }

    /// `true` while the administrative down state is set.
    pub fn forced_down(&self) -> bool {
        self.forced_down
    }

    /// Drains the recorded up/down transitions as `(cycle, down)` pairs.
    pub fn take_transitions(&mut self) -> Vec<(Cycle, bool)> {
        std::mem::take(&mut self.transitions)
    }

    /// `true` while a scripted outage window covers `now`.
    fn scripted_down(&self, now: Cycle) -> bool {
        self.scripted
            .iter()
            .any(|&(from, until)| (from..until).contains(&now))
    }

    /// `true` if the link refuses new flits this cycle, from an
    /// administrative hold, a scripted window, or the installed fault
    /// stream's outage schedule.
    pub fn is_down(&self, now: Cycle) -> bool {
        self.forced_down
            || self.scripted_down(now)
            || self.faults.as_deref().is_some_and(|f| f.is_down(now))
    }

    /// Injection totals for this link, if faults are installed.
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_deref().map(|f| &f.counters)
    }

    /// Propagation delay in cycles.
    pub fn delay(&self) -> u32 {
        self.delay
    }

    /// Credits currently available to the sender.
    pub fn credits(&self) -> u32 {
        self.credits
    }

    /// Configured credit window.
    pub fn max_credits(&self) -> u32 {
        self.max_credits
    }

    /// Total flits ever sent on this link.
    pub fn total_flits(&self) -> u64 {
        self.total_flits
    }

    /// Number of flits currently in flight (sent but not received).
    pub fn in_flight(&self) -> usize {
        self.flit_q.len()
    }

    /// Absolute cycle at which the earliest in-flight flit arrives, or
    /// `None` if nothing is in flight. Arrival times are monotone (fixed
    /// delay), so the queue front is the minimum. Condemned flits count
    /// too — a wake they cause is spurious but harmless, and filtering
    /// them here would leak fault state into scheduling decisions.
    pub fn next_arrival(&self) -> Option<Cycle> {
        self.flit_q.front().map(|q| q.arrives)
    }

    /// Makes credits that have propagated back available to the sender.
    /// Returns the number of condemned flits that evaporated this cycle
    /// (always 0 on fault-free links) so callers can maintain in-flight
    /// counters.
    ///
    /// The [`crate::engine::Engine`] calls this only on *active* links —
    /// ones with credits propagating back or a fault stream installed (see
    /// [`Link::needs_begin_cycle`]); skipped cycles are free because all
    /// processing here is keyed on absolute arrival times. Call it yourself
    /// only when driving a standalone `Link` (e.g. in tests).
    pub fn begin_cycle(&mut self, now: Cycle) -> usize {
        while let Some(&arr) = self.credit_q.front() {
            if arr <= now {
                self.credit_q.pop_front();
                self.credits += 1;
                debug_assert!(
                    self.credits <= self.max_credits,
                    "credit overflow: more credits returned than spent"
                );
            } else {
                break;
            }
        }
        let mut evaporated = 0;
        if let Some(f) = self.faults.as_deref_mut() {
            f.tick_outages(now);
            // Condemned flits evaporate on arrival: the link consumes them
            // itself and frees their staging slots, so downstream never sees
            // any part of a dropped worm. Arrival times are monotone, so
            // only front entries can have arrived.
            while matches!(self.flit_q.front(), Some(q) if q.arrives <= now && q.dropped) {
                self.flit_q.pop_front();
                self.credit_q.push_back(now + self.delay as Cycle);
                evaporated += 1;
            }
        }
        let down = self.is_down(now);
        if down != self.was_down {
            self.was_down = down;
            if self.publish {
                self.transitions.push((now, down));
            }
        }
        evaporated
    }

    /// `true` while this link still needs [`Link::begin_cycle`] every
    /// cycle: credits are propagating back, a fault stream is installed
    /// (outage schedules and condemned-flit evaporation advance with time),
    /// or scripted outage windows need edge detection.
    pub fn needs_begin_cycle(&self) -> bool {
        !self.credit_q.is_empty() || self.faults.is_some() || !self.scripted.is_empty()
    }

    /// Sender side: `true` if a flit may be sent this cycle.
    pub fn can_send(&self, now: Cycle) -> bool {
        self.credits > 0 && self.last_send != Some(now) && !self.is_down(now)
    }

    /// Sender side: sends a flit, consuming a credit.
    ///
    /// # Panics
    ///
    /// Panics if no credit is available or a flit was already sent this
    /// cycle (bandwidth is one flit per cycle).
    pub fn send(&mut self, now: Cycle, mut flit: Flit) {
        assert!(self.credits > 0, "send without credit");
        assert_ne!(self.last_send, Some(now), "link bandwidth exceeded");
        let mut dropped = false;
        if let Some(f) = self.faults.as_deref_mut() {
            dropped = f.roll_drop(flit.is_head(), flit.packet().total_flits());
            if !dropped && f.roll_corrupt() {
                flit.mark_corrupt();
            }
        }
        self.credits -= 1;
        self.last_send = Some(now);
        self.total_flits += 1;
        self.flit_q.push_back(InFlight {
            arrives: now + self.delay as Cycle,
            flit,
            dropped,
        });
    }

    /// Receiver side: the flit arriving this cycle, if any, without
    /// consuming it.
    pub fn peek(&self, now: Cycle) -> Option<&Flit> {
        match self.flit_q.front() {
            Some(q) if q.arrives <= now && !q.dropped => Some(&q.flit),
            _ => None,
        }
    }

    /// Receiver side: consumes the arrived flit (at most one per cycle).
    ///
    /// The receiver must eventually call [`Link::return_credit`] once per
    /// consumed flit, when the staging slot it occupied frees up.
    pub fn recv(&mut self, now: Cycle) -> Option<Flit> {
        if self.last_recv == Some(now) {
            return None;
        }
        match self.flit_q.front() {
            Some(q) if q.arrives <= now && !q.dropped => {
                self.last_recv = Some(now);
                Some(self.flit_q.pop_front().expect("front exists").flit)
            }
            _ => None,
        }
    }

    /// Asserts the credit-conservation invariant: every credit of the
    /// configured window is either available to the sender, travelling in
    /// one of the two queues, permanently leaked by an injected fault, or
    /// held by the receiver for a consumed-but-unfreed staging slot. The
    /// receiver-held share is not observable from the link, so the check is
    /// an inequality — anything *above* the window means a credit was
    /// forged.
    ///
    /// Called by the engine every cycle under the `invariant-audit`
    /// feature; cheap enough to call from tests directly.
    pub fn audit_credit_conservation(&self) {
        let leaked = self.fault_counters().map_or(0, |c| c.credits_leaked);
        let accounted = u64::from(self.credits)
            + self.flit_q.len() as u64
            + self.credit_q.len() as u64
            + leaked;
        assert!(
            accounted <= u64::from(self.max_credits),
            "credit conservation violated: {} credits accounted \
             (available {} + in-flight {} + returning {} + leaked {leaked}) \
             exceed window {}",
            accounted,
            self.credits,
            self.flit_q.len(),
            self.credit_q.len(),
            self.max_credits,
        );
    }

    /// Receiver side: returns one credit toward the sender; it becomes
    /// usable after the propagation delay.
    ///
    /// Under an installed fault stream the credit may leak (vanish), but
    /// never below a window of one — a fully wedged link would be a cut
    /// cable, which is outside the recoverable fault model.
    pub fn return_credit(&mut self, now: Cycle) {
        if let Some(f) = self.faults.as_deref_mut() {
            // At most max_credits - 1 may ever leak, so one credit always
            // keeps circulating and the link retains forward progress.
            if f.roll_credit_leak(u64::from(self.max_credits - 1)) {
                return;
            }
        }
        self.credit_q.push_back(now + self.delay as Cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::PacketBuilder;
    use std::rc::Rc;

    fn flit() -> Flit {
        let p = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), 4, 16).build());
        Flit::new(p, 0)
    }

    #[test]
    fn delivery_respects_delay() {
        let mut l = Link::new(3, 4);
        l.begin_cycle(0);
        assert!(l.can_send(0));
        l.send(0, flit());
        assert_eq!(l.in_flight(), 1);
        for now in 1..3 {
            l.begin_cycle(now);
            assert!(l.peek(now).is_none());
            assert!(l.recv(now).is_none());
        }
        l.begin_cycle(3);
        assert!(l.peek(3).is_some());
        assert!(l.recv(3).is_some());
        assert_eq!(l.in_flight(), 0);
        assert_eq!(l.total_flits(), 1);
    }

    #[test]
    fn bandwidth_is_one_flit_per_cycle() {
        let mut l = Link::new(1, 4);
        l.begin_cycle(0);
        l.send(0, flit());
        assert!(!l.can_send(0), "second send same cycle must be refused");
    }

    #[test]
    #[should_panic(expected = "bandwidth exceeded")]
    fn double_send_panics() {
        let mut l = Link::new(1, 4);
        l.send(0, flit());
        l.send(0, flit());
    }

    #[test]
    fn credits_block_and_return() {
        let mut l = Link::new(1, 2);
        l.begin_cycle(0);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
        assert_eq!(l.credits(), 0);
        assert!(!l.can_send(2));
        // Receiver consumes and frees one slot at cycle 2.
        l.begin_cycle(2);
        assert!(l.recv(2).is_some());
        l.return_credit(2);
        // Credit arrives at sender at cycle 3.
        l.begin_cycle(3);
        assert!(l.can_send(3));
        assert_eq!(l.credits(), 1);
    }

    #[test]
    fn recv_limited_to_one_per_cycle() {
        let mut l = Link::new(1, 4);
        l.begin_cycle(0);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
        l.begin_cycle(2);
        assert!(l.recv(2).is_some());
        assert!(l.recv(2).is_none(), "only one flit per cycle may arrive");
        l.begin_cycle(3);
        assert!(l.recv(3).is_some());
    }

    #[test]
    #[should_panic(expected = "delay must be at least one")]
    fn zero_delay_rejected() {
        let _ = Link::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "send without credit")]
    fn send_without_credit_panics() {
        let mut l = Link::new(1, 1);
        l.send(0, flit());
        l.begin_cycle(1);
        l.send(1, flit());
    }

    mod scripted {
        use super::*;

        #[test]
        fn window_blocks_sender_and_publishes_transitions() {
            let mut l = Link::new(1, 4);
            l.script_outage(10, 20);
            for now in 0..30 {
                l.begin_cycle(now);
                let expect_down = (10..20).contains(&now);
                assert_eq!(l.is_down(now), expect_down, "cycle {now}");
                assert_eq!(l.can_send(now), !expect_down, "cycle {now}");
            }
            assert_eq!(l.take_transitions(), vec![(10, true), (20, false)]);
            assert!(l.take_transitions().is_empty(), "drain empties the log");
        }

        #[test]
        fn in_flight_flits_survive_the_outage() {
            let mut l = Link::new(3, 4);
            l.script_outage(1, 50);
            l.begin_cycle(0);
            l.send(0, flit());
            for now in 1..=3 {
                l.begin_cycle(now);
            }
            assert!(l.recv(3).is_some(), "flit sent before outage arrives");
            assert!(!l.can_send(3), "but the sender is blocked");
        }

        #[test]
        fn needs_begin_cycle_while_scripted() {
            let mut l = Link::new(1, 4);
            assert!(!l.needs_begin_cycle());
            l.script_outage(5, 6);
            assert!(l.needs_begin_cycle());
        }

        #[test]
        #[should_panic(expected = "non-empty")]
        fn empty_window_rejected() {
            let mut l = Link::new(1, 1);
            l.script_outage(7, 7);
        }
    }

    mod faults {
        use super::*;
        use crate::fault::FaultPlan;
        use crate::ids::LinkId;

        /// Sends every flit of one worm through `l`, consuming arrivals each
        /// cycle; returns (flits received, any corrupt, credits at rest),
        /// handing the link back for counter inspection.
        fn push_worm_through(mut l: Link, payload: u16) -> ((u16, bool, u32), Link) {
            let p = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), payload, 16).build());
            let total = p.total_flits();
            let mut sent = 0u16;
            let mut got = 0u16;
            let mut corrupt = false;
            for now in 0..10_000u64 {
                l.begin_cycle(now);
                if sent < total && l.can_send(now) {
                    l.send(now, Flit::new(p.clone(), sent));
                    sent += 1;
                }
                if let Some(f) = l.recv(now) {
                    corrupt |= f.corrupted();
                    got += 1;
                    l.return_credit(now);
                }
                if sent == total && l.in_flight() == 0 && now > 200 {
                    l.begin_cycle(now + 100);
                    let credits = l.credits();
                    return ((got, corrupt, credits), l);
                }
            }
            panic!("worm never drained");
        }

        #[test]
        fn certain_drop_swallows_whole_worm_and_returns_credits() {
            let mut l = Link::new(2, 3);
            l.install_faults(FaultPlan::drops(5, 1.0).for_link(LinkId::from(0usize)));
            let ((got, _, credits), l) = push_worm_through(l, 6);
            assert_eq!(got, 0, "condemned worm must not surface");
            assert_eq!(credits, 3, "link self-returns credits for dropped flits");
            let c = l.fault_counters().unwrap();
            assert_eq!(c.worms_dropped, 1);
            assert_eq!(c.flits_dropped, 8);
        }

        #[test]
        fn certain_corruption_marks_but_delivers() {
            let mut l = Link::new(1, 4);
            let plan = FaultPlan {
                flit_corrupt: 1.0,
                ..FaultPlan::none(5)
            };
            l.install_faults(plan.for_link(LinkId::from(0usize)));
            let ((got, corrupt, credits), l) = push_worm_through(l, 6);
            assert_eq!(got, 8, "corrupt flits still arrive");
            assert!(corrupt);
            assert_eq!(credits, 4);
            assert_eq!(l.fault_counters().unwrap().flits_corrupted, 8);
        }

        #[test]
        fn outage_blocks_sender_but_preserves_flits() {
            let mut l = Link::new(1, 8);
            let plan = FaultPlan {
                down_every: 20,
                down_len: 10,
                ..FaultPlan::none(11)
            };
            l.install_faults(plan.for_link(LinkId::from(0usize)));
            let ((got, corrupt, credits), l) = push_worm_through(l, 6);
            assert_eq!(got, 8, "outages delay but never lose flits");
            assert!(!corrupt);
            assert_eq!(credits, 8);
            assert!(l.fault_counters().unwrap().down_cycles > 0);
        }

        #[test]
        fn credit_leaks_shrink_window_but_never_wedge() {
            let mut l = Link::new(1, 3);
            let plan = FaultPlan {
                credit_leak: 1.0,
                ..FaultPlan::none(13)
            };
            l.install_faults(plan.for_link(LinkId::from(0usize)));
            let ((got, _, credits), l) = push_worm_through(l, 6);
            assert_eq!(got, 8, "leaky link still delivers, just slower");
            assert_eq!(
                credits, 1,
                "all but one credit leak at certainty, one survives"
            );
            assert_eq!(l.fault_counters().unwrap().credits_leaked, 2);
        }

        #[test]
        fn noop_faults_change_nothing() {
            let (clean, _) = push_worm_through(Link::new(2, 3), 6);
            let mut l = Link::new(2, 3);
            l.install_faults(FaultPlan::none(99).for_link(LinkId::from(0usize)));
            let (faulty, _) = push_worm_through(l, 6);
            assert_eq!(faulty, clean);
        }
    }

    mod forced {
        use super::*;

        #[test]
        fn forced_down_publishes_edges_and_blocks_sends() {
            let mut l = Link::new(1, 4);
            assert!(l.can_send(10));
            l.set_forced_down(10, true);
            assert!(!l.can_send(10));
            assert!(l.is_down(10));
            assert!(l.forced_down());
            l.set_forced_down(25, false);
            assert!(l.can_send(25));
            assert_eq!(l.take_transitions(), vec![(10, true), (25, false)]);
        }

        #[test]
        fn redundant_toggles_publish_no_duplicate_edges() {
            let mut l = Link::new(1, 4);
            l.set_forced_down(5, true);
            l.set_forced_down(7, true); // already down: no new edge
            l.set_forced_down(9, false);
            l.set_forced_down(11, false);
            assert_eq!(l.take_transitions(), vec![(5, true), (9, false)]);
        }

        #[test]
        fn forced_up_does_not_mask_a_scripted_outage() {
            let mut l = Link::new(1, 4);
            l.script_outage(10, 20);
            l.begin_cycle(10); // scripted edge detected
            l.set_forced_down(12, false); // admin state already up: no edge
            assert!(l.is_down(12), "scripted window still holds");
            assert_eq!(l.take_transitions(), vec![(10, true)]);
        }
    }
}
