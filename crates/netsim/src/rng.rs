//! Seeded randomness for workload generation.
//!
//! All simulation randomness flows through [`SimRng`] so that a single
//! top-level seed fully determines a run. Per-host generators are derived
//! with [`SimRng::fork`], which mixes a stream index into the seed (SplitMix
//! finalizer) so host streams are decorrelated but reproducible.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm
//! by Blackman and Vigna), state-seeded through the SplitMix64 finalizer.
//! Keeping the implementation in-tree pins the exact output sequence: runs
//! are reproducible across toolchains and independent of any external
//! crate's internal algorithm choices.

use crate::destset::DestSet;
use crate::ids::NodeId;

/// Deterministic random-number generator for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed through SplitMix64, as the xoshiro authors
        // recommend, so nearby seeds produce unrelated states and the
        // all-zero state (a fixed point) is unreachable.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix(s.wrapping_sub(0x9E37_79B9_7F4A_7C15))
        };
        SimRng {
            state: [next(), next(), next(), next()],
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 64-bit output (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derives an independent generator for stream `stream` (e.g. one per
    /// host). Forks of the same (seed, stream) pair are identical.
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::new(splitmix(self.seed ^ splitmix(stream.wrapping_add(1))))
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is empty");
        // Lemire's unbiased bounded draw: widening multiply, rejecting the
        // sliver of raw values that would over-represent low results.
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                low = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 high bits → the standard max-precision float in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniformly random node other than `exclude`, from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn other_node(&mut self, n: usize, exclude: NodeId) -> NodeId {
        assert!(n >= 2, "need at least two nodes to pick another");
        let pick = self.below(n - 1);
        let pick = if pick >= exclude.index() {
            pick + 1
        } else {
            pick
        };
        NodeId::from(pick)
    }

    /// Uniformly random destination set of exactly `k` nodes drawn from
    /// `0..n`, never containing `exclude` (the source).
    ///
    /// Uses a partial Fisher–Yates over an implicit index range, so cost is
    /// `O(k)` expected.
    ///
    /// # Panics
    ///
    /// Panics if `k` destinations (excluding the source) don't exist,
    /// i.e. `k > n - 1`, or `k == 0`.
    pub fn dest_set(&mut self, n: usize, k: usize, exclude: NodeId) -> DestSet {
        assert!(k >= 1, "destination set must be non-empty");
        assert!(
            k <= n.saturating_sub(1),
            "cannot pick {k} distinct destinations from {n} nodes excluding the source"
        );
        let mut set = DestSet::empty(n);
        // Robert Floyd's sampling algorithm over the n-1 candidates.
        let m = n - 1; // candidates: all nodes except `exclude`, re-indexed
        let unmap = |i: usize| -> NodeId {
            let v = if i >= exclude.index() { i + 1 } else { i };
            NodeId::from(v)
        };
        for j in (m - k)..m {
            let t = self.below(j + 1);
            let cand = unmap(t);
            if set.contains(cand) {
                set.insert(unmap(j));
            } else {
                set.insert(cand);
            }
        }
        debug_assert_eq!(set.count(), k);
        debug_assert!(!set.contains(exclude));
        set
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_reproducible_and_distinct() {
        let root = SimRng::new(7);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        let s1: Vec<usize> = (0..20).map(|_| f1.below(100)).collect();
        let s1b: Vec<usize> = (0..20).map(|_| f1b.below(100)).collect();
        let s2: Vec<usize> = (0..20).map(|_| f2.below(100)).collect();
        assert_eq!(s1, s1b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn unit_stays_in_range_and_fills_it() {
        let mut r = SimRng::new(77);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::new(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.below(10)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn other_node_never_returns_excluded() {
        let mut r = SimRng::new(3);
        for _ in 0..500 {
            let n = r.other_node(8, NodeId(5));
            assert_ne!(n, NodeId(5));
            assert!(n.index() < 8);
        }
    }

    #[test]
    fn dest_set_has_exact_size_and_excludes_source() {
        let mut r = SimRng::new(11);
        for k in 1..=15 {
            let s = r.dest_set(16, k, NodeId(4));
            assert_eq!(s.count(), k);
            assert!(!s.contains(NodeId(4)));
        }
    }

    #[test]
    fn dest_set_covers_universe_over_many_draws() {
        let mut r = SimRng::new(5);
        let mut seen = DestSet::empty(16);
        for _ in 0..200 {
            seen.union_with(&r.dest_set(16, 4, NodeId(0)));
        }
        // Every non-source node should appear eventually.
        assert_eq!(seen.count(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot pick")]
    fn dest_set_too_large_panics() {
        let mut r = SimRng::new(1);
        let _ = r.dest_set(8, 8, NodeId(0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
