//! The deterministic cycle engine.
//!
//! The engine owns all [`Link`]s and all [`Component`]s (switches, hosts).
//! Every cycle it (1) makes newly propagated flits and credits visible on
//! every link, then (2) ticks each component once, in registration order.
//! Because links impose at least one cycle of delay, a component never
//! observes another component's same-cycle output, so the tick order is not
//! semantically observable — runs are deterministic and order-independent.
//!
//! ## Compiled sharded scheduling
//!
//! [`Engine::set_shards`] switches the cycle loop from plain object
//! iteration to a *compiled* schedule (DESIGN.md §13): a one-time compile
//! pass lowers the constructed fabric into a `ShardPlan` — flat
//! link→receiver maps, contiguous per-shard component ranges balanced by
//! port weight, a sleep bitset, and per-shard wake heaps — and the
//! per-cycle loop then skips every component that declared itself
//! quiescent ([`Component::quiescent`]) until an event addressed to it
//! matures.
//! Events produced while a shard steps land in that shard's *outbox*
//! mailbox and are exchanged at a per-cycle barrier, so the result is
//! independent of the order in which shards execute. The uncompiled path
//! (the default) remains the oracle: both must produce bit-identical runs.

use crate::fault::{FaultCounters, FaultPlan};
use crate::flit::Flit;
use crate::ids::LinkId;
use crate::link::{Link, LinkEvent};
use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulated hardware component (switch, host NIC, ...).
///
/// Implementations interact with the world exclusively through the
/// [`PortIo`] handed to [`Component::tick`], which exposes the component's
/// bound input and output links.
pub trait Component {
    /// Advances the component by one cycle.
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>);

    /// `true` if ticking this component is provably a no-op until new
    /// input arrives on one of its links (or out-of-band state changes,
    /// after which the caller must [`Engine::wake_component`] it).
    ///
    /// The compiled engine consults this after every tick to put the
    /// component to sleep. Implementations that return `true` here must
    /// make any per-cycle accounting *skip-invariant*: derive it from the
    /// gap since their last tick rather than counting ticks (see the
    /// switch implementations). The default never sleeps, which is always
    /// safe.
    fn quiescent(&self) -> bool {
        false
    }

    /// Catches per-cycle accounting up to `now` after a stretch of
    /// skipped ticks, without advancing any simulation state.
    ///
    /// [`Engine::flush`] calls this on sleeping components before stats
    /// are read at the end of a run. The default is a no-op.
    fn flush(&mut self, now: Cycle) {
        let _ = now;
    }

    /// Epoch bookkeeping of a component participating in two-phase
    /// routing-table installs (DESIGN.md §15): the epoch of its active
    /// table set plus any commit armed but not yet activated. `None`
    /// (the default) opts the component out of the torn-install audit —
    /// hosts and test fixtures never appear in it.
    fn epoch_status(&self) -> Option<EpochStatus> {
        None
    }
}

/// One component's view of the two-phase table-install protocol, as
/// reported through [`Component::epoch_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochStatus {
    /// Epoch of the table set the component currently decodes against
    /// (0 = the build-time tables).
    pub committed: u64,
    /// Epoch armed for activation (committed by the coordinator) but not
    /// yet swapped in — the component is mid-activation, typically
    /// waiting to find itself empty.
    pub pending: Option<u64>,
}

/// Running result of the per-cycle torn-install audit (see
/// [`Engine::enable_epoch_audit`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EpochAudit {
    /// Cycles in which committed epochs diverged across components with
    /// no armed commit explaining the laggard — a *torn* install: part of
    /// the fabric decodes against tables the analyzer never vetted in
    /// that combination. Must stay 0 under a correct two-phase protocol,
    /// crash recovery included.
    pub torn_cycles: u64,
    /// First cycle the audit flagged, for forensics.
    pub first_torn: Option<Cycle>,
    /// Highest committed epoch observed anywhere on the fabric.
    pub max_committed: u64,
}

/// Port bindings of one component: ranges into the engine's flat port
/// arena (`Engine::ports`). Flattening all bindings into one arena keeps
/// the per-cycle component loop on two contiguous arrays instead of
/// chasing a `Vec<Vec<LinkId>>` per component.
#[derive(Debug, Clone, Copy)]
struct Binding {
    in_start: u32,
    in_len: u32,
    out_start: u32,
    out_len: u32,
}

/// Engine-side bookkeeping that [`PortIo`] maintains incrementally so the
/// engine never scans all links: the active-link set (which links need
/// [`Link::begin_cycle`]) and O(1) flit-movement counters.
#[derive(Debug, Default)]
struct Ledger {
    /// Indices of links with `Link::active` set.
    active: Vec<u32>,
    /// Flits ever sent over any link (see [`Engine::total_flit_moves`]).
    total_moves: u64,
    /// Flits currently propagating inside links.
    in_flight: usize,
}

impl Ledger {
    fn mark_active(&mut self, idx: usize, link: &mut Link) {
        if !link.active {
            link.active = true;
            self.active.push(idx as u32);
        }
    }
}

/// Wake plumbing handed to [`PortIo`] by the compiled engine: when a send
/// targets a sleeping receiver, the arrival is recorded in the *ticking*
/// shard's outbox so the receiver is woken when the flit matures. The
/// uncompiled engine passes `None` and pays nothing.
#[derive(Debug)]
struct WakeCtx<'a> {
    /// Link index → receiving component, `u32::MAX` for dangling links.
    recv_comp: &'a [u32],
    /// Which components are currently asleep.
    asleep: &'a [bool],
    /// The current shard's outbox of `(wake_at, component)` events.
    outbox: &'a mut Vec<(Cycle, u32)>,
}

/// Access to a component's ports during its tick.
///
/// Input ports are numbered `0..n_inputs()`, output ports `0..n_outputs()`,
/// in the order given to [`Engine::add_component`].
#[derive(Debug)]
pub struct PortIo<'a> {
    now: Cycle,
    links: &'a mut [Link],
    inputs: &'a [LinkId],
    outputs: &'a [LinkId],
    ledger: &'a mut Ledger,
    wake: Option<WakeCtx<'a>>,
}

impl PortIo<'_> {
    /// Number of input ports.
    pub fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Peeks at the flit arriving on input `port` this cycle, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn peek(&self, port: usize) -> Option<&Flit> {
        self.links[self.inputs[port].index()].peek(self.now)
    }

    /// Consumes the flit arriving on input `port` (at most one per cycle).
    ///
    /// The caller must eventually call [`PortIo::return_credit`] for the
    /// same port, once per consumed flit.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn recv(&mut self, port: usize) -> Option<Flit> {
        let flit = self.links[self.inputs[port].index()].recv(self.now);
        if flit.is_some() {
            self.ledger.in_flight -= 1;
        }
        flit
    }

    /// Returns one credit on input `port` (a staging slot freed).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn return_credit(&mut self, port: usize) {
        let idx = self.inputs[port].index();
        self.links[idx].return_credit(self.now);
        self.ledger.mark_active(idx, &mut self.links[idx]);
    }

    /// `true` if output `port` can accept a flit this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn can_send(&self, port: usize) -> bool {
        self.links[self.outputs[port].index()].can_send(self.now)
    }

    /// Sends a flit on output `port`.
    ///
    /// # Panics
    ///
    /// Panics if the link has no credit or was already used this cycle —
    /// guard with [`PortIo::can_send`].
    pub fn send(&mut self, port: usize, flit: Flit) {
        let idx = self.outputs[port].index();
        self.links[idx].send(self.now, flit);
        self.ledger.total_moves += 1;
        self.ledger.in_flight += 1;
        self.ledger.mark_active(idx, &mut self.links[idx]);
        // Wake-on-send: if the receiver is asleep, schedule it for the
        // flit's arrival cycle. Receivers that are still awake don't need
        // this — if they go to sleep later they scan their input links
        // (which already hold this flit) for the earliest arrival.
        if let Some(w) = self.wake.as_mut() {
            let rc = w.recv_comp[idx];
            if rc != u32::MAX && w.asleep[rc as usize] {
                let at = self.now + Cycle::from(self.links[idx].delay());
                w.outbox.push((at, rc));
            }
        }
    }

    /// Credits currently available on output `port` (how much more the
    /// downstream staging buffer can take).
    pub fn credits(&self, port: usize) -> u32 {
        self.links[self.outputs[port].index()].credits()
    }
}

/// The compiled step schedule: everything the sharded cycle loop needs,
/// lowered out of the object graph into flat arrays indexed by dense
/// component/link ids. Built once by [`Engine::set_shards`]' compile pass
/// and reused every cycle.
#[derive(Debug)]
struct ShardPlan {
    /// Shard count actually compiled (≤ requested, ≥ 1).
    n_shards: usize,
    /// The [`Engine::set_shards`] value this plan was compiled for.
    requested: usize,
    /// Component and link counts at compile time; a mismatch at step time
    /// means the fabric grew and the plan must be recompiled.
    compiled_comps: usize,
    compiled_links: usize,
    /// Per-shard contiguous component ranges `[start, end)`, ascending and
    /// covering all components, weight-balanced by port count. Contiguity
    /// preserves the global registration-order tick sequence.
    ranges: Vec<(u32, u32)>,
    /// Component → owning shard.
    comp_shard: Vec<u32>,
    /// Link index → receiving component (`u32::MAX` for dangling links).
    recv_comp: Vec<u32>,
    /// Sleep bitset: `asleep[c]` ⇒ ticking `c` is provably a no-op until a
    /// wake event for it matures (or `wake_component` clears it).
    asleep: Vec<bool>,
    /// Per-shard min-heaps of pending `(wake_at, component)` events.
    heaps: Vec<BinaryHeap<Reverse<(Cycle, u32)>>>,
    /// Per-shard outboxes: wake events produced while the shard steps,
    /// exchanged into the owning shards' heaps at the per-cycle barrier.
    outboxes: Vec<Vec<(Cycle, u32)>>,
    /// Links whose sender and receiver live in different shards.
    boundary_links: usize,
    /// Component ticks actually executed / skipped while asleep.
    ticks_run: u64,
    ticks_skipped: u64,
    /// Wake events that crossed a shard boundary at the barrier.
    exchanged: u64,
}

/// Observability counters for the compiled sharded engine
/// ([`Engine::sharding_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardingStats {
    /// Number of shards the fabric was compiled into.
    pub shards: usize,
    /// Components covered by the compiled schedule.
    pub components: usize,
    /// Links whose endpoints live in different shards (mailbox traffic).
    pub boundary_links: usize,
    /// Component ticks actually executed.
    pub ticks_run: u64,
    /// Component ticks skipped because the component slept.
    pub ticks_skipped: u64,
    /// Wake events exchanged across shard boundaries at barriers.
    pub cross_shard_events: u64,
}

/// The simulation engine: owns links and components, advances time.
#[derive(Default)]
pub struct Engine {
    now: Cycle,
    links: Vec<Link>,
    comps: Vec<Box<dyn Component>>,
    bindings: Vec<Binding>,
    /// Flat arena of all components' port→link bindings.
    ports: Vec<LinkId>,
    ledger: Ledger,
    /// Compiled step schedule; `None` until first compiled step.
    plan: Option<ShardPlan>,
    /// Shard count requested via [`Engine::set_shards`]; 0 = uncompiled.
    shards_requested: usize,
    /// Torn-install audit state; `None` keeps the audit off the hot path.
    epoch_audit: Option<EpochAudit>,
}

impl Engine {
    /// Creates an empty engine at cycle 0.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Registers a unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` or `credits == 0` (see [`Link::new`]).
    pub fn add_link(&mut self, delay: u32, credits: u32) -> LinkId {
        let id = LinkId::from(self.links.len());
        self.links.push(Link::new(delay, credits));
        id
    }

    /// Registers a component with its port bindings and returns its index.
    ///
    /// `inputs[i]` becomes the component's input port `i` (it is the
    /// *receiver* of that link); `outputs[i]` becomes output port `i` (it is
    /// the *sender*). Each link must have exactly one sender and one
    /// receiver across all components; debug builds catch violations
    /// through the links' credit-conservation assertions.
    pub fn add_component(
        &mut self,
        component: Box<dyn Component>,
        inputs: Vec<LinkId>,
        outputs: Vec<LinkId>,
    ) -> usize {
        let in_start = self.ports.len() as u32;
        self.ports.extend_from_slice(&inputs);
        let out_start = self.ports.len() as u32;
        self.ports.extend_from_slice(&outputs);
        self.comps.push(component);
        self.bindings.push(Binding {
            in_start,
            in_len: inputs.len() as u32,
            out_start,
            out_len: outputs.len() as u32,
        });
        self.comps.len() - 1
    }

    /// Number of registered components.
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// Number of registered links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Installs a fault plan on every registered link.
    ///
    /// Each link gets its own deterministic random stream derived from the
    /// plan's seed and the link's id, so fault timing is independent of
    /// traffic and identical across same-seed runs. A no-op plan installs
    /// nothing, keeping fault-free runs on the fast path. Call after all
    /// links are registered.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if plan.is_noop() {
            return;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            link.install_faults(plan.for_link(LinkId::from(i)));
            // Faulty links stay permanently in the active set: outage
            // schedules and condemned-flit evaporation advance every cycle.
            self.ledger.mark_active(i, link);
        }
    }

    /// Schedules a deterministic outage on one link: it refuses new flits
    /// during `[from, until)` and publishes the down/up transitions
    /// (drainable via [`Engine::drain_link_events`]). In-flight flits
    /// still arrive and credits still propagate, so worms stall rather
    /// than tear.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn script_outage(&mut self, link: LinkId, from: Cycle, until: Cycle) {
        let idx = link.index();
        self.links[idx].script_outage(from, until);
        // Edge detection needs begin_cycle every cycle from now on.
        self.ledger.mark_active(idx, &mut self.links[idx]);
    }

    /// Sets the administrative down state of one link, as driven by a
    /// control plane's command stream (`mdw-routed` link up/down events).
    /// The transition is published immediately and holds until the next
    /// call — no scheduled end, unlike [`Engine::script_outage`].
    pub fn set_link_forced_down(&mut self, link: LinkId, down: bool) {
        let idx = link.index();
        self.links[idx].set_forced_down(self.now, down);
    }

    /// Enables up/down transition publication on every link (links that
    /// can actually go down — fault streams or scripted windows — start
    /// recording; healthy links never transition, so this costs nothing
    /// for them). Call before or after [`Engine::install_faults`].
    pub fn publish_link_events(&mut self) {
        for link in &mut self.links {
            link.publish_transitions();
        }
    }

    /// Drains every link's recorded up/down transitions into one stream,
    /// ordered by (cycle, link). Empty unless outages were scripted or
    /// [`Engine::publish_link_events`] was enabled on a faulty fabric.
    pub fn drain_link_events(&mut self) -> Vec<LinkEvent> {
        let mut events = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            for (at, down) in link.take_transitions() {
                events.push(LinkEvent {
                    link: LinkId::from(i),
                    at,
                    down,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.link.index()));
        events
    }

    /// `true` if `link` refuses new flits this cycle (scripted or
    /// fault-plan outage in effect).
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.links[link.index()].is_down(self.now)
    }

    /// Sum of injected-fault counters across all links.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for link in &self.links {
            if let Some(c) = link.fault_counters() {
                total.merge(c);
            }
        }
        total
    }

    /// Total flits sent over all links since the start of the run — the
    /// engine-level progress measure used by deadlock watchdogs. O(1):
    /// maintained on every [`PortIo::send`] instead of scanning all links.
    ///
    /// Debug builds — and any build with the `invariant-audit` feature —
    /// cross-check the ledger against a full link scan.
    pub fn total_flit_moves(&self) -> u64 {
        if cfg!(any(debug_assertions, feature = "invariant-audit")) {
            assert_eq!(
                self.ledger.total_moves,
                self.links.iter().map(Link::total_flits).sum::<u64>(),
                "flit conservation violated: ledger total_moves out of sync"
            );
        }
        self.ledger.total_moves
    }

    /// Flits ever sent over one specific link (utilization accounting).
    pub fn link_total_flits(&self, link: LinkId) -> u64 {
        self.links[link.index()].total_flits()
    }

    /// Number of flits currently propagating inside links. O(1):
    /// maintained on send/recv/evaporation instead of scanning all links.
    ///
    /// Debug builds — and any build with the `invariant-audit` feature —
    /// cross-check the ledger against a full link scan.
    pub fn flits_in_links(&self) -> usize {
        if cfg!(any(debug_assertions, feature = "invariant-audit")) {
            assert_eq!(
                self.ledger.in_flight,
                self.links.iter().map(Link::in_flight).sum::<usize>(),
                "flit conservation violated: ledger in_flight out of sync"
            );
        }
        self.ledger.in_flight
    }

    /// Switches the cycle loop to the compiled sharded schedule with
    /// `shards` shards (≥ 1; clamped to the component count at compile
    /// time), or back to plain object iteration with `shards == 0`.
    ///
    /// The schedule is compiled lazily on the next [`Engine::step`], so
    /// this can be called before or after components are registered. The
    /// compiled engine produces bit-identical runs to the uncompiled one;
    /// callers that mutate component state out of band (control-plane
    /// flips, [`Engine::component_mut`]) must pair the mutation with
    /// [`Engine::wake_component`] or [`Engine::wake_all`].
    pub fn set_shards(&mut self, shards: usize) {
        self.shards_requested = shards;
        if shards == 0 {
            self.plan = None;
        }
    }

    /// Shard count requested via [`Engine::set_shards`] (0 = uncompiled).
    pub fn shards(&self) -> usize {
        self.shards_requested
    }

    /// Counters from the compiled sharded engine, or `None` when running
    /// uncompiled (or before the first compiled step).
    pub fn sharding_stats(&self) -> Option<ShardingStats> {
        self.plan.as_ref().map(|p| ShardingStats {
            shards: p.n_shards,
            components: p.compiled_comps,
            boundary_links: p.boundary_links,
            ticks_run: p.ticks_run,
            ticks_skipped: p.ticks_skipped,
            cross_shard_events: p.exchanged,
        })
    }

    /// Forces a sleeping component back into the step schedule. No-op when
    /// uncompiled or already awake. Must be called whenever component
    /// state changes outside its own tick (e.g. a control-plane flag it
    /// polls), since such changes are invisible to the wake protocol.
    pub fn wake_component(&mut self, index: usize) {
        if let Some(plan) = self.plan.as_mut() {
            if index < plan.asleep.len() {
                plan.asleep[index] = false;
            }
        }
    }

    /// Wakes every sleeping component (see [`Engine::wake_component`]).
    /// Cheap: one pass over the sleep bitset; spurious wakes cost one tick
    /// each and components immediately re-sleep if still quiescent.
    pub fn wake_all(&mut self) {
        if let Some(plan) = self.plan.as_mut() {
            plan.asleep.fill(false);
        }
    }

    /// Catches sleeping components' per-cycle accounting up to the current
    /// cycle (see [`Component::flush`]). Call before reading per-component
    /// stats at the end of a compiled run; no-op when uncompiled.
    pub fn flush(&mut self) {
        let now = self.now;
        if let Some(plan) = self.plan.as_mut() {
            for (comp, &asleep) in self.comps.iter_mut().zip(&plan.asleep) {
                if asleep {
                    comp.flush(now);
                }
            }
        }
    }

    /// Makes newly propagated flits and credits visible on every active
    /// link — the link phase shared by both cycle loops.
    fn begin_links(&mut self) {
        let now = self.now;
        // Only links with credits propagating back (or faults installed)
        // pay `begin_cycle`; idle links cost nothing. A link leaves the set
        // the moment its credit queue drains and re-enters on the next
        // `send`/`return_credit` through its PortIo.
        let mut i = 0;
        while i < self.ledger.active.len() {
            let idx = self.ledger.active[i] as usize;
            let link = &mut self.links[idx];
            self.ledger.in_flight -= link.begin_cycle(now);
            if link.needs_begin_cycle() {
                i += 1;
            } else {
                link.active = false;
                self.ledger.active.swap_remove(i);
            }
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        if self.shards_requested == 0 {
            self.step_uncompiled();
        } else {
            self.ensure_plan();
            self.step_compiled();
        }
    }

    /// The original object-iteration cycle loop — the oracle the compiled
    /// path must match bit for bit.
    fn step_uncompiled(&mut self) {
        self.now += 1;
        self.begin_links();
        let now = self.now;
        let links = &mut self.links[..];
        let ports = &self.ports[..];
        let ledger = &mut self.ledger;
        for (comp, b) in self.comps.iter_mut().zip(&self.bindings) {
            let mut io = PortIo {
                now,
                links: &mut *links,
                inputs: &ports[b.in_start as usize..(b.in_start + b.in_len) as usize],
                outputs: &ports[b.out_start as usize..(b.out_start + b.out_len) as usize],
                ledger: &mut *ledger,
                wake: None,
            };
            comp.tick(now, &mut io);
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants();
        self.audit_epochs();
    }

    /// Recompiles the step schedule if absent or stale (shard count or
    /// fabric shape changed since the last compile).
    fn ensure_plan(&mut self) {
        let stale = match &self.plan {
            Some(p) => {
                p.requested != self.shards_requested
                    || p.compiled_comps != self.comps.len()
                    || p.compiled_links != self.links.len()
            }
            None => true,
        };
        if stale {
            self.plan = Some(self.compile_plan());
        }
    }

    /// The compile pass: lowers the fabric into a [`ShardPlan`].
    ///
    /// Components are cut into contiguous index ranges (preserving the
    /// global tick order) balanced by per-component weight `1 + ports`, a
    /// proxy for tick cost. Link→receiver maps are flattened from the port
    /// arena so wake-on-send is two array loads.
    fn compile_plan(&self) -> ShardPlan {
        let n_comps = self.comps.len();
        let n = self.shards_requested.clamp(1, n_comps.max(1));
        let weights: Vec<u64> = self
            .bindings
            .iter()
            .map(|b| 1 + u64::from(b.in_len + b.out_len))
            .collect();
        let total: u64 = weights.iter().sum();
        let mut ranges = Vec::with_capacity(n);
        let mut comp_shard = vec![0u32; n_comps];
        let mut cursor = 0usize;
        let mut acc = 0u64;
        for s in 0..n {
            let start = cursor;
            // Leave at least one component for each shard still to come.
            let max_end = n_comps - (n - 1 - s);
            let target = (total * (s as u64 + 1)).div_ceil(n as u64);
            while cursor < max_end && (cursor == start || acc < target) {
                acc += weights[cursor];
                cursor += 1;
            }
            for cs in &mut comp_shard[start..cursor] {
                *cs = s as u32;
            }
            ranges.push((start as u32, cursor as u32));
        }
        debug_assert_eq!(cursor, n_comps, "partition must cover all components");

        let mut recv_comp = vec![u32::MAX; self.links.len()];
        let mut send_comp = vec![u32::MAX; self.links.len()];
        for (ci, b) in self.bindings.iter().enumerate() {
            for lid in &self.ports[b.in_start as usize..(b.in_start + b.in_len) as usize] {
                recv_comp[lid.index()] = ci as u32;
            }
            for lid in &self.ports[b.out_start as usize..(b.out_start + b.out_len) as usize] {
                send_comp[lid.index()] = ci as u32;
            }
        }
        let boundary_links = (0..self.links.len())
            .filter(|&l| {
                let (snd, rcv) = (send_comp[l], recv_comp[l]);
                snd != u32::MAX
                    && rcv != u32::MAX
                    && comp_shard[snd as usize] != comp_shard[rcv as usize]
            })
            .count();

        ShardPlan {
            n_shards: n,
            requested: self.shards_requested,
            compiled_comps: n_comps,
            compiled_links: self.links.len(),
            ranges,
            comp_shard,
            recv_comp,
            asleep: vec![false; n_comps],
            heaps: (0..n).map(|_| BinaryHeap::new()).collect(),
            outboxes: (0..n).map(|_| Vec::new()).collect(),
            boundary_links,
            ticks_run: 0,
            ticks_skipped: 0,
            exchanged: 0,
        }
    }

    /// One cycle of the compiled sharded schedule.
    ///
    /// Phases: (1) the global link phase, identical to the uncompiled
    /// loop; (2) wake phase — pop every matured `(wake_at ≤ now)` event
    /// from each shard's heap; (3) tick phase — shards in order, each
    /// ticking its awake components in ascending index order (globally
    /// ascending across shards, so the oracle's tick order is preserved
    /// exactly, minus provable no-ops); (4) barrier — drain every shard's
    /// outbox into the owning shards' heaps. All wake events target cycles
    /// ≥ now+1 and links impose ≥ 1 cycle of delay, so no shard can
    /// observe another shard's same-cycle work: the result is independent
    /// of the order shards execute in (see DESIGN.md §13).
    fn step_compiled(&mut self) {
        self.now += 1;
        self.begin_links();
        let now = self.now;
        let plan = self.plan.as_mut().expect("ensure_plan ran");
        // Wake phase.
        for heap in &mut plan.heaps {
            while let Some(&Reverse((at, comp))) = heap.peek() {
                if at > now {
                    break;
                }
                heap.pop();
                plan.asleep[comp as usize] = false;
            }
        }
        // Tick phase.
        let links = &mut self.links[..];
        let ports = &self.ports[..];
        let ledger = &mut self.ledger;
        let ShardPlan {
            ranges,
            comp_shard,
            recv_comp,
            asleep,
            heaps,
            outboxes,
            ticks_run,
            ticks_skipped,
            exchanged,
            ..
        } = &mut *plan;
        for (s, &(start, end)) in ranges.iter().enumerate() {
            for c in start as usize..end as usize {
                if asleep[c] {
                    *ticks_skipped += 1;
                    continue;
                }
                *ticks_run += 1;
                let b = self.bindings[c];
                let inputs = &ports[b.in_start as usize..(b.in_start + b.in_len) as usize];
                let outputs = &ports[b.out_start as usize..(b.out_start + b.out_len) as usize];
                let mut io = PortIo {
                    now,
                    links: &mut *links,
                    inputs,
                    outputs,
                    ledger: &mut *ledger,
                    wake: Some(WakeCtx {
                        recv_comp,
                        asleep,
                        outbox: &mut outboxes[s],
                    }),
                };
                self.comps[c].tick(now, &mut io);
                if self.comps[c].quiescent() {
                    asleep[c] = true;
                    // Sleep-time scan: the earliest in-flight arrival on
                    // any input link bounds how long this component may
                    // sleep. Senders that tick later this cycle find the
                    // sleep bit set and wake-on-send instead.
                    let mut next: Option<Cycle> = None;
                    for lid in inputs {
                        if let Some(at) = links[lid.index()].next_arrival() {
                            next = Some(next.map_or(at, |n| n.min(at)));
                        }
                    }
                    if let Some(at) = next {
                        outboxes[s].push((at.max(now + 1), c as u32));
                    }
                }
            }
        }
        // Barrier: exchange outboxes into the owning shards' heaps. With a
        // thread-per-shard tick phase this is the only cross-shard
        // communication point; run single-threaded it is a plain drain.
        for (s, outbox) in outboxes.iter_mut().enumerate() {
            for (at, comp) in outbox.drain(..) {
                let target = comp_shard[comp as usize] as usize;
                if target != s {
                    *exchanged += 1;
                }
                heaps[target].push(Reverse((at, comp)));
            }
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants();
        self.audit_epochs();
    }

    /// Arms the per-cycle torn-install audit: after every cycle, the
    /// committed epochs of all epoch-reporting components (see
    /// [`Component::epoch_status`]) are compared, and any cycle in which
    /// they diverge with no armed commit explaining the laggard is
    /// counted as *torn*. A switch lagging behind the fleet *with* an
    /// armed commit for the newest epoch is the legitimate in-flight
    /// activation window (it swaps the moment it finds itself empty) and
    /// is not flagged. Off by default; O(components) per cycle when on.
    pub fn enable_epoch_audit(&mut self) {
        self.epoch_audit.get_or_insert_with(EpochAudit::default);
    }

    /// The torn-install audit's running result, or `None` if the audit
    /// was never enabled.
    pub fn epoch_audit(&self) -> Option<EpochAudit> {
        self.epoch_audit
    }

    /// The per-cycle pass behind [`Engine::enable_epoch_audit`].
    fn audit_epochs(&mut self) {
        if self.epoch_audit.is_none() {
            return;
        }
        let mut max_committed = 0u64;
        let mut any = false;
        let mut torn = false;
        for st in self.comps.iter().filter_map(|c| c.epoch_status()) {
            any = true;
            max_committed = max_committed.max(st.committed);
        }
        if any {
            for st in self.comps.iter().filter_map(|c| c.epoch_status()) {
                if st.committed < max_committed && st.pending.is_none_or(|p| p < max_committed) {
                    torn = true;
                    break;
                }
            }
        }
        let audit = self.epoch_audit.as_mut().expect("checked above");
        audit.max_committed = max_committed;
        if torn {
            audit.torn_cycles += 1;
            audit.first_torn.get_or_insert(self.now);
        }
    }

    /// Full-fabric invariant sweep, run after every cycle under the
    /// `invariant-audit` feature: per-link credit conservation plus the
    /// flit-conservation ledger cross-checks. O(links) per cycle, so it is
    /// feature-gated rather than tied to `debug_assertions` — quick-scale
    /// sweeps run under it in CI, full-scale ones don't pay for it.
    #[cfg(feature = "invariant-audit")]
    fn audit_invariants(&self) {
        for link in &self.links {
            link.audit_credit_conservation();
        }
        let _ = self.total_flit_moves();
        let _ = self.flits_in_links();
    }

    /// Runs for `cycles` additional cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until `cycle` (absolute), or not at all if already past it.
    pub fn run_until(&mut self, cycle: Cycle) {
        while self.now < cycle {
            self.step();
        }
    }

    /// Runs until `stop` returns `true` (checked every `check_every` cycles)
    /// or until `max_cycle`. Returns the cycle at which it stopped.
    pub fn run_while<F: FnMut(&Engine) -> bool>(
        &mut self,
        mut keep_going: F,
        check_every: u64,
        max_cycle: Cycle,
    ) -> Cycle {
        let check_every = check_every.max(1);
        while self.now < max_cycle {
            for _ in 0..check_every {
                if self.now >= max_cycle {
                    break;
                }
                self.step();
            }
            if !keep_going(self) {
                break;
            }
        }
        self.now
    }

    /// Mutable access to a component, downcast by the caller.
    ///
    /// This is an escape hatch for test instrumentation; simulation logic
    /// should communicate through links and shared trackers instead. The
    /// component is woken (see [`Engine::wake_component`]) since the
    /// caller may change state the wake protocol cannot see.
    pub fn component_mut(&mut self, index: usize) -> &mut dyn Component {
        self.wake_component(index);
        self.comps[index].as_mut()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(cycle {}, {} components, {} links)",
            self.now,
            self.comps.len(),
            self.links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::{Packet, PacketBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    struct Producer {
        pkt: Rc<Packet>,
        next: u16,
    }
    impl Component for Producer {
        fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
            if self.next < self.pkt.total_flits() && io.can_send(0) {
                io.send(0, Flit::new(self.pkt.clone(), self.next));
                self.next += 1;
            }
        }
    }

    struct Consumer {
        seen: Rc<Cell<u64>>,
        stall_until: Cycle,
    }
    impl Component for Consumer {
        fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
            if now < self.stall_until {
                return;
            }
            if io.recv(0).is_some() {
                io.return_credit(0);
                self.seen.set(self.seen.get() + 1);
            }
        }
    }

    fn pkt(payload: u16) -> Rc<Packet> {
        Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), payload, 16).build())
    }

    fn pipeline(stall_until: Cycle, credits: u32) -> (Engine, Rc<Cell<u64>>) {
        let mut e = Engine::new();
        let l = e.add_link(1, credits);
        let p = pkt(8); // 2 header + 8 payload = 10 flits
        e.add_component(Box::new(Producer { pkt: p, next: 0 }), vec![], vec![l]);
        let seen = Rc::new(Cell::new(0));
        e.add_component(
            Box::new(Consumer {
                seen: seen.clone(),
                stall_until,
            }),
            vec![l],
            vec![],
        );
        (e, seen)
    }

    #[test]
    fn flits_flow_end_to_end() {
        let (mut e, seen) = pipeline(0, 4);
        e.run_for(30);
        assert_eq!(seen.get(), 10);
        assert_eq!(e.total_flit_moves(), 10);
        assert_eq!(e.flits_in_links(), 0);
    }

    #[test]
    fn backpressure_limits_producer() {
        // Consumer asleep until cycle 100; only `credits` flits can leave.
        let (mut e, seen) = pipeline(100, 3);
        e.run_for(50);
        assert_eq!(seen.get(), 0);
        assert_eq!(e.total_flit_moves(), 3, "window is 3 flits");
        e.run_for(100);
        assert_eq!(seen.get(), 10, "all flits delivered after stall");
    }

    #[test]
    fn run_until_and_now() {
        let (mut e, _) = pipeline(0, 4);
        e.run_until(7);
        assert_eq!(e.now(), 7);
        e.run_until(3);
        assert_eq!(e.now(), 7, "run_until never goes backwards");
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let (mut e, seen) = pipeline(0, 4);
        let end = e.run_while(|_| seen.get() < 5, 1, 1_000);
        assert!(seen.get() >= 5);
        assert!(end < 1_000);
    }

    #[test]
    fn scripted_outage_stalls_and_publishes_events() {
        let (mut e, seen) = pipeline(0, 4);
        let link = LinkId::from(0usize);
        e.script_outage(link, 5, 40);
        e.run_for(30);
        assert!(e.link_is_down(link));
        let before = seen.get();
        assert!(before < 10, "outage must stall the worm mid-flight");
        e.run_for(40);
        assert_eq!(seen.get(), 10, "all flits delivered after the heal");
        let events = e.drain_link_events();
        assert_eq!(
            events,
            vec![
                LinkEvent {
                    link,
                    at: 5,
                    down: true
                },
                LinkEvent {
                    link,
                    at: 40,
                    down: false
                },
            ]
        );
        assert!(e.drain_link_events().is_empty());
    }

    #[test]
    fn fault_plan_outages_publish_events_when_enabled() {
        let (mut e, _) = pipeline(0, 4);
        e.install_faults(&FaultPlan {
            down_every: 20,
            down_len: 5,
            ..FaultPlan::none(3)
        });
        e.publish_link_events();
        e.run_for(200);
        let events = e.drain_link_events();
        assert!(
            events.iter().any(|ev| ev.down) && events.iter().any(|ev| !ev.down),
            "periodic outages must publish both edges: {events:?}"
        );
        let mut last = 0;
        for ev in &events {
            assert!(ev.at >= last, "events sorted by cycle");
            last = ev.at;
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let (mut a, seen_a) = pipeline(5, 2);
        let (mut b, seen_b) = pipeline(5, 2);
        for _ in 0..40 {
            a.step();
            b.step();
            assert_eq!(seen_a.get(), seen_b.get());
            assert_eq!(a.total_flit_moves(), b.total_flit_moves());
        }
    }

    /// Emits the flits of one packet, one every `period` cycles — leaves
    /// idle gaps downstream components can sleep through.
    struct GappyProducer {
        pkt: Rc<Packet>,
        next: u16,
        period: Cycle,
    }
    impl Component for GappyProducer {
        fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
            if now.is_multiple_of(self.period)
                && self.next < self.pkt.total_flits()
                && io.can_send(0)
            {
                io.send(0, Flit::new(self.pkt.clone(), self.next));
                self.next += 1;
            }
        }
    }

    /// One-flit store-and-forward stage that sleeps while empty — the
    /// minimal quiescence-capable component, exercising both wake paths.
    struct Relay {
        held: Option<Flit>,
        ticks: Rc<Cell<u64>>,
    }
    impl Component for Relay {
        fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
            self.ticks.set(self.ticks.get() + 1);
            if self.held.is_none() {
                if let Some(f) = io.recv(0) {
                    io.return_credit(0);
                    self.held = Some(f);
                }
            }
            if self.held.is_some() && io.can_send(0) {
                let f = self.held.take().expect("checked");
                io.send(0, f);
            }
        }
        fn quiescent(&self) -> bool {
            self.held.is_none()
        }
    }

    /// Gappy producer → relay → relay → consumer; returns the engine plus
    /// the consumer's seen counter and each relay's tick counter.
    #[allow(clippy::type_complexity)]
    fn relay_chain(shards: usize) -> (Engine, Rc<Cell<u64>>, Vec<Rc<Cell<u64>>>) {
        let mut e = Engine::new();
        e.set_shards(shards);
        let l1 = e.add_link(2, 4);
        let l2 = e.add_link(3, 4);
        let l3 = e.add_link(1, 4);
        e.add_component(
            Box::new(GappyProducer {
                pkt: pkt(8),
                next: 0,
                period: 7,
            }),
            vec![],
            vec![l1],
        );
        let mut relay_ticks = Vec::new();
        for (lin, lout) in [(l1, l2), (l2, l3)] {
            let ticks = Rc::new(Cell::new(0));
            relay_ticks.push(ticks.clone());
            e.add_component(Box::new(Relay { held: None, ticks }), vec![lin], vec![lout]);
        }
        let seen = Rc::new(Cell::new(0));
        e.add_component(
            Box::new(Consumer {
                seen: seen.clone(),
                stall_until: 0,
            }),
            vec![l3],
            vec![],
        );
        (e, seen, relay_ticks)
    }

    #[test]
    fn compiled_engine_matches_uncompiled_cycle_by_cycle() {
        // shards=0 is the uncompiled oracle; every compiled shard count
        // must reproduce its observable trace exactly, every cycle.
        for shards in [1usize, 2, 4] {
            let (mut oracle, seen_o, _) = relay_chain(0);
            let (mut compiled, seen_c, _) = relay_chain(shards);
            for cycle in 1..=120u64 {
                oracle.step();
                compiled.step();
                assert_eq!(
                    (
                        seen_o.get(),
                        oracle.total_flit_moves(),
                        oracle.flits_in_links()
                    ),
                    (
                        seen_c.get(),
                        compiled.total_flit_moves(),
                        compiled.flits_in_links()
                    ),
                    "divergence at cycle {cycle} with {shards} shards"
                );
            }
            assert_eq!(seen_c.get(), 10, "all flits delivered");
            let stats = compiled.sharding_stats().expect("compiled plan exists");
            assert_eq!(stats.shards, shards);
            assert!(
                stats.ticks_skipped > 0,
                "relays must sleep through idle gaps: {stats:?}"
            );
            assert_eq!(stats.ticks_run + stats.ticks_skipped, 120 * 4);
        }
    }

    #[test]
    fn sleeping_relays_skip_ticks_but_miss_nothing() {
        let (mut e, seen, relay_ticks) = relay_chain(2);
        e.run_for(120);
        assert_eq!(seen.get(), 10);
        for ticks in &relay_ticks {
            // 10 flits through a relay need at least 10 ticks; sleeping
            // through the producer's 7-cycle gaps must save the rest.
            assert!(ticks.get() >= 10, "too few ticks: {}", ticks.get());
            assert!(ticks.get() < 120, "relay never slept: {}", ticks.get());
        }
    }

    #[test]
    fn cross_shard_wakes_exchange_through_mailboxes() {
        // 4 components in 4 shards: every producer→relay and relay→relay
        // link crosses a shard boundary, so wakes must ride the barrier.
        let (mut e, seen, _) = relay_chain(4);
        e.run_for(120);
        assert_eq!(seen.get(), 10);
        let stats = e.sharding_stats().expect("compiled plan exists");
        assert_eq!(stats.boundary_links, 3);
        assert!(
            stats.cross_shard_events > 0,
            "cross-shard wakes must flow through the barrier: {stats:?}"
        );
    }

    #[test]
    fn set_shards_zero_returns_to_uncompiled() {
        let (mut e, seen, _) = relay_chain(2);
        e.run_for(40);
        e.set_shards(0);
        assert!(e.sharding_stats().is_none(), "plan dropped");
        e.run_for(80);
        assert_eq!(seen.get(), 10, "run completes uncompiled");
    }

    #[test]
    fn wake_all_and_component_mut_wake_sleepers() {
        let (mut e, _, relay_ticks) = relay_chain(1);
        e.run_for(60);
        let before = relay_ticks[0].get();
        // Relays are asleep between worms; a forced wake must tick them
        // at least once more even with no traffic pending.
        e.wake_all();
        e.step();
        assert_eq!(relay_ticks[0].get(), before + 1, "woken relay ticks");
        let before = relay_ticks[0].get();
        let _ = e.component_mut(1);
        e.step();
        assert_eq!(relay_ticks[0].get(), before + 1, "component_mut wakes");
    }
}
