//! The deterministic cycle engine.
//!
//! The engine owns all [`Link`]s and all [`Component`]s (switches, hosts).
//! Every cycle it (1) makes newly propagated flits and credits visible on
//! every link, then (2) ticks each component once, in registration order.
//! Because links impose at least one cycle of delay, a component never
//! observes another component's same-cycle output, so the tick order is not
//! semantically observable — runs are deterministic and order-independent.

use crate::fault::{FaultCounters, FaultPlan};
use crate::flit::Flit;
use crate::ids::LinkId;
use crate::link::Link;
use crate::Cycle;

/// A simulated hardware component (switch, host NIC, ...).
///
/// Implementations interact with the world exclusively through the
/// [`PortIo`] handed to [`Component::tick`], which exposes the component's
/// bound input and output links.
pub trait Component {
    /// Advances the component by one cycle.
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>);
}

/// Port bindings of one component: which engine links serve as its numbered
/// input and output ports.
#[derive(Debug, Clone)]
struct Binding {
    inputs: Vec<LinkId>,
    outputs: Vec<LinkId>,
}

/// Access to a component's ports during its tick.
///
/// Input ports are numbered `0..n_inputs()`, output ports `0..n_outputs()`,
/// in the order given to [`Engine::add_component`].
pub struct PortIo<'a> {
    now: Cycle,
    links: &'a mut [Link],
    binding: &'a Binding,
}

impl PortIo<'_> {
    /// Number of input ports.
    pub fn n_inputs(&self) -> usize {
        self.binding.inputs.len()
    }

    /// Number of output ports.
    pub fn n_outputs(&self) -> usize {
        self.binding.outputs.len()
    }

    /// Peeks at the flit arriving on input `port` this cycle, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn peek(&self, port: usize) -> Option<&Flit> {
        self.links[self.binding.inputs[port].index()].peek(self.now)
    }

    /// Consumes the flit arriving on input `port` (at most one per cycle).
    ///
    /// The caller must eventually call [`PortIo::return_credit`] for the
    /// same port, once per consumed flit.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn recv(&mut self, port: usize) -> Option<Flit> {
        self.links[self.binding.inputs[port].index()].recv(self.now)
    }

    /// Returns one credit on input `port` (a staging slot freed).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn return_credit(&mut self, port: usize) {
        self.links[self.binding.inputs[port].index()].return_credit(self.now);
    }

    /// `true` if output `port` can accept a flit this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn can_send(&self, port: usize) -> bool {
        self.links[self.binding.outputs[port].index()].can_send(self.now)
    }

    /// Sends a flit on output `port`.
    ///
    /// # Panics
    ///
    /// Panics if the link has no credit or was already used this cycle —
    /// guard with [`PortIo::can_send`].
    pub fn send(&mut self, port: usize, flit: Flit) {
        self.links[self.binding.outputs[port].index()].send(self.now, flit);
    }

    /// Credits currently available on output `port` (how much more the
    /// downstream staging buffer can take).
    pub fn credits(&self, port: usize) -> u32 {
        self.links[self.binding.outputs[port].index()].credits()
    }
}

/// The simulation engine: owns links and components, advances time.
#[derive(Default)]
pub struct Engine {
    now: Cycle,
    links: Vec<Link>,
    comps: Vec<Box<dyn Component>>,
    bindings: Vec<Binding>,
}

impl Engine {
    /// Creates an empty engine at cycle 0.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Registers a unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` or `credits == 0` (see [`Link::new`]).
    pub fn add_link(&mut self, delay: u32, credits: u32) -> LinkId {
        let id = LinkId::from(self.links.len());
        self.links.push(Link::new(delay, credits));
        id
    }

    /// Registers a component with its port bindings and returns its index.
    ///
    /// `inputs[i]` becomes the component's input port `i` (it is the
    /// *receiver* of that link); `outputs[i]` becomes output port `i` (it is
    /// the *sender*). Each link must have exactly one sender and one
    /// receiver across all components; debug builds catch violations
    /// through the links' credit-conservation assertions.
    pub fn add_component(
        &mut self,
        component: Box<dyn Component>,
        inputs: Vec<LinkId>,
        outputs: Vec<LinkId>,
    ) -> usize {
        self.comps.push(component);
        self.bindings.push(Binding { inputs, outputs });
        self.comps.len() - 1
    }

    /// Number of registered components.
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// Number of registered links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Installs a fault plan on every registered link.
    ///
    /// Each link gets its own deterministic random stream derived from the
    /// plan's seed and the link's id, so fault timing is independent of
    /// traffic and identical across same-seed runs. A no-op plan installs
    /// nothing, keeping fault-free runs on the fast path. Call after all
    /// links are registered.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if plan.is_noop() {
            return;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            link.install_faults(plan.for_link(LinkId::from(i)));
        }
    }

    /// Sum of injected-fault counters across all links.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for link in &self.links {
            if let Some(c) = link.fault_counters() {
                total.merge(c);
            }
        }
        total
    }

    /// Total flits sent over all links since the start of the run — the
    /// engine-level progress measure used by deadlock watchdogs.
    pub fn total_flit_moves(&self) -> u64 {
        self.links.iter().map(Link::total_flits).sum()
    }

    /// Flits ever sent over one specific link (utilization accounting).
    pub fn link_total_flits(&self, link: LinkId) -> u64 {
        self.links[link.index()].total_flits()
    }

    /// Number of flits currently propagating inside links.
    pub fn flits_in_links(&self) -> usize {
        self.links.iter().map(Link::in_flight).sum()
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        for link in &mut self.links {
            link.begin_cycle(now);
        }
        let links = &mut self.links[..];
        for (comp, binding) in self.comps.iter_mut().zip(&self.bindings) {
            let mut io = PortIo {
                now,
                links,
                binding,
            };
            comp.tick(now, &mut io);
        }
    }

    /// Runs for `cycles` additional cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until `cycle` (absolute), or not at all if already past it.
    pub fn run_until(&mut self, cycle: Cycle) {
        while self.now < cycle {
            self.step();
        }
    }

    /// Runs until `stop` returns `true` (checked every `check_every` cycles)
    /// or until `max_cycle`. Returns the cycle at which it stopped.
    pub fn run_while<F: FnMut(&Engine) -> bool>(
        &mut self,
        mut keep_going: F,
        check_every: u64,
        max_cycle: Cycle,
    ) -> Cycle {
        let check_every = check_every.max(1);
        while self.now < max_cycle {
            for _ in 0..check_every {
                if self.now >= max_cycle {
                    break;
                }
                self.step();
            }
            if !keep_going(self) {
                break;
            }
        }
        self.now
    }

    /// Mutable access to a component, downcast by the caller.
    ///
    /// This is an escape hatch for test instrumentation; simulation logic
    /// should communicate through links and shared trackers instead.
    pub fn component_mut(&mut self, index: usize) -> &mut dyn Component {
        self.comps[index].as_mut()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(cycle {}, {} components, {} links)",
            self.now,
            self.comps.len(),
            self.links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::{Packet, PacketBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    struct Producer {
        pkt: Rc<Packet>,
        next: u16,
    }
    impl Component for Producer {
        fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
            if self.next < self.pkt.total_flits() && io.can_send(0) {
                io.send(0, Flit::new(self.pkt.clone(), self.next));
                self.next += 1;
            }
        }
    }

    struct Consumer {
        seen: Rc<Cell<u64>>,
        stall_until: Cycle,
    }
    impl Component for Consumer {
        fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
            if now < self.stall_until {
                return;
            }
            if io.recv(0).is_some() {
                io.return_credit(0);
                self.seen.set(self.seen.get() + 1);
            }
        }
    }

    fn pkt(payload: u16) -> Rc<Packet> {
        Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), payload, 16).build())
    }

    fn pipeline(stall_until: Cycle, credits: u32) -> (Engine, Rc<Cell<u64>>) {
        let mut e = Engine::new();
        let l = e.add_link(1, credits);
        let p = pkt(8); // 2 header + 8 payload = 10 flits
        e.add_component(Box::new(Producer { pkt: p, next: 0 }), vec![], vec![l]);
        let seen = Rc::new(Cell::new(0));
        e.add_component(
            Box::new(Consumer {
                seen: seen.clone(),
                stall_until,
            }),
            vec![l],
            vec![],
        );
        (e, seen)
    }

    #[test]
    fn flits_flow_end_to_end() {
        let (mut e, seen) = pipeline(0, 4);
        e.run_for(30);
        assert_eq!(seen.get(), 10);
        assert_eq!(e.total_flit_moves(), 10);
        assert_eq!(e.flits_in_links(), 0);
    }

    #[test]
    fn backpressure_limits_producer() {
        // Consumer asleep until cycle 100; only `credits` flits can leave.
        let (mut e, seen) = pipeline(100, 3);
        e.run_for(50);
        assert_eq!(seen.get(), 0);
        assert_eq!(e.total_flit_moves(), 3, "window is 3 flits");
        e.run_for(100);
        assert_eq!(seen.get(), 10, "all flits delivered after stall");
    }

    #[test]
    fn run_until_and_now() {
        let (mut e, _) = pipeline(0, 4);
        e.run_until(7);
        assert_eq!(e.now(), 7);
        e.run_until(3);
        assert_eq!(e.now(), 7, "run_until never goes backwards");
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let (mut e, seen) = pipeline(0, 4);
        let end = e.run_while(|_| seen.get() < 5, 1, 1_000);
        assert!(seen.get() >= 5);
        assert!(end < 1_000);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let (mut a, seen_a) = pipeline(5, 2);
        let (mut b, seen_b) = pipeline(5, 2);
        for _ in 0..40 {
            a.step();
            b.step();
            assert_eq!(seen_a.get(), seen_b.get());
            assert_eq!(a.total_flit_moves(), b.total_flit_moves());
        }
    }
}
