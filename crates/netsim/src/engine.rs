//! The deterministic cycle engine.
//!
//! The engine owns all [`Link`]s and all [`Component`]s (switches, hosts).
//! Every cycle it (1) makes newly propagated flits and credits visible on
//! every link, then (2) ticks each component once, in registration order.
//! Because links impose at least one cycle of delay, a component never
//! observes another component's same-cycle output, so the tick order is not
//! semantically observable — runs are deterministic and order-independent.

use crate::fault::{FaultCounters, FaultPlan};
use crate::flit::Flit;
use crate::ids::LinkId;
use crate::link::{Link, LinkEvent};
use crate::Cycle;

/// A simulated hardware component (switch, host NIC, ...).
///
/// Implementations interact with the world exclusively through the
/// [`PortIo`] handed to [`Component::tick`], which exposes the component's
/// bound input and output links.
pub trait Component {
    /// Advances the component by one cycle.
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>);
}

/// Port bindings of one component: ranges into the engine's flat port
/// arena (`Engine::ports`). Flattening all bindings into one arena keeps
/// the per-cycle component loop on two contiguous arrays instead of
/// chasing a `Vec<Vec<LinkId>>` per component.
#[derive(Debug, Clone, Copy)]
struct Binding {
    in_start: u32,
    in_len: u32,
    out_start: u32,
    out_len: u32,
}

/// Engine-side bookkeeping that [`PortIo`] maintains incrementally so the
/// engine never scans all links: the active-link set (which links need
/// [`Link::begin_cycle`]) and O(1) flit-movement counters.
#[derive(Debug, Default)]
struct Ledger {
    /// Indices of links with `Link::active` set.
    active: Vec<u32>,
    /// Flits ever sent over any link (see [`Engine::total_flit_moves`]).
    total_moves: u64,
    /// Flits currently propagating inside links.
    in_flight: usize,
}

impl Ledger {
    fn mark_active(&mut self, idx: usize, link: &mut Link) {
        if !link.active {
            link.active = true;
            self.active.push(idx as u32);
        }
    }
}

/// Access to a component's ports during its tick.
///
/// Input ports are numbered `0..n_inputs()`, output ports `0..n_outputs()`,
/// in the order given to [`Engine::add_component`].
#[derive(Debug)]
pub struct PortIo<'a> {
    now: Cycle,
    links: &'a mut [Link],
    inputs: &'a [LinkId],
    outputs: &'a [LinkId],
    ledger: &'a mut Ledger,
}

impl PortIo<'_> {
    /// Number of input ports.
    pub fn n_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of output ports.
    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Peeks at the flit arriving on input `port` this cycle, if any.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn peek(&self, port: usize) -> Option<&Flit> {
        self.links[self.inputs[port].index()].peek(self.now)
    }

    /// Consumes the flit arriving on input `port` (at most one per cycle).
    ///
    /// The caller must eventually call [`PortIo::return_credit`] for the
    /// same port, once per consumed flit.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn recv(&mut self, port: usize) -> Option<Flit> {
        let flit = self.links[self.inputs[port].index()].recv(self.now);
        if flit.is_some() {
            self.ledger.in_flight -= 1;
        }
        flit
    }

    /// Returns one credit on input `port` (a staging slot freed).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn return_credit(&mut self, port: usize) {
        let idx = self.inputs[port].index();
        self.links[idx].return_credit(self.now);
        self.ledger.mark_active(idx, &mut self.links[idx]);
    }

    /// `true` if output `port` can accept a flit this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn can_send(&self, port: usize) -> bool {
        self.links[self.outputs[port].index()].can_send(self.now)
    }

    /// Sends a flit on output `port`.
    ///
    /// # Panics
    ///
    /// Panics if the link has no credit or was already used this cycle —
    /// guard with [`PortIo::can_send`].
    pub fn send(&mut self, port: usize, flit: Flit) {
        let idx = self.outputs[port].index();
        self.links[idx].send(self.now, flit);
        self.ledger.total_moves += 1;
        self.ledger.in_flight += 1;
        self.ledger.mark_active(idx, &mut self.links[idx]);
    }

    /// Credits currently available on output `port` (how much more the
    /// downstream staging buffer can take).
    pub fn credits(&self, port: usize) -> u32 {
        self.links[self.outputs[port].index()].credits()
    }
}

/// The simulation engine: owns links and components, advances time.
#[derive(Default)]
pub struct Engine {
    now: Cycle,
    links: Vec<Link>,
    comps: Vec<Box<dyn Component>>,
    bindings: Vec<Binding>,
    /// Flat arena of all components' port→link bindings.
    ports: Vec<LinkId>,
    ledger: Ledger,
}

impl Engine {
    /// Creates an empty engine at cycle 0.
    pub fn new() -> Self {
        Engine::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Registers a unidirectional link.
    ///
    /// # Panics
    ///
    /// Panics if `delay == 0` or `credits == 0` (see [`Link::new`]).
    pub fn add_link(&mut self, delay: u32, credits: u32) -> LinkId {
        let id = LinkId::from(self.links.len());
        self.links.push(Link::new(delay, credits));
        id
    }

    /// Registers a component with its port bindings and returns its index.
    ///
    /// `inputs[i]` becomes the component's input port `i` (it is the
    /// *receiver* of that link); `outputs[i]` becomes output port `i` (it is
    /// the *sender*). Each link must have exactly one sender and one
    /// receiver across all components; debug builds catch violations
    /// through the links' credit-conservation assertions.
    pub fn add_component(
        &mut self,
        component: Box<dyn Component>,
        inputs: Vec<LinkId>,
        outputs: Vec<LinkId>,
    ) -> usize {
        let in_start = self.ports.len() as u32;
        self.ports.extend_from_slice(&inputs);
        let out_start = self.ports.len() as u32;
        self.ports.extend_from_slice(&outputs);
        self.comps.push(component);
        self.bindings.push(Binding {
            in_start,
            in_len: inputs.len() as u32,
            out_start,
            out_len: outputs.len() as u32,
        });
        self.comps.len() - 1
    }

    /// Number of registered components.
    pub fn n_components(&self) -> usize {
        self.comps.len()
    }

    /// Number of registered links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Installs a fault plan on every registered link.
    ///
    /// Each link gets its own deterministic random stream derived from the
    /// plan's seed and the link's id, so fault timing is independent of
    /// traffic and identical across same-seed runs. A no-op plan installs
    /// nothing, keeping fault-free runs on the fast path. Call after all
    /// links are registered.
    pub fn install_faults(&mut self, plan: &FaultPlan) {
        if plan.is_noop() {
            return;
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            link.install_faults(plan.for_link(LinkId::from(i)));
            // Faulty links stay permanently in the active set: outage
            // schedules and condemned-flit evaporation advance every cycle.
            self.ledger.mark_active(i, link);
        }
    }

    /// Schedules a deterministic outage on one link: it refuses new flits
    /// during `[from, until)` and publishes the down/up transitions
    /// (drainable via [`Engine::drain_link_events`]). In-flight flits
    /// still arrive and credits still propagate, so worms stall rather
    /// than tear.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn script_outage(&mut self, link: LinkId, from: Cycle, until: Cycle) {
        let idx = link.index();
        self.links[idx].script_outage(from, until);
        // Edge detection needs begin_cycle every cycle from now on.
        self.ledger.mark_active(idx, &mut self.links[idx]);
    }

    /// Sets the administrative down state of one link, as driven by a
    /// control plane's command stream (`mdw-routed` link up/down events).
    /// The transition is published immediately and holds until the next
    /// call — no scheduled end, unlike [`Engine::script_outage`].
    pub fn set_link_forced_down(&mut self, link: LinkId, down: bool) {
        let idx = link.index();
        self.links[idx].set_forced_down(self.now, down);
    }

    /// Enables up/down transition publication on every link (links that
    /// can actually go down — fault streams or scripted windows — start
    /// recording; healthy links never transition, so this costs nothing
    /// for them). Call before or after [`Engine::install_faults`].
    pub fn publish_link_events(&mut self) {
        for link in &mut self.links {
            link.publish_transitions();
        }
    }

    /// Drains every link's recorded up/down transitions into one stream,
    /// ordered by (cycle, link). Empty unless outages were scripted or
    /// [`Engine::publish_link_events`] was enabled on a faulty fabric.
    pub fn drain_link_events(&mut self) -> Vec<LinkEvent> {
        let mut events = Vec::new();
        for (i, link) in self.links.iter_mut().enumerate() {
            for (at, down) in link.take_transitions() {
                events.push(LinkEvent {
                    link: LinkId::from(i),
                    at,
                    down,
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.link.index()));
        events
    }

    /// `true` if `link` refuses new flits this cycle (scripted or
    /// fault-plan outage in effect).
    pub fn link_is_down(&self, link: LinkId) -> bool {
        self.links[link.index()].is_down(self.now)
    }

    /// Sum of injected-fault counters across all links.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut total = FaultCounters::default();
        for link in &self.links {
            if let Some(c) = link.fault_counters() {
                total.merge(c);
            }
        }
        total
    }

    /// Total flits sent over all links since the start of the run — the
    /// engine-level progress measure used by deadlock watchdogs. O(1):
    /// maintained on every [`PortIo::send`] instead of scanning all links.
    ///
    /// Debug builds — and any build with the `invariant-audit` feature —
    /// cross-check the ledger against a full link scan.
    pub fn total_flit_moves(&self) -> u64 {
        if cfg!(any(debug_assertions, feature = "invariant-audit")) {
            assert_eq!(
                self.ledger.total_moves,
                self.links.iter().map(Link::total_flits).sum::<u64>(),
                "flit conservation violated: ledger total_moves out of sync"
            );
        }
        self.ledger.total_moves
    }

    /// Flits ever sent over one specific link (utilization accounting).
    pub fn link_total_flits(&self, link: LinkId) -> u64 {
        self.links[link.index()].total_flits()
    }

    /// Number of flits currently propagating inside links. O(1):
    /// maintained on send/recv/evaporation instead of scanning all links.
    ///
    /// Debug builds — and any build with the `invariant-audit` feature —
    /// cross-check the ledger against a full link scan.
    pub fn flits_in_links(&self) -> usize {
        if cfg!(any(debug_assertions, feature = "invariant-audit")) {
            assert_eq!(
                self.ledger.in_flight,
                self.links.iter().map(Link::in_flight).sum::<usize>(),
                "flit conservation violated: ledger in_flight out of sync"
            );
        }
        self.ledger.in_flight
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        // Only links with credits propagating back (or faults installed)
        // pay `begin_cycle`; idle links cost nothing. A link leaves the set
        // the moment its credit queue drains and re-enters on the next
        // `send`/`return_credit` through its PortIo.
        let mut i = 0;
        while i < self.ledger.active.len() {
            let idx = self.ledger.active[i] as usize;
            let link = &mut self.links[idx];
            self.ledger.in_flight -= link.begin_cycle(now);
            if link.needs_begin_cycle() {
                i += 1;
            } else {
                link.active = false;
                self.ledger.active.swap_remove(i);
            }
        }
        let links = &mut self.links[..];
        let ports = &self.ports[..];
        let ledger = &mut self.ledger;
        for (comp, b) in self.comps.iter_mut().zip(&self.bindings) {
            let mut io = PortIo {
                now,
                links: &mut *links,
                inputs: &ports[b.in_start as usize..(b.in_start + b.in_len) as usize],
                outputs: &ports[b.out_start as usize..(b.out_start + b.out_len) as usize],
                ledger: &mut *ledger,
            };
            comp.tick(now, &mut io);
        }
        #[cfg(feature = "invariant-audit")]
        self.audit_invariants();
    }

    /// Full-fabric invariant sweep, run after every cycle under the
    /// `invariant-audit` feature: per-link credit conservation plus the
    /// flit-conservation ledger cross-checks. O(links) per cycle, so it is
    /// feature-gated rather than tied to `debug_assertions` — quick-scale
    /// sweeps run under it in CI, full-scale ones don't pay for it.
    #[cfg(feature = "invariant-audit")]
    fn audit_invariants(&self) {
        for link in &self.links {
            link.audit_credit_conservation();
        }
        let _ = self.total_flit_moves();
        let _ = self.flits_in_links();
    }

    /// Runs for `cycles` additional cycles.
    pub fn run_for(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Runs until `cycle` (absolute), or not at all if already past it.
    pub fn run_until(&mut self, cycle: Cycle) {
        while self.now < cycle {
            self.step();
        }
    }

    /// Runs until `stop` returns `true` (checked every `check_every` cycles)
    /// or until `max_cycle`. Returns the cycle at which it stopped.
    pub fn run_while<F: FnMut(&Engine) -> bool>(
        &mut self,
        mut keep_going: F,
        check_every: u64,
        max_cycle: Cycle,
    ) -> Cycle {
        let check_every = check_every.max(1);
        while self.now < max_cycle {
            for _ in 0..check_every {
                if self.now >= max_cycle {
                    break;
                }
                self.step();
            }
            if !keep_going(self) {
                break;
            }
        }
        self.now
    }

    /// Mutable access to a component, downcast by the caller.
    ///
    /// This is an escape hatch for test instrumentation; simulation logic
    /// should communicate through links and shared trackers instead.
    pub fn component_mut(&mut self, index: usize) -> &mut dyn Component {
        self.comps[index].as_mut()
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Engine(cycle {}, {} components, {} links)",
            self.now,
            self.comps.len(),
            self.links.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::{Packet, PacketBuilder};
    use std::cell::Cell;
    use std::rc::Rc;

    struct Producer {
        pkt: Rc<Packet>,
        next: u16,
    }
    impl Component for Producer {
        fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
            if self.next < self.pkt.total_flits() && io.can_send(0) {
                io.send(0, Flit::new(self.pkt.clone(), self.next));
                self.next += 1;
            }
        }
    }

    struct Consumer {
        seen: Rc<Cell<u64>>,
        stall_until: Cycle,
    }
    impl Component for Consumer {
        fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
            if now < self.stall_until {
                return;
            }
            if io.recv(0).is_some() {
                io.return_credit(0);
                self.seen.set(self.seen.get() + 1);
            }
        }
    }

    fn pkt(payload: u16) -> Rc<Packet> {
        Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), payload, 16).build())
    }

    fn pipeline(stall_until: Cycle, credits: u32) -> (Engine, Rc<Cell<u64>>) {
        let mut e = Engine::new();
        let l = e.add_link(1, credits);
        let p = pkt(8); // 2 header + 8 payload = 10 flits
        e.add_component(Box::new(Producer { pkt: p, next: 0 }), vec![], vec![l]);
        let seen = Rc::new(Cell::new(0));
        e.add_component(
            Box::new(Consumer {
                seen: seen.clone(),
                stall_until,
            }),
            vec![l],
            vec![],
        );
        (e, seen)
    }

    #[test]
    fn flits_flow_end_to_end() {
        let (mut e, seen) = pipeline(0, 4);
        e.run_for(30);
        assert_eq!(seen.get(), 10);
        assert_eq!(e.total_flit_moves(), 10);
        assert_eq!(e.flits_in_links(), 0);
    }

    #[test]
    fn backpressure_limits_producer() {
        // Consumer asleep until cycle 100; only `credits` flits can leave.
        let (mut e, seen) = pipeline(100, 3);
        e.run_for(50);
        assert_eq!(seen.get(), 0);
        assert_eq!(e.total_flit_moves(), 3, "window is 3 flits");
        e.run_for(100);
        assert_eq!(seen.get(), 10, "all flits delivered after stall");
    }

    #[test]
    fn run_until_and_now() {
        let (mut e, _) = pipeline(0, 4);
        e.run_until(7);
        assert_eq!(e.now(), 7);
        e.run_until(3);
        assert_eq!(e.now(), 7, "run_until never goes backwards");
    }

    #[test]
    fn run_while_stops_on_predicate() {
        let (mut e, seen) = pipeline(0, 4);
        let end = e.run_while(|_| seen.get() < 5, 1, 1_000);
        assert!(seen.get() >= 5);
        assert!(end < 1_000);
    }

    #[test]
    fn scripted_outage_stalls_and_publishes_events() {
        let (mut e, seen) = pipeline(0, 4);
        let link = LinkId::from(0usize);
        e.script_outage(link, 5, 40);
        e.run_for(30);
        assert!(e.link_is_down(link));
        let before = seen.get();
        assert!(before < 10, "outage must stall the worm mid-flight");
        e.run_for(40);
        assert_eq!(seen.get(), 10, "all flits delivered after the heal");
        let events = e.drain_link_events();
        assert_eq!(
            events,
            vec![
                LinkEvent {
                    link,
                    at: 5,
                    down: true
                },
                LinkEvent {
                    link,
                    at: 40,
                    down: false
                },
            ]
        );
        assert!(e.drain_link_events().is_empty());
    }

    #[test]
    fn fault_plan_outages_publish_events_when_enabled() {
        let (mut e, _) = pipeline(0, 4);
        e.install_faults(&FaultPlan {
            down_every: 20,
            down_len: 5,
            ..FaultPlan::none(3)
        });
        e.publish_link_events();
        e.run_for(200);
        let events = e.drain_link_events();
        assert!(
            events.iter().any(|ev| ev.down) && events.iter().any(|ev| !ev.down),
            "periodic outages must publish both edges: {events:?}"
        );
        let mut last = 0;
        for ev in &events {
            assert!(ev.at >= last, "events sorted by cycle");
            last = ev.at;
        }
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let (mut a, seen_a) = pipeline(5, 2);
        let (mut b, seen_b) = pipeline(5, 2);
        for _ in 0..40 {
            a.step();
            b.step();
            assert_eq!(seen_a.get(), seen_b.get());
            assert_eq!(a.total_flit_moves(), b.total_flit_moves());
        }
    }
}
