//! Lightweight optional event tracing for debugging simulations.
//!
//! Tracing is off by default and costs one branch per call when disabled.
//! When enabled, events are buffered as formatted strings with their cycle
//! and can be dumped or filtered afterwards.

use crate::Cycle;

/// An event buffer gated by an on/off switch.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<(Cycle, String)>,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled. Prefer passing a closure-produced string
    /// only when enabled:
    ///
    /// ```
    /// use netsim::trace::Tracer;
    /// let mut t = Tracer::enabled();
    /// if t.is_enabled() {
    ///     t.log(3, format!("packet p1 admitted"));
    /// }
    /// assert_eq!(t.events().len(), 1);
    /// ```
    pub fn log(&mut self, now: Cycle, event: String) {
        if self.enabled {
            self.events.push((now, event));
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(Cycle, String)] {
        &self.events
    }

    /// Events whose text contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a (Cycle, String)> {
        self.events.iter().filter(move |(_, e)| e.contains(needle))
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (cycle, event) in &self.events {
            out.push_str(&format!("[{cycle:>8}] {event}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.log(1, "x".to_string());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_and_filters() {
        let mut t = Tracer::enabled();
        t.log(1, "admit p1".to_string());
        t.log(2, "drop p2".to_string());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.matching("admit").count(), 1);
        let render = t.render();
        assert!(render.contains("admit p1"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn toggling() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.log(5, "on".into());
        t.set_enabled(false);
        t.log(6, "off".into());
        assert_eq!(t.events().len(), 1);
    }
}
