//! Lightweight optional event tracing for debugging simulations.
//!
//! Two tracers live here:
//!
//! * [`Tracer`] — free-form string events for ad-hoc debugging;
//! * [`SemTrace`] — *structured* semantic protocol events
//!   ([`SemEvent`]), recorded by the switches at every central-queue
//!   reservation, chunk release, and purge. Because each event carries
//!   the observable outcome (grant flag, free count), a recorded run can
//!   be replayed step-for-step against the pure transition cores in
//!   `switches::semantics` — the trace-conformance refinement check the
//!   `invariant-audit` feature performs after every experiment.
//!
//! Both are off by default and cost one branch per call when disabled.

use crate::Cycle;
use std::cell::RefCell;
use std::rc::Rc;

/// An event buffer gated by an on/off switch.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    events: Vec<(Cycle, String)>,
}

impl Tracer {
    /// Creates a disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// Turns tracing on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled. Prefer passing a closure-produced string
    /// only when enabled:
    ///
    /// ```
    /// use netsim::trace::Tracer;
    /// let mut t = Tracer::enabled();
    /// if t.is_enabled() {
    ///     t.log(3, format!("packet p1 admitted"));
    /// }
    /// assert_eq!(t.events().len(), 1);
    /// ```
    pub fn log(&mut self, now: Cycle, event: String) {
        if self.enabled {
            self.events.push((now, event));
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(Cycle, String)] {
        &self.events
    }

    /// Events whose text contains `needle`.
    pub fn matching<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a (Cycle, String)> {
        self.events.iter().filter(move |(_, e)| e.contains(needle))
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (cycle, event) in &self.events {
            out.push_str(&format!("[{cycle:>8}] {event}\n"));
        }
        out
    }
}

/// One semantic protocol event of a switch's buffer-accounting machine.
///
/// Each variant records both the *input* of the abstract transition and
/// its *observable outcome*, so a replay against the pure model needs no
/// access to simulator internals: it re-runs the transition and compares
/// outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SemEvent {
    /// A full-packet central-queue reservation attempt (central-buffer
    /// architecture).
    CqReserve {
        /// Switch raw id.
        sw: u32,
        /// Requesting input port (or virtual input for synthesized
        /// packets).
        input: usize,
        /// Chunks the packet needs.
        need: usize,
        /// `true` if the packet arrived through an up port.
        descending: bool,
        /// Whether the reservation was granted this attempt.
        granted: bool,
        /// Free chunks after the attempt.
        free_after: usize,
    },
    /// A chunk's last reader finished and the chunk was routed to a
    /// waiter or back to the pool.
    CqRelease {
        /// Switch raw id.
        sw: u32,
        /// Free chunks after the release.
        free_after: usize,
    },
    /// A quiesce purge reset the chunk pool to pristine.
    CqPurge {
        /// Switch raw id.
        sw: u32,
    },
}

/// A buffer of semantic protocol events gated by an on/off switch.
///
/// Shared between the switch (writer) and the experiment harness (reader)
/// through a [`SemHandle`].
#[derive(Debug, Default)]
pub struct SemTrace {
    enabled: bool,
    events: Vec<(Cycle, SemEvent)>,
}

/// Shared handle to a [`SemTrace`].
pub type SemHandle = Rc<RefCell<SemTrace>>;

impl SemTrace {
    /// Creates a disabled trace buffer behind a shared handle.
    pub fn handle() -> SemHandle {
        Rc::new(RefCell::new(SemTrace::default()))
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Returns `true` if events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn log(&mut self, now: Cycle, event: SemEvent) {
        if self.enabled {
            self.events.push((now, event));
        }
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(Cycle, SemEvent)] {
        &self.events
    }

    /// Drops all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sem_trace_gates_on_enabled() {
        let h = SemTrace::handle();
        h.borrow_mut().log(1, SemEvent::CqPurge { sw: 0 });
        assert!(h.borrow().events().is_empty());
        h.borrow_mut().set_enabled(true);
        h.borrow_mut().log(
            2,
            SemEvent::CqRelease {
                sw: 0,
                free_after: 7,
            },
        );
        assert_eq!(h.borrow().events().len(), 1);
        assert!(h.borrow().is_enabled());
        h.borrow_mut().clear();
        assert!(h.borrow().events().is_empty());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new();
        t.log(1, "x".to_string());
        assert!(t.events().is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_tracer_records_and_filters() {
        let mut t = Tracer::enabled();
        t.log(1, "admit p1".to_string());
        t.log(2, "drop p2".to_string());
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.matching("admit").count(), 1);
        let render = t.render();
        assert!(render.contains("admit p1"));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn toggling() {
        let mut t = Tracer::new();
        t.set_enabled(true);
        t.log(5, "on".into());
        t.set_enabled(false);
        t.log(6, "off".into());
        assert_eq!(t.events().len(), 1);
    }
}
