//! Routing-header encodings for unicast and multidestination worms.
//!
//! The paper (§3) treats the header encoding as orthogonal to the replication
//! mechanism. Three encodings are modeled:
//!
//! * [`RoutingHeader::Unicast`] — a single destination identifier, as used by
//!   ordinary point-to-point worms.
//! * [`RoutingHeader::BitString`] — the paper's preferred single-phase
//!   multicast encoding: `N` bits, bit `i` set iff node `i` is a destination.
//!   Switches decode it by ANDing with per-output-port reachability strings
//!   and rewrite the header on every replication.
//! * [`RoutingHeader::Multiport`] — the multiport (source-routed port-mask)
//!   encoding of the authors' companion work \[32\]: the header carries one
//!   port mask per switch hop, consumed hop by hop. Decode logic is trivial
//!   and needs no topology knowledge in the switch, but all branches created
//!   at a hop share the *same* remaining header, which restricts the
//!   destination sets one worm can cover — arbitrary sets need multiple
//!   phases.
//!
//! Header size is accounted in flits (the paper charges the `N`-bit string's
//! transmission time); see [`RoutingHeader::header_flits`].

use crate::destset::DestSet;
use crate::ids::NodeId;
use std::fmt;

/// A set of switch output ports, encoded as a bitmask (ports `0..=15`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortMask(pub u16);

impl PortMask {
    /// The empty port mask.
    pub const EMPTY: PortMask = PortMask(0);

    /// Mask containing the single port `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 16`.
    pub fn single(p: usize) -> Self {
        assert!(p < 16, "port {p} out of range for PortMask");
        PortMask(1 << p)
    }

    /// Builds a mask from an iterator of port indices.
    ///
    /// # Panics
    ///
    /// Panics if any port is `>= 16`.
    pub fn from_ports<I: IntoIterator<Item = usize>>(ports: I) -> Self {
        let mut m = PortMask(0);
        for p in ports {
            m.set(p);
        }
        m
    }

    /// Adds port `p` to the mask.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 16`.
    pub fn set(&mut self, p: usize) {
        assert!(p < 16, "port {p} out of range for PortMask");
        self.0 |= 1 << p;
    }

    /// Tests whether port `p` is in the mask.
    pub fn contains(&self, p: usize) -> bool {
        p < 16 && self.0 & (1 << p) != 0
    }

    /// Number of ports in the mask.
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if no ports are selected.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over the selected port indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..16).filter(move |p| bits & (1 << p) != 0)
    }
}

impl fmt::Debug for PortMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PortMask[")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// The routing information carried in a worm's header flits.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum RoutingHeader {
    /// Point-to-point worm addressed to a single node.
    Unicast {
        /// The destination node.
        dest: NodeId,
    },
    /// Bit-string-encoded multidestination worm (paper §3): one bit per node.
    BitString {
        /// The remaining destination set. Switches shrink this on the way by
        /// ANDing with per-port reachability strings.
        dests: DestSet,
    },
    /// Multiport-encoded multidestination worm (\[32\]): one output-port mask
    /// per remaining switch hop, consumed front-first.
    Multiport {
        /// `masks[0]` selects this hop's output ports; branches continue with
        /// `masks[1..]`.
        masks: Vec<PortMask>,
    },
    /// Dataless barrier-gather worm, *combined inside switches* rather than
    /// routed: a switch consumes arriving gather worms of a round, and once
    /// every child port has reported it emits one merged gather upward (or
    /// the release broadcast at the combining root). The switch-combining
    /// extension of the paper's §9 outlook \[34\].
    BarrierGather {
        /// The barrier round this gather belongs to.
        round: u32,
    },
}

impl RoutingHeader {
    /// Convenience constructor for a bit-string header.
    pub fn bitstring(dests: DestSet) -> Self {
        RoutingHeader::BitString { dests }
    }

    /// Returns `true` for multidestination (multicast-capable) headers.
    pub fn is_multidestination(&self) -> bool {
        !matches!(
            self,
            RoutingHeader::Unicast { .. } | RoutingHeader::BarrierGather { .. }
        )
    }

    /// Number of destinations still encoded in the header, when that is
    /// locally decidable (`Multiport` headers don't know their fan-out
    /// without the topology, so they report `None`).
    pub fn dest_count(&self) -> Option<usize> {
        match self {
            RoutingHeader::Unicast { .. } => Some(1),
            RoutingHeader::BitString { dests } => Some(dests.count()),
            RoutingHeader::Multiport { .. } => None,
            RoutingHeader::BarrierGather { .. } => Some(0),
        }
    }

    /// Number of header flits this encoding occupies on the wire.
    ///
    /// Every header starts with one control flit (packet kind, length, and —
    /// for unicast — the `ceil(log2 N / bits)` destination id is folded into
    /// additional flits). Bit-string headers then carry `ceil(N / bits)`
    /// flits; multiport headers carry one mask per hop, `ceil(ports/bits)`
    /// flits each.
    ///
    /// This is the quantity the paper charges against multicast headers: for
    /// `N = 256` and 8-bit flits a bit-string header alone is 32 flits.
    ///
    /// # Panics
    ///
    /// Panics if `bits_per_flit` or `system_size` is zero.
    pub fn header_flits(&self, system_size: usize, bits_per_flit: usize) -> usize {
        assert!(bits_per_flit > 0, "flit must carry at least one bit");
        assert!(system_size > 0, "system must have at least one node");
        let id_bits = usize::BITS as usize - (system_size.max(2) - 1).leading_zeros() as usize;
        match self {
            RoutingHeader::Unicast { .. } => 1 + id_bits.div_ceil(bits_per_flit),
            RoutingHeader::BitString { dests } => 1 + dests.bitstring_flits(bits_per_flit),
            RoutingHeader::Multiport { masks } => {
                // One mask per hop; each mask is at most 16 bits wide.
                1 + masks.len() * 16usize.div_ceil(bits_per_flit)
            }
            // Control flit plus a 32-bit round number.
            RoutingHeader::BarrierGather { .. } => 1 + 32usize.div_ceil(bits_per_flit),
        }
    }

    /// For bit-string headers, the residual header after replication out of a
    /// port with reachability `reach`: `dests ∩ reach`.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-bit-string header, or if universes differ.
    pub fn restrict_to(&self, reach: &DestSet) -> RoutingHeader {
        match self {
            RoutingHeader::BitString { dests } => RoutingHeader::BitString {
                dests: dests.and(reach),
            },
            _ => panic!("restrict_to is only defined for bit-string headers"),
        }
    }

    /// For multiport headers, splits off this hop's port mask and returns it
    /// together with the residual header for the next hop.
    ///
    /// Returns `None` if no masks remain (the worm should already have been
    /// consumed).
    pub fn advance_multiport(&self) -> Option<(PortMask, RoutingHeader)> {
        match self {
            RoutingHeader::Multiport { masks } => masks.split_first().map(|(first, rest)| {
                (
                    *first,
                    RoutingHeader::Multiport {
                        masks: rest.to_vec(),
                    },
                )
            }),
            _ => None,
        }
    }
}

impl fmt::Debug for RoutingHeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingHeader::Unicast { dest } => write!(f, "Unicast({dest})"),
            RoutingHeader::BitString { dests } => write!(f, "BitString({dests:?})"),
            RoutingHeader::Multiport { masks } => write!(f, "Multiport({masks:?})"),
            RoutingHeader::BarrierGather { round } => write!(f, "BarrierGather(r{round})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portmask_basics() {
        let mut m = PortMask::from_ports([0, 3, 7]);
        assert_eq!(m.count(), 3);
        assert!(m.contains(3));
        assert!(!m.contains(2));
        m.set(2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 2, 3, 7]);
        assert!(PortMask::EMPTY.is_empty());
        assert_eq!(PortMask::single(5).iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn portmask_range_checked() {
        PortMask::single(16);
    }

    #[test]
    fn unicast_header_size() {
        let h = RoutingHeader::Unicast { dest: NodeId(5) };
        // 64 nodes -> 6 id bits -> 1 flit of id + 1 control flit.
        assert_eq!(h.header_flits(64, 8), 2);
        // 256 nodes -> 8 id bits -> still 2 flits.
        assert_eq!(h.header_flits(256, 8), 2);
        // 1024 nodes -> 10 id bits -> 2 id flits + control.
        assert_eq!(h.header_flits(1024, 8), 3);
        assert_eq!(h.dest_count(), Some(1));
        assert!(!h.is_multidestination());
    }

    #[test]
    fn bitstring_header_size_scales_with_system() {
        let h64 = RoutingHeader::bitstring(DestSet::empty(64));
        assert_eq!(h64.header_flits(64, 8), 1 + 8);
        let h256 = RoutingHeader::bitstring(DestSet::empty(256));
        assert_eq!(h256.header_flits(256, 8), 1 + 32);
        assert!(h64.is_multidestination());
    }

    #[test]
    fn multiport_header_size_scales_with_hops() {
        let h = RoutingHeader::Multiport {
            masks: vec![PortMask::single(0); 5],
        };
        // 5 hops, 16-bit masks in 8-bit flits -> 2 flits per hop + control.
        assert_eq!(h.header_flits(64, 8), 1 + 10);
        assert_eq!(h.dest_count(), None);
    }

    #[test]
    fn barrier_gather_header() {
        let h = RoutingHeader::BarrierGather { round: 7 };
        assert!(!h.is_multidestination(), "gathers are not replicated");
        assert_eq!(h.dest_count(), Some(0), "consumed by switches, not hosts");
        // Control flit + 4 flits of round number at 8 bits per flit.
        assert_eq!(h.header_flits(64, 8), 5);
        assert!(h.advance_multiport().is_none());
        assert_eq!(format!("{h:?}"), "BarrierGather(r7)");
    }

    #[test]
    fn restrict_to_is_decode_and() {
        let dests = DestSet::from_nodes(16, [1, 2, 9].map(NodeId));
        let reach = DestSet::from_nodes(16, [2, 3, 9].map(NodeId));
        let h = RoutingHeader::bitstring(dests);
        match h.restrict_to(&reach) {
            RoutingHeader::BitString { dests } => {
                assert_eq!(dests, DestSet::from_nodes(16, [2, 9].map(NodeId)));
            }
            other => panic!("unexpected header {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "only defined for bit-string")]
    fn restrict_unicast_panics() {
        let h = RoutingHeader::Unicast { dest: NodeId(0) };
        let _ = h.restrict_to(&DestSet::empty(4));
    }

    #[test]
    fn multiport_advance() {
        let h = RoutingHeader::Multiport {
            masks: vec![PortMask::from_ports([1, 2]), PortMask::single(0)],
        };
        let (first, rest) = h.advance_multiport().expect("has masks");
        assert_eq!(first, PortMask::from_ports([1, 2]));
        let (second, tail) = rest.advance_multiport().expect("one more");
        assert_eq!(second, PortMask::single(0));
        assert!(tail.advance_multiport().is_none());
        assert!(RoutingHeader::Unicast { dest: NodeId(0) }
            .advance_multiport()
            .is_none());
    }
}
