//! Deterministic fault injection for links.
//!
//! A [`FaultPlan`] describes a stochastic fault environment; every link
//! derives its own [`LinkFaults`] stream from the plan's seed (via the
//! [`SimRng`] splitter), so two runs with the same plan perturb the network
//! identically regardless of traffic. Fault-free links carry no plan at all
//! — the hot paths branch on an `Option` that is `None` by default.
//!
//! Three fault classes are modeled, matching what endpoint recovery can
//! plausibly survive in a wormhole network:
//!
//! * **Worm loss** (`flit_drop`): each flit entering a link faces an
//!   independent hazard; a condemned flit takes the *rest of its worm* with
//!   it on that link (a real link CRC failure poisons the whole packet).
//!   To keep switch pipelines sound — a worm missing its tail would hold
//!   paths forever — the roll is made at the head flit with the compounded
//!   per-packet probability, and every flit of a condemned worm is silently
//!   discarded at the receiving end of the link, with credits returned as
//!   if consumed. Downstream components never see any part of the worm.
//! * **Flit corruption** (`flit_corrupt`): the flit is delivered but marked
//!   corrupt; endpoints detect this with the packet checksum and discard
//!   the packet (switches forward corrupt flits unknowingly, as real ones
//!   do).
//! * **Link outages** (`down_every` / `down_len`): the link periodically
//!   refuses new flits for an interval — in-flight flits still arrive, so
//!   worms stall but are not torn.
//! * **Credit leaks** (`credit_leak`): a returned credit occasionally
//!   vanishes, permanently shrinking the link's window. Leaks are capped at
//!   `max_credits - 1` so the link retains forward progress (a fully wedged
//!   link is indistinguishable from a cut cable, which recovery cannot and
//!   should not mask).

use crate::ids::LinkId;
use crate::rng::SimRng;
use crate::Cycle;

/// A seeded description of the fault environment, shared by all links.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault randomness (independent of workload seeds).
    pub seed: u64,
    /// Per-flit hazard of losing the worm on a link traversal.
    pub flit_drop: f64,
    /// Per-flit probability of corruption in transit.
    pub flit_corrupt: f64,
    /// Mean cycles between outages on a link (`0` disables outages).
    pub down_every: Cycle,
    /// Length of each outage in cycles.
    pub down_len: Cycle,
    /// Probability that a returned credit is lost.
    pub credit_leak: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a sweep baseline).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            flit_drop: 0.0,
            flit_corrupt: 0.0,
            down_every: 0,
            down_len: 0,
            credit_leak: 0.0,
        }
    }

    /// A drop-only plan, the common sweep axis.
    pub fn drops(seed: u64, flit_drop: f64) -> Self {
        FaultPlan {
            flit_drop,
            ..FaultPlan::none(seed)
        }
    }

    /// `true` if the plan can never inject a fault.
    pub fn is_noop(&self) -> bool {
        self.flit_drop <= 0.0
            && self.flit_corrupt <= 0.0
            && (self.down_every == 0 || self.down_len == 0)
            && self.credit_leak <= 0.0
    }

    /// Derives the per-link fault state for `link`.
    pub fn for_link(&self, link: LinkId) -> LinkFaults {
        let mut rng = SimRng::new(self.seed).fork(0xFA01_7000 ^ link.index() as u64);
        let first_down = if self.down_every > 0 && self.down_len > 0 {
            1 + rng.below(2 * self.down_every as usize) as Cycle
        } else {
            Cycle::MAX
        };
        LinkFaults {
            plan: self.clone(),
            rng,
            next_down: first_down,
            down_until: 0,
            condemn_worm: false,
            counters: FaultCounters::default(),
        }
    }
}

/// Running totals of injected faults (per link; summed by the engine).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Worms condemned on a link (each loses all its flits there).
    pub worms_dropped: u64,
    /// Individual flits discarded as part of condemned worms.
    pub flits_dropped: u64,
    /// Flits delivered with a corruption mark.
    pub flits_corrupted: u64,
    /// Cycles of scheduled link outage.
    pub down_cycles: u64,
    /// Credits swallowed on the return path.
    pub credits_leaked: u64,
}

impl FaultCounters {
    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        self.worms_dropped += other.worms_dropped;
        self.flits_dropped += other.flits_dropped;
        self.flits_corrupted += other.flits_corrupted;
        self.down_cycles += other.down_cycles;
        self.credits_leaked += other.credits_leaked;
    }

    /// `true` if nothing was ever injected.
    pub fn is_clean(&self) -> bool {
        *self == FaultCounters::default()
    }
}

/// Per-link fault state, installed by [`crate::engine::Engine`].
#[derive(Debug, Clone)]
pub struct LinkFaults {
    plan: FaultPlan,
    rng: SimRng,
    next_down: Cycle,
    down_until: Cycle,
    condemn_worm: bool,
    /// Injection totals for this link.
    pub counters: FaultCounters,
}

impl LinkFaults {
    /// Advances the outage schedule; returns `true` if the link is down.
    pub fn tick_outages(&mut self, now: Cycle) -> bool {
        if now >= self.next_down {
            self.down_until = now + self.plan.down_len;
            self.counters.down_cycles += self.plan.down_len;
            // Next outage a uniformly jittered interval later.
            self.next_down =
                self.down_until + 1 + self.rng.below(2 * self.plan.down_every as usize) as Cycle;
        }
        now < self.down_until
    }

    /// `true` while an outage is in effect (no schedule advance).
    pub fn is_down(&self, now: Cycle) -> bool {
        now < self.down_until
    }

    /// Rolls the fate of a flit entering the link. Returns `true` if the
    /// flit (and, from the head roll, its whole worm) must be discarded at
    /// the far end.
    ///
    /// `is_head` starts a new worm: the drop roll compounds the per-flit
    /// hazard over `worm_flits` so condemnation is always whole-worm.
    pub fn roll_drop(&mut self, is_head: bool, worm_flits: u16) -> bool {
        if is_head {
            self.condemn_worm = if self.plan.flit_drop > 0.0 {
                let p_keep = (1.0 - self.plan.flit_drop).powi(i32::from(worm_flits.max(1)));
                self.rng.chance(1.0 - p_keep)
            } else {
                false
            };
            if self.condemn_worm {
                self.counters.worms_dropped += 1;
            }
        }
        if self.condemn_worm {
            self.counters.flits_dropped += 1;
        }
        self.condemn_worm
    }

    /// Rolls corruption for a delivered flit.
    pub fn roll_corrupt(&mut self) -> bool {
        if self.plan.flit_corrupt > 0.0 && self.rng.chance(self.plan.flit_corrupt) {
            self.counters.flits_corrupted += 1;
            true
        } else {
            false
        }
    }

    /// Rolls a credit leak; `leak_budget` is how many more credits this
    /// link may lose. Returns `true` if the credit vanishes.
    pub fn roll_credit_leak(&mut self, leak_budget: u64) -> bool {
        if self.plan.credit_leak > 0.0
            && self.counters.credits_leaked < leak_budget
            && self.rng.chance(self.plan.credit_leak)
        {
            self.counters.credits_leaked += 1;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_plan_is_noop() {
        assert!(FaultPlan::none(1).is_noop());
        assert!(!FaultPlan::drops(1, 1e-3).is_noop());
    }

    #[test]
    fn per_link_streams_are_deterministic_and_distinct() {
        // Modest rate: compounded over 10-flit worms this is ~p = 0.4, so
        // 64-draw sequences from distinct streams differ with certainty.
        let plan = FaultPlan::drops(42, 0.05);
        let mut a = plan.for_link(LinkId::from(3usize));
        let mut a2 = plan.for_link(LinkId::from(3usize));
        let mut b = plan.for_link(LinkId::from(4usize));
        let seq =
            |f: &mut LinkFaults| -> Vec<bool> { (0..64).map(|_| f.roll_drop(true, 10)).collect() };
        let sa = seq(&mut a);
        assert_eq!(sa, seq(&mut a2));
        assert_ne!(sa, seq(&mut b));
    }

    #[test]
    fn whole_worm_is_condemned_together() {
        let plan = FaultPlan::drops(7, 0.9);
        let mut f = plan.for_link(LinkId::from(0usize));
        for _ in 0..32 {
            let head = f.roll_drop(true, 8);
            for _ in 1..8 {
                assert_eq!(f.roll_drop(false, 8), head, "mid-worm fate must match head");
            }
        }
    }

    #[test]
    fn outage_schedule_advances() {
        let plan = FaultPlan {
            down_every: 100,
            down_len: 10,
            ..FaultPlan::none(3)
        };
        let mut f = plan.for_link(LinkId::from(0usize));
        let mut down = 0u64;
        for now in 0..10_000 {
            if f.tick_outages(now) {
                down += 1;
            }
        }
        assert_eq!(down, f.counters.down_cycles);
        assert!(
            down > 100,
            "expected multiple outages, saw {down} down cycles"
        );
        assert!(down < 5_000);
    }

    #[test]
    fn credit_leaks_respect_budget() {
        let plan = FaultPlan {
            credit_leak: 1.0,
            ..FaultPlan::none(9)
        };
        let mut f = plan.for_link(LinkId::from(0usize));
        let leaked = (0..100).filter(|_| f.roll_credit_leak(3)).count();
        assert_eq!(leaked, 3, "budget caps leaks");
    }
}
