//! Latency/throughput statistics and end-to-end delivery tracking.
//!
//! The [`DeliveryTracker`] is the shared bookkeeper hosts report into: it
//! knows which destinations each message still owes a delivery to, measures
//! multicast latency both ways the literature defines it — time to the
//! *last* destination (Nupairoj & Ni's preferred definition, which the paper
//! adopts) and the *average* over destinations — and counts delivered
//! payload for throughput.

use crate::destset::DestSet;
use crate::ids::{MessageId, NodeId};
use crate::message::{Message, MessageKind};
use crate::Cycle;
use std::collections::HashMap;

/// Order statistics of a latency sample set.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Minimum.
    pub min: u64,
    /// Maximum.
    pub max: u64,
}

/// A growing collection of latency samples (in cycles).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples: Vec<u64>,
}

impl LatencyStats {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// Computes order statistics. Returns the all-zero summary when empty.
    pub fn summary(&self) -> Summary {
        if self.samples.is_empty() {
            return Summary::default();
        }
        let mut v = self.samples.clone();
        v.sort_unstable();
        let pct = |p: f64| -> u64 {
            let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
            v[idx]
        };
        Summary {
            count: v.len() as u64,
            mean: v.iter().sum::<u64>() as f64 / v.len() as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            min: v[0],
            max: *v.last().expect("non-empty"),
        }
    }

    /// Appends all samples from `other`.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples.extend_from_slice(&other.samples);
    }
}

/// Time-averaged occupancy gauge (e.g. central-queue fill level).
#[derive(Debug, Clone, Default)]
pub struct OccupancyStats {
    sum: u128,
    samples: u64,
    max: u64,
}

impl OccupancyStats {
    /// Creates an empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the occupancy observed this cycle.
    pub fn observe(&mut self, value: u64) {
        self.sum += value as u128;
        self.samples += 1;
        self.max = self.max.max(value);
    }

    /// Records the same occupancy for `n` consecutive cycles at once.
    ///
    /// Equivalent to calling [`OccupancyStats::observe`] `n` times — the
    /// batched form exists so a component whose ticks were skipped while it
    /// was provably idle can catch its per-cycle gauge up in O(1).
    pub fn observe_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.sum += u128::from(value) * u128::from(n);
        self.samples += n;
        self.max = self.max.max(value);
    }

    /// Mean occupancy over all observations, or `None` if none.
    pub fn mean(&self) -> Option<f64> {
        if self.samples == 0 {
            None
        } else {
            Some(self.sum as f64 / self.samples as f64)
        }
    }

    /// Peak occupancy observed.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Number of observations.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[derive(Debug)]
struct PendingMessage {
    created: Cycle,
    remaining: DestSet,
    n_dests: usize,
    latency_sum: u64,
    is_multicast: bool,
    payload_flits: u64,
}

/// Tracks every in-flight message and aggregates delivery statistics.
///
/// Hosts call [`DeliveryTracker::register`] when a message is generated and
/// [`DeliveryTracker::deliver`] when a destination has fully reassembled it.
/// Messages created before the measurement window (see
/// [`DeliveryTracker::set_measure_from`]) are tracked for correctness but
/// excluded from the statistics.
#[derive(Debug)]
pub struct DeliveryTracker {
    universe: usize,
    pending: HashMap<MessageId, PendingMessage>,
    measure_from: Cycle,
    /// Latency to the last destination of each completed multicast.
    pub mcast_last: LatencyStats,
    /// Mean per-destination latency of each completed multicast.
    pub mcast_avg: LatencyStats,
    /// Latency of completed unicasts.
    pub unicast: LatencyStats,
    completed_mcasts: u64,
    completed_unicasts: u64,
    completed_total: u64,
    payload_delivered: u64,
    deliveries: u64,
}

impl DeliveryTracker {
    /// Creates a tracker for a system of `universe` nodes.
    pub fn new(universe: usize) -> Self {
        DeliveryTracker {
            universe,
            pending: HashMap::new(),
            measure_from: 0,
            mcast_last: LatencyStats::new(),
            mcast_avg: LatencyStats::new(),
            unicast: LatencyStats::new(),
            completed_mcasts: 0,
            completed_unicasts: 0,
            completed_total: 0,
            payload_delivered: 0,
            deliveries: 0,
        }
    }

    /// Universe size the tracker was created for.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Excludes messages created before `cycle` from the statistics.
    pub fn set_measure_from(&mut self, cycle: Cycle) {
        self.measure_from = cycle;
    }

    /// Registers a freshly generated message.
    ///
    /// # Panics
    ///
    /// Panics if the id is already pending, or if the destination set is
    /// empty.
    pub fn register(&mut self, msg: &Message) {
        let remaining = msg.kind().dest_set(self.universe);
        assert!(!remaining.is_empty(), "message with no destinations");
        let n_dests = remaining.count();
        let prev = self.pending.insert(
            msg.id(),
            PendingMessage {
                created: msg.created(),
                remaining,
                n_dests,
                latency_sum: 0,
                is_multicast: msg.kind().is_multicast(),
                payload_flits: msg.payload_flits() as u64,
            },
        );
        assert!(prev.is_none(), "duplicate message id {:?}", msg.id());
    }

    /// Records that `host` has fully received message `id` at `now`.
    ///
    /// Duplicate or unexpected deliveries panic — exactly-once delivery to
    /// exactly the addressed set is a correctness invariant of every scheme.
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown or the host was not (or no longer
    /// is) one of its outstanding destinations.
    pub fn deliver(&mut self, id: MessageId, host: NodeId, now: Cycle) {
        let p = self
            .pending
            .get_mut(&id)
            .unwrap_or_else(|| panic!("delivery for unknown message {id:?}"));
        assert!(
            p.remaining.remove(host),
            "duplicate or misdirected delivery of {id:?} to {host}"
        );
        let latency = now.saturating_sub(p.created);
        p.latency_sum += latency;
        let measured = p.created >= self.measure_from;
        if measured {
            self.deliveries += 1;
            self.payload_delivered += p.payload_flits;
        }
        if p.remaining.is_empty() {
            let p = self.pending.remove(&id).expect("present");
            self.completed_total += 1;
            if measured {
                if p.is_multicast {
                    self.completed_mcasts += 1;
                    self.mcast_last.push(latency);
                    self.mcast_avg.push(p.latency_sum / p.n_dests as u64);
                } else {
                    self.completed_unicasts += 1;
                    self.unicast.push(latency);
                }
            }
        }
    }

    /// Messages still owed at least one delivery.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Completed multicasts within the measurement window.
    pub fn completed_mcasts(&self) -> u64 {
        self.completed_mcasts
    }

    /// Completed unicasts within the measurement window.
    pub fn completed_unicasts(&self) -> u64 {
        self.completed_unicasts
    }

    /// All messages ever completed (including warm-up).
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Payload flits delivered within the measurement window (each
    /// destination's copy counts).
    pub fn payload_delivered(&self) -> u64 {
        self.payload_delivered
    }

    /// Per-destination deliveries within the measurement window.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }
}

/// Convenience: builds a [`MessageKind`]-appropriate expected-delivery count.
pub fn expected_deliveries(kind: &MessageKind) -> usize {
    kind.dest_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(id: u64, kind: MessageKind, created: Cycle) -> Message {
        Message::new(MessageId(id), NodeId(0), kind, 32, created)
    }

    #[test]
    fn summary_of_known_samples() {
        let mut s = LatencyStats::new();
        for v in [10u64, 20, 30, 40, 50] {
            s.push(v);
        }
        let sum = s.summary();
        assert_eq!(sum.count, 5);
        assert!((sum.mean - 30.0).abs() < 1e-9);
        assert_eq!(sum.p50, 30);
        assert_eq!(sum.min, 10);
        assert_eq!(sum.max, 50);
    }

    #[test]
    fn empty_summary_is_zero() {
        assert_eq!(LatencyStats::new().summary(), Summary::default());
        assert!(LatencyStats::new().mean().is_none());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = LatencyStats::new();
        a.push(1);
        let mut b = LatencyStats::new();
        b.push(3);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), Some(2.0));
    }

    #[test]
    fn occupancy_gauge() {
        let mut g = OccupancyStats::new();
        g.observe(10);
        g.observe(20);
        assert_eq!(g.mean(), Some(15.0));
        assert_eq!(g.max(), 20);
        assert_eq!(g.samples(), 2);
        assert!(OccupancyStats::new().mean().is_none());
    }

    #[test]
    fn unicast_tracking() {
        let mut t = DeliveryTracker::new(16);
        let m = msg(1, MessageKind::Unicast(NodeId(5)), 100);
        t.register(&m);
        assert_eq!(t.outstanding(), 1);
        t.deliver(MessageId(1), NodeId(5), 150);
        assert_eq!(t.outstanding(), 0);
        assert_eq!(t.completed_unicasts(), 1);
        assert_eq!(t.unicast.summary().max, 50);
        assert_eq!(t.payload_delivered(), 32);
    }

    #[test]
    fn multicast_last_and_avg() {
        let mut t = DeliveryTracker::new(16);
        let dests = DestSet::from_nodes(16, [1, 2].map(NodeId));
        let m = msg(7, MessageKind::Multicast(dests), 0);
        t.register(&m);
        t.deliver(MessageId(7), NodeId(1), 10);
        assert_eq!(t.completed_mcasts(), 0, "not complete yet");
        t.deliver(MessageId(7), NodeId(2), 30);
        assert_eq!(t.completed_mcasts(), 1);
        assert_eq!(t.mcast_last.summary().max, 30);
        assert_eq!(t.mcast_avg.summary().max, 20);
        assert_eq!(t.deliveries(), 2);
    }

    #[test]
    fn warmup_messages_excluded_from_stats() {
        let mut t = DeliveryTracker::new(16);
        t.set_measure_from(1000);
        let m = msg(1, MessageKind::Unicast(NodeId(3)), 500);
        t.register(&m);
        t.deliver(MessageId(1), NodeId(3), 600);
        assert_eq!(t.completed_unicasts(), 0);
        assert_eq!(t.completed_total(), 1);
        assert_eq!(t.payload_delivered(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate or misdirected")]
    fn duplicate_delivery_panics() {
        let mut t = DeliveryTracker::new(16);
        let m = msg(1, MessageKind::Unicast(NodeId(3)), 0);
        t.register(&m);
        t.deliver(MessageId(1), NodeId(3), 10);
        // Message completed and removed: second delivery is "unknown".
        let m2 = msg(
            2,
            MessageKind::Multicast(DestSet::from_nodes(16, [3, 4].map(NodeId))),
            0,
        );
        t.register(&m2);
        t.deliver(MessageId(2), NodeId(3), 20);
        t.deliver(MessageId(2), NodeId(3), 21);
    }

    #[test]
    #[should_panic(expected = "unknown message")]
    fn unknown_delivery_panics() {
        let mut t = DeliveryTracker::new(16);
        t.deliver(MessageId(1), NodeId(3), 10);
    }

    #[test]
    fn expected_deliveries_counts() {
        assert_eq!(expected_deliveries(&MessageKind::Unicast(NodeId(0))), 1);
        let d = DestSet::from_nodes(8, [0, 1, 2].map(NodeId));
        assert_eq!(expected_deliveries(&MessageKind::Multicast(d)), 3);
    }
}
