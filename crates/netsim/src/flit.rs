//! Flits: the flow-control unit moving across links, one per cycle.
//!
//! A flit is a cheap `(Rc<Packet>, index)` pair. Replicating a worm at a
//! switch replicates flits, which is just a reference-count bump — matching
//! the hardware reality that replication copies pointers/flits inside the
//! switch, not whole packets.

use crate::packet::Packet;
use std::fmt;
use std::rc::Rc;

/// Classification of a flit's position within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of the packet (begins the routing header).
    Head,
    /// Subsequent header flits.
    Header,
    /// Data flits.
    Payload,
    /// Final flit of the packet (releases resources as it drains).
    Tail,
}

/// One flit of a packet.
#[derive(Clone)]
pub struct Flit {
    pkt: Rc<Packet>,
    idx: u16,
    corrupt: bool,
}

impl Flit {
    /// Creates the `idx`-th flit of `pkt`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for the packet.
    pub fn new(pkt: Rc<Packet>, idx: u16) -> Self {
        assert!(
            idx < pkt.total_flits(),
            "flit index {idx} out of range for {} flits",
            pkt.total_flits()
        );
        Flit {
            pkt,
            idx,
            corrupt: false,
        }
    }

    /// The packet this flit belongs to.
    pub fn packet(&self) -> &Rc<Packet> {
        &self.pkt
    }

    /// Zero-based position within the packet.
    pub fn idx(&self) -> u16 {
        self.idx
    }

    /// Position classification.
    pub fn kind(&self) -> FlitKind {
        if self.idx + 1 == self.pkt.total_flits() {
            FlitKind::Tail
        } else if self.idx == 0 {
            FlitKind::Head
        } else if self.idx < self.pkt.header_flits() {
            FlitKind::Header
        } else {
            FlitKind::Payload
        }
    }

    /// `true` for the packet's first flit.
    pub fn is_head(&self) -> bool {
        self.idx == 0
    }

    /// `true` for the packet's last flit.
    pub fn is_tail(&self) -> bool {
        self.idx + 1 == self.pkt.total_flits()
    }

    /// `true` while the flit is part of the routing header.
    pub fn is_header(&self) -> bool {
        self.idx < self.pkt.header_flits()
    }

    /// `true` if the flit was corrupted in transit (fault injection).
    ///
    /// Switches forward corrupt flits unknowingly — only endpoints check,
    /// via the packet checksum, when the worm completes.
    pub fn corrupted(&self) -> bool {
        self.corrupt
    }

    /// Marks the flit as corrupted (called by a faulty [`crate::link::Link`]).
    pub fn mark_corrupt(&mut self) {
        self.corrupt = true;
    }

    /// Returns the same flit position re-bound to a (branch-rewritten) packet
    /// descriptor — the header-rewrite operation of the central-buffer switch.
    ///
    /// # Panics
    ///
    /// Panics if the replacement packet has a different flit count.
    pub fn rebind(&self, pkt: Rc<Packet>) -> Flit {
        assert_eq!(
            pkt.total_flits(),
            self.pkt.total_flits(),
            "rebind must preserve packet length"
        );
        Flit {
            pkt,
            idx: self.idx,
            corrupt: self.corrupt,
        }
    }
}

impl fmt::Debug for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Flit({} {}/{} {:?})",
            self.pkt.id(),
            self.idx,
            self.pkt.total_flits(),
            self.kind()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::packet::PacketBuilder;

    fn pkt(payload: u16) -> Rc<Packet> {
        Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), payload, 64).build())
    }

    #[test]
    fn kinds_along_packet() {
        let p = pkt(3); // 2 header + 3 payload
        assert_eq!(Flit::new(p.clone(), 0).kind(), FlitKind::Head);
        assert_eq!(Flit::new(p.clone(), 1).kind(), FlitKind::Header);
        assert_eq!(Flit::new(p.clone(), 2).kind(), FlitKind::Payload);
        assert_eq!(Flit::new(p.clone(), 3).kind(), FlitKind::Payload);
        assert_eq!(Flit::new(p.clone(), 4).kind(), FlitKind::Tail);
        assert!(Flit::new(p.clone(), 0).is_head());
        assert!(Flit::new(p.clone(), 4).is_tail());
        assert!(Flit::new(p.clone(), 1).is_header());
        assert!(!Flit::new(p, 2).is_header());
    }

    #[test]
    fn single_flit_packet_is_tail() {
        // Degenerate: header-only worm of one flit cannot exist with the
        // default encodings (min 2), but a 0-payload packet's last header
        // flit is the tail.
        let p = pkt(0); // 2 header flits total
        let f = Flit::new(p, 1);
        assert_eq!(f.kind(), FlitKind::Tail);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let p = pkt(1);
        let _ = Flit::new(p, 100);
    }

    #[test]
    fn rebind_keeps_position() {
        let p = pkt(2);
        let f = Flit::new(p.clone(), 3);
        let q = Rc::new(p.with_header(p.header().clone()));
        let g = f.rebind(q);
        assert_eq!(g.idx(), 3);
        assert!(g.is_tail());
    }

    #[test]
    fn corruption_survives_rebind_and_clone() {
        let p = pkt(2);
        let mut f = Flit::new(p.clone(), 1);
        assert!(!f.corrupted());
        f.mark_corrupt();
        assert!(f.corrupted());
        assert!(f.clone().corrupted());
        let q = Rc::new(p.with_header(p.header().clone()));
        assert!(f.rebind(q).corrupted());
    }
}
