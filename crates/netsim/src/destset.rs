//! Destination sets as fixed-universe bitsets.
//!
//! The paper's bit-string header encoding is literally an `N`-bit vector with
//! bit `i` set iff processor `i` is a destination, and every switch output
//! port carries an `N`-bit *reachability string*. [`DestSet`] is that bit
//! vector: a dense bitset over a fixed universe of `N` nodes, with the set
//! algebra (union, intersection, difference) the decode logic needs.

use crate::ids::NodeId;
use std::fmt;

const WORD_BITS: usize = 64;

/// A set of destination nodes over a fixed universe `0..len`.
///
/// Mirrors the paper's bit-string encoding: `len` is the system size `N`.
/// Operations between two sets require equal universes and panic otherwise —
/// mixing reachability strings from differently sized systems is always a
/// bug.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DestSet {
    len: usize,
    words: Vec<u64>,
}

impl DestSet {
    /// Creates an empty set over the universe `0..len`.
    pub fn empty(len: usize) -> Self {
        DestSet {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates the full set `{0, 1, .., len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Self::empty(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a singleton set `{node}` over the universe `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= len`.
    pub fn singleton(len: usize, node: NodeId) -> Self {
        let mut s = Self::empty(len);
        s.insert(node);
        s
    }

    /// Builds a set from an iterator of nodes over the universe `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if any node index is `>= len`.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(len: usize, nodes: I) -> Self {
        let mut s = Self::empty(len);
        for n in nodes {
            s.insert(n);
        }
        s
    }

    /// The universe size `N` (number of addressable nodes, *not* the number
    /// of members).
    #[inline]
    pub fn universe(&self) -> usize {
        self.len
    }

    /// Number of members in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Tests membership.
    ///
    /// Out-of-universe nodes are reported as absent rather than panicking, so
    /// that membership tests against a header from a larger universe degrade
    /// gracefully in assertions.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        if i >= self.len {
            return false;
        }
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Inserts a node. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= universe()`.
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.len,
            "node {} out of destination-set universe {}",
            i,
            self.len
        );
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let newly = *w & mask == 0;
        *w |= mask;
        newly
    }

    /// Removes a node. Returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        if i >= self.len {
            return false;
        }
        let w = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *w & mask != 0;
        *w &= !mask;
        present
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Set intersection, returning a new set (`self ∩ other`).
    ///
    /// This is the paper's header-decode operation: header bit-string AND
    /// output-port reachability string.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn and(&self, other: &DestSet) -> DestSet {
        self.check_universe(other);
        DestSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Set union, returning a new set (`self ∪ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn or(&self, other: &DestSet) -> DestSet {
        self.check_universe(other);
        DestSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// Set difference, returning a new set (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn minus(&self, other: &DestSet) -> DestSet {
        self.check_universe(other);
        DestSet {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &DestSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &DestSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn subtract(&mut self, other: &DestSet) {
        self.check_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Returns `true` if the sets share at least one member.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersects(&self, other: &DestSet) -> bool {
        self.check_universe(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every member of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn is_subset_of(&self, other: &DestSet) -> bool {
        self.check_universe(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in ascending node order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: if self.words.is_empty() {
                0
            } else {
                self.words[0]
            },
        }
    }

    /// Smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Number of flits needed to carry this set as a bit-string header
    /// payload, given `bits_per_flit` payload bits per flit.
    pub fn bitstring_flits(&self, bits_per_flit: usize) -> usize {
        assert!(bits_per_flit > 0, "flit must carry at least one bit");
        self.len.div_ceil(bits_per_flit)
    }

    fn check_universe(&self, other: &DestSet) {
        assert_eq!(
            self.len, other.len,
            "destination-set universe mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// Clears any bits above `len` (keeps `full` well-formed).
    fn trim(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl fmt::Debug for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DestSet(N={}){{", self.len)?;
        for (i, n) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", n.0)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for DestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl<'a> IntoIterator for &'a DestSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl Extend<NodeId> for DestSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

/// Iterator over the members of a [`DestSet`], produced by [`DestSet::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a DestSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId::from(self.word * WORD_BITS + bit));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(len: usize, items: &[u32]) -> DestSet {
        DestSet::from_nodes(len, items.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn empty_and_full() {
        let e = DestSet::empty(100);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = DestSet::full(100);
        assert_eq!(f.count(), 100);
        assert!(f.contains(NodeId(0)));
        assert!(f.contains(NodeId(99)));
        assert!(!f.contains(NodeId(100)));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = DestSet::empty(70);
        assert!(s.insert(NodeId(3)));
        assert!(!s.insert(NodeId(3)));
        assert!(s.insert(NodeId(64)));
        assert!(s.contains(NodeId(3)));
        assert!(s.contains(NodeId(64)));
        assert!(!s.contains(NodeId(65)));
        assert!(s.remove(NodeId(3)));
        assert!(!s.remove(NodeId(3)));
        assert_eq!(s.count(), 1);
    }

    #[test]
    #[should_panic(expected = "out of destination-set universe")]
    fn insert_out_of_universe_panics() {
        DestSet::empty(16).insert(NodeId(16));
    }

    #[test]
    fn algebra() {
        let a = set(128, &[1, 2, 3, 100]);
        let b = set(128, &[2, 3, 4]);
        assert_eq!(a.and(&b), set(128, &[2, 3]));
        assert_eq!(a.or(&b), set(128, &[1, 2, 3, 4, 100]));
        assert_eq!(a.minus(&b), set(128, &[1, 100]));
        assert!(a.intersects(&b));
        assert!(!set(128, &[9]).intersects(&b));
        assert!(set(128, &[2, 3]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn in_place_algebra() {
        let mut a = set(64, &[0, 5]);
        a.union_with(&set(64, &[5, 9]));
        assert_eq!(a, set(64, &[0, 5, 9]));
        a.intersect_with(&set(64, &[5, 9, 11]));
        assert_eq!(a, set(64, &[5, 9]));
        a.subtract(&set(64, &[9]));
        assert_eq!(a, set(64, &[5]));
        a.clear();
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let _ = set(64, &[1]).and(&set(65, &[1]));
    }

    #[test]
    fn iteration_order_is_ascending() {
        let s = set(256, &[200, 3, 64, 65, 0]);
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, vec![0, 3, 64, 65, 200]);
        assert_eq!(s.first(), Some(NodeId(0)));
        assert_eq!(DestSet::empty(8).first(), None);
    }

    #[test]
    fn bitstring_flit_count() {
        // 64-node system, 8-bit flits => 8 flits of bit-string.
        assert_eq!(DestSet::empty(64).bitstring_flits(8), 8);
        // 65 nodes round up.
        assert_eq!(DestSet::empty(65).bitstring_flits(8), 9);
        assert_eq!(DestSet::empty(16).bitstring_flits(16), 1);
    }

    #[test]
    fn extend_and_from_nodes() {
        let mut s = DestSet::empty(32);
        s.extend([NodeId(1), NodeId(2)]);
        assert_eq!(s, set(32, &[1, 2]));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = set(16, &[1, 5]);
        assert_eq!(format!("{s:?}"), "DestSet(N=16){1,5}");
    }
}
