//! Packets: the unit that travels the network as a single worm.
//!
//! A [`Packet`] is one wormhole packet — header flits followed by payload
//! flits. Deadlock freedom of asynchronous replication requires every packet
//! to fit completely inside a switch buffer (paper §3), so messages longer
//! than the maximum packet payload are segmented into several packets; see
//! [`packetize`].

use crate::destset::DestSet;
use crate::header::RoutingHeader;
use crate::ids::{MessageId, NodeId, PacketId};
use crate::message::{Message, MessageKind};
use crate::Cycle;

/// An immutable packet descriptor.
///
/// Flits reference their packet through an `Rc<Packet>`, so a flit is just a
/// (packet, index) pair and replication is cheap. When a switch rewrites a
/// bit-string header for a branch (paper §4), it clones the descriptor with
/// [`Packet::with_header`] — the clone keeps the same identity and flit
/// counts, because physically the bit-string occupies the same wire slots
/// regardless of how many bits are set.
#[derive(Clone, PartialEq, Eq)]
pub struct Packet {
    id: PacketId,
    msg: MessageId,
    src: NodeId,
    header: RoutingHeader,
    header_flits: u16,
    payload_flits: u16,
    seq: u16,
    n_packets: u16,
    created: Cycle,
    checksum: u64,
}

/// FNV-1a over the identity fields a real NIC would checksum. Stable
/// across retransmissions of the same segment (the packet id is excluded:
/// a resend carries a fresh worm id but the same protected contents).
fn packet_checksum(msg: MessageId, src: NodeId, seq: u16, n_packets: u16, payload: u16) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [
        msg.0,
        u64::from(src.0),
        u64::from(seq),
        u64::from(n_packets),
        u64::from(payload),
    ] {
        for b in word.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl Packet {
    /// Packet identity (unique per worm; branch rewrites preserve it).
    pub fn id(&self) -> PacketId {
        self.id
    }

    /// The message this packet is a segment of.
    pub fn msg(&self) -> MessageId {
        self.msg
    }

    /// Originating node.
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Routing header (possibly already restricted by upstream replication).
    pub fn header(&self) -> &RoutingHeader {
        &self.header
    }

    /// Number of header flits on the wire.
    pub fn header_flits(&self) -> u16 {
        self.header_flits
    }

    /// Number of payload flits.
    pub fn payload_flits(&self) -> u16 {
        self.payload_flits
    }

    /// Total flits on the wire (header + payload).
    pub fn total_flits(&self) -> u16 {
        self.header_flits + self.payload_flits
    }

    /// Zero-based segment index within the message.
    pub fn seq(&self) -> u16 {
        self.seq
    }

    /// Number of segments the message was split into.
    pub fn n_packets(&self) -> u16 {
        self.n_packets
    }

    /// Returns `true` for the final segment of its message.
    pub fn is_last(&self) -> bool {
        self.seq + 1 == self.n_packets
    }

    /// Cycle at which the owning message was generated.
    pub fn created(&self) -> Cycle {
        self.created
    }

    /// End-to-end checksum over the protected fields, stamped at build
    /// time. Receivers recompute it (see [`Packet::checksum_ok`]) to model
    /// CRC validation; transit corruption is modeled by the corrupt mark on
    /// flits, which makes the check fail.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Receiver-side checksum validation. `saw_corrupt_flit` is whether any
    /// flit of the worm arrived with a corruption mark: a corrupt wire image
    /// fails the CRC even though the descriptor fields survive simulation
    /// intact.
    pub fn checksum_ok(&self, saw_corrupt_flit: bool) -> bool {
        !saw_corrupt_flit
            && self.checksum
                == packet_checksum(
                    self.msg,
                    self.src,
                    self.seq,
                    self.n_packets,
                    self.payload_flits,
                )
    }

    /// Returns a copy of this packet with a replaced (e.g. branch-restricted)
    /// header. Identity, sizes and timing are preserved.
    pub fn with_header(&self, header: RoutingHeader) -> Packet {
        Packet {
            header,
            ..self.clone()
        }
    }
}

impl std::fmt::Debug for Packet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Packet({} of {} seg {}/{} src {} hdr {:?} {}h+{}p flits)",
            self.id,
            self.msg,
            self.seq + 1,
            self.n_packets,
            self.src,
            self.header,
            self.header_flits,
            self.payload_flits
        )
    }
}

/// Monotonic generator of unique [`PacketId`]s.
#[derive(Debug, Default, Clone)]
pub struct PacketIdGen(u64);

impl PacketIdGen {
    /// Creates a generator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next unused id.
    pub fn next_id(&mut self) -> PacketId {
        let id = PacketId(self.0);
        self.0 += 1;
        id
    }
}

/// Builder for [`Packet`]s (C-BUILDER).
///
/// ```
/// use netsim::ids::NodeId;
/// use netsim::packet::PacketBuilder;
///
/// let pkt = PacketBuilder::unicast(NodeId(0), NodeId(9), 64, 64)
///     .created(100)
///     .build();
/// assert_eq!(pkt.payload_flits(), 64);
/// assert_eq!(pkt.header_flits(), 2); // control flit + 6-bit id in one flit
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    id: PacketId,
    msg: MessageId,
    src: NodeId,
    header: RoutingHeader,
    payload_flits: u16,
    seq: u16,
    n_packets: u16,
    created: Cycle,
    system_size: usize,
    bits_per_flit: usize,
}

impl PacketBuilder {
    /// Starts a builder for a packet with an arbitrary header.
    pub fn new(src: NodeId, header: RoutingHeader, payload_flits: u16, system_size: usize) -> Self {
        PacketBuilder {
            id: PacketId(0),
            msg: MessageId(0),
            src,
            header,
            payload_flits,
            seq: 0,
            n_packets: 1,
            created: 0,
            system_size,
            bits_per_flit: 8,
        }
    }

    /// Starts a builder for a unicast packet.
    pub fn unicast(src: NodeId, dest: NodeId, payload_flits: u16, system_size: usize) -> Self {
        Self::new(
            src,
            RoutingHeader::Unicast { dest },
            payload_flits,
            system_size,
        )
    }

    /// Starts a builder for a bit-string multidestination packet.
    pub fn multicast(src: NodeId, dests: DestSet, payload_flits: u16) -> Self {
        let system_size = dests.universe();
        Self::new(
            src,
            RoutingHeader::BitString { dests },
            payload_flits,
            system_size,
        )
    }

    /// Sets the packet id (defaults to 0; use [`PacketIdGen`] in real runs).
    pub fn id(mut self, id: PacketId) -> Self {
        self.id = id;
        self
    }

    /// Sets the owning message id.
    pub fn msg(mut self, msg: MessageId) -> Self {
        self.msg = msg;
        self
    }

    /// Sets the segment position (`seq` of `n_packets`).
    ///
    /// # Panics
    ///
    /// Panics if `seq >= n_packets`.
    pub fn segment(mut self, seq: u16, n_packets: u16) -> Self {
        assert!(seq < n_packets, "segment {seq} out of {n_packets}");
        self.seq = seq;
        self.n_packets = n_packets;
        self
    }

    /// Sets the generation cycle of the owning message.
    pub fn created(mut self, cycle: Cycle) -> Self {
        self.created = cycle;
        self
    }

    /// Sets payload bits per flit (default 8, the SP2's byte-wide flit).
    pub fn bits_per_flit(mut self, bits: usize) -> Self {
        self.bits_per_flit = bits;
        self
    }

    /// Finalizes the packet, computing the header flit count from the
    /// encoding, system size and flit width.
    pub fn build(self) -> Packet {
        let header_flits = self
            .header
            .header_flits(self.system_size, self.bits_per_flit) as u16;
        Packet {
            id: self.id,
            msg: self.msg,
            src: self.src,
            header: self.header,
            header_flits,
            payload_flits: self.payload_flits,
            seq: self.seq,
            n_packets: self.n_packets,
            created: self.created,
            checksum: packet_checksum(
                self.msg,
                self.src,
                self.seq,
                self.n_packets,
                self.payload_flits,
            ),
        }
    }
}

/// Segments a message into packets under a maximum packet payload.
///
/// `max_payload` is dictated by the switch buffer capacity (paper §3: a
/// packet must be completely bufferable at a switch). The header encoding is
/// cloned into every segment. Packet ids are drawn from `ids`.
///
/// # Panics
///
/// Panics if `max_payload == 0`.
///
/// ```
/// use netsim::ids::{MessageId, NodeId};
/// use netsim::message::{Message, MessageKind};
/// use netsim::packet::{packetize, PacketIdGen};
///
/// let msg = Message::new(MessageId(0), NodeId(3), MessageKind::Unicast(NodeId(7)), 300, 0);
/// let mut ids = PacketIdGen::new();
/// let pkts = packetize(&msg, 128, 64, 8, &mut ids);
/// assert_eq!(pkts.len(), 3);
/// assert_eq!(pkts.iter().map(|p| p.payload_flits() as u32).sum::<u32>(), 300);
/// assert!(pkts[2].is_last());
/// ```
pub fn packetize(
    msg: &Message,
    max_payload: u16,
    system_size: usize,
    bits_per_flit: usize,
    ids: &mut PacketIdGen,
) -> Vec<Packet> {
    assert!(max_payload > 0, "max packet payload must be positive");
    let header = match msg.kind() {
        MessageKind::Unicast(dest) => RoutingHeader::Unicast { dest: *dest },
        MessageKind::Multicast(dests) => RoutingHeader::BitString {
            dests: dests.clone(),
        },
        MessageKind::BarrierGather { round } => RoutingHeader::BarrierGather { round: *round },
    };
    let total = msg.payload_flits();
    // Even zero-payload (dataless) messages occupy one packet.
    let n_packets = (total.div_ceil(max_payload)).max(1);
    let mut out = Vec::with_capacity(n_packets as usize);
    for seq in 0..n_packets {
        let start = seq as u32 * max_payload as u32;
        let payload = (total as u32 - start).min(max_payload as u32) as u16;
        out.push(
            PacketBuilder::new(msg.src(), header.clone(), payload, system_size)
                .bits_per_flit(bits_per_flit)
                .id(ids.next_id())
                .msg(msg.id())
                .segment(seq, n_packets)
                .created(msg.created())
                .build(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_fields() {
        let p = PacketBuilder::unicast(NodeId(1), NodeId(2), 10, 64)
            .id(PacketId(9))
            .msg(MessageId(4))
            .created(55)
            .build();
        assert_eq!(p.id(), PacketId(9));
        assert_eq!(p.msg(), MessageId(4));
        assert_eq!(p.src(), NodeId(1));
        assert_eq!(p.payload_flits(), 10);
        assert_eq!(p.header_flits(), 2);
        assert_eq!(p.total_flits(), 12);
        assert_eq!(p.created(), 55);
        assert!(p.is_last());
        assert_eq!(p.seq(), 0);
        assert_eq!(p.n_packets(), 1);
    }

    #[test]
    fn multicast_header_flits_counted() {
        let dests = DestSet::from_nodes(64, [1, 2, 3].map(NodeId));
        let p = PacketBuilder::multicast(NodeId(0), dests, 16).build();
        // 64-bit string in 8-bit flits = 8 flits + 1 control.
        assert_eq!(p.header_flits(), 9);
        assert!(p.header().is_multidestination());
    }

    #[test]
    fn with_header_preserves_identity_and_sizes() {
        let dests = DestSet::from_nodes(64, [1, 2, 3].map(NodeId));
        let p = PacketBuilder::multicast(NodeId(0), dests, 16)
            .id(PacketId(7))
            .build();
        let reach = DestSet::from_nodes(64, [2].map(NodeId));
        let q = p.with_header(p.header().restrict_to(&reach));
        assert_eq!(q.id(), p.id());
        assert_eq!(q.header_flits(), p.header_flits());
        assert_eq!(q.total_flits(), p.total_flits());
        assert_eq!(q.header().dest_count(), Some(1));
    }

    #[test]
    fn packetize_segments_exactly() {
        let msg = Message::new(
            MessageId(1),
            NodeId(0),
            MessageKind::Unicast(NodeId(5)),
            129,
            7,
        );
        let mut ids = PacketIdGen::new();
        let pkts = packetize(&msg, 64, 64, 8, &mut ids);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].payload_flits(), 64);
        assert_eq!(pkts[1].payload_flits(), 64);
        assert_eq!(pkts[2].payload_flits(), 1);
        assert!(!pkts[0].is_last());
        assert!(pkts[2].is_last());
        assert!(pkts.iter().all(|p| p.created() == 7));
        // Unique ids.
        assert_ne!(pkts[0].id(), pkts[1].id());
    }

    #[test]
    fn packetize_dataless_message_gets_one_packet() {
        let msg = Message::new(
            MessageId(1),
            NodeId(0),
            MessageKind::Multicast(DestSet::from_nodes(16, [3, 4].map(NodeId))),
            0,
            0,
        );
        let mut ids = PacketIdGen::new();
        let pkts = packetize(&msg, 64, 16, 8, &mut ids);
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].payload_flits(), 0);
        assert!(pkts[0].total_flits() > 0, "header still occupies the wire");
    }

    #[test]
    fn id_gen_is_monotonic() {
        let mut g = PacketIdGen::new();
        assert_eq!(g.next_id(), PacketId(0));
        assert_eq!(g.next_id(), PacketId(1));
    }

    #[test]
    fn checksum_stable_across_retransmission_ids() {
        let msg = Message::new(
            MessageId(3),
            NodeId(1),
            MessageKind::Unicast(NodeId(2)),
            40,
            0,
        );
        let mut ids = PacketIdGen::new();
        let first = packetize(&msg, 64, 16, 8, &mut ids);
        let resend = packetize(&msg, 64, 16, 8, &mut ids);
        assert_ne!(first[0].id(), resend[0].id());
        assert_eq!(first[0].checksum(), resend[0].checksum());
        assert!(first[0].checksum_ok(false));
        assert!(!first[0].checksum_ok(true), "corrupt wire image fails CRC");
        // Different segments of one message checksum differently.
        let multi = packetize(&msg, 16, 16, 8, &mut ids);
        assert_ne!(multi[0].checksum(), multi[1].checksum());
    }
}
