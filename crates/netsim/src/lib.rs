//! # netsim — deterministic flit-level network simulation substrate
//!
//! This crate provides the building blocks on which the multidestination-worm
//! switch architectures of Stunkel, Sivaram & Panda (ISCA '97) are modeled:
//!
//! * [`Flit`]s, [`Packet`]s and [`Message`]s ([`flit`], [`packet`], [`message`]),
//! * routing-header encodings, including the paper's *bit-string* encoding and
//!   the *multiport* encoding of the companion work ([`header`]),
//! * destination-set bitsets ([`destset`]),
//! * unidirectional, credit flow-controlled, fixed-delay links ([`link`]),
//! * a deterministic single-threaded cycle engine ([`engine`]),
//! * latency/throughput statistics and delivery tracking ([`stats`]),
//! * a seeded random-number helper for workload generation ([`rng`]),
//! * deterministic link-fault injection — worm drops, flit corruption,
//!   outages, credit leaks ([`fault`]).
//!
//! Everything is single-threaded and deterministic: components tick in a fixed
//! order, links impose at least one cycle of delay so that no component
//! observes another component's same-cycle output, and all randomness flows
//! from explicit seeds. Two runs with the same configuration produce
//! bit-identical results.
//!
//! ## Example
//!
//! ```
//! use netsim::engine::{Component, Engine, PortIo};
//! use netsim::flit::Flit;
//! use netsim::ids::NodeId;
//! use netsim::packet::{Packet, PacketBuilder};
//! use netsim::Cycle;
//! use std::rc::Rc;
//!
//! /// Sends one packet, flit by flit.
//! struct Producer { pkt: Rc<Packet>, next: u16 }
//! /// Counts flits it receives.
//! struct Consumer { seen: Rc<std::cell::Cell<u16>> }
//!
//! impl Component for Producer {
//!     fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
//!         if self.next < self.pkt.total_flits() && io.can_send(0) {
//!             let f = Flit::new(self.pkt.clone(), self.next);
//!             io.send(0, f);
//!             self.next += 1;
//!         }
//!     }
//! }
//! impl Component for Consumer {
//!     fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
//!         if let Some(_f) = io.recv(0) {
//!             io.return_credit(0);
//!             self.seen.set(self.seen.get() + 1);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let link = engine.add_link(1, 4);
//! let pkt = PacketBuilder::unicast(NodeId(0), NodeId(1), 8, 16).build();
//! let seen = Rc::new(std::cell::Cell::new(0));
//! engine.add_component(
//!     Box::new(Producer { pkt: Rc::new(pkt), next: 0 }),
//!     vec![],
//!     vec![link],
//! );
//! engine.add_component(
//!     Box::new(Consumer { seen: seen.clone() }),
//!     vec![link],
//!     vec![],
//! );
//! engine.run_for(64);
//! assert_eq!(seen.get(), 10); // 2 header flits + 8 payload flits
//! ```
#![deny(unreachable_pub, missing_debug_implementations)]

pub mod destset;
pub mod engine;
pub mod fault;
pub mod flit;
pub mod header;
pub mod health;
pub mod ids;
pub mod link;
pub mod message;
pub mod packet;
pub mod rng;
pub mod stats;
pub mod trace;

/// Simulation time, measured in link-flit cycles.
///
/// One cycle is the time to move one flit across one link (for the default
/// SP2-like parameterization: one byte at 40 MHz, i.e. 25 ns).
pub type Cycle = u64;

pub use destset::DestSet;
pub use engine::{Component, Engine, EpochAudit, EpochStatus, PortIo, ShardingStats};
pub use fault::{FaultCounters, FaultPlan};
pub use flit::Flit;
pub use header::RoutingHeader;
pub use health::FabricHealth;
pub use ids::{LinkId, MessageId, NodeId, PacketId, SwitchId};
pub use link::LinkEvent;
pub use message::{Message, MessageKind};
pub use packet::{Packet, PacketBuilder};
pub use rng::SimRng;
