//! Fabric health aggregation with transition debouncing.
//!
//! Raw link up/down transitions ([`crate::link::LinkEvent`], drained from
//! [`crate::engine::Engine::drain_link_events`]) are too jittery to act on
//! directly: the stochastic fault injector takes links down for windows as
//! short as a few cycles, and triggering a route recomputation plus fabric
//! quiesce for every blip would cost far more than the blip itself. A
//! [`FabricHealth`] view therefore *debounces*: a raw transition is only
//! **confirmed** after the link has stayed in its new state for a full
//! debounce window. Transients shorter than the window are absorbed
//! without ever surfacing.
//!
//! The view is deliberately engine-agnostic plain state, so one can be
//! kept per host (each endpoint forming its own picture from the events it
//! sees) or centrally by a fault-response orchestrator — the repo's
//! [`mdworm`-level responder] does the latter, which models an SP2-style
//! service processor collecting port error counters.

use crate::ids::LinkId;
use crate::link::LinkEvent;
use crate::Cycle;
use std::collections::BTreeMap;

/// Per-link debounce state.
#[derive(Debug, Clone, Copy)]
struct LinkHealth {
    /// Last state the view committed to (and reported).
    confirmed_down: bool,
    /// Raw state from the most recent event, with its onset cycle, when it
    /// differs from the confirmed state.
    pending: Option<(Cycle, bool)>,
}

/// A debounced view of which links are up, built from raw engine events.
///
/// Feed raw events in with [`FabricHealth::observe`], then call
/// [`FabricHealth::poll`] to collect the transitions that have persisted
/// past the debounce window. `BTreeMap` keeps iteration (and therefore
/// confirmation order) deterministic.
#[derive(Debug, Clone)]
pub struct FabricHealth {
    debounce: Cycle,
    links: BTreeMap<LinkId, LinkHealth>,
}

impl FabricHealth {
    /// Creates a view confirming transitions after `debounce` stable
    /// cycles. `0` confirms immediately on the next poll.
    pub fn new(debounce: Cycle) -> Self {
        FabricHealth {
            debounce,
            links: BTreeMap::new(),
        }
    }

    /// The configured debounce window.
    pub fn debounce(&self) -> Cycle {
        self.debounce
    }

    /// Records one raw transition. Events must arrive in per-link time
    /// order (the engine's drain guarantees a globally sorted stream).
    pub fn observe(&mut self, ev: LinkEvent) {
        let entry = self.links.entry(ev.link).or_insert(LinkHealth {
            confirmed_down: false,
            pending: None,
        });
        if ev.down == entry.confirmed_down {
            // Flapped back to the committed state inside the window: the
            // transient is absorbed and the pending edge dissolves.
            entry.pending = None;
        } else {
            // Keep the *earliest* onset of the current excursion so a
            // down that stays down confirms exactly one window after it
            // began, not after the last duplicate event.
            match entry.pending {
                Some((_, state)) if state == ev.down => {}
                _ => entry.pending = Some((ev.at, ev.down)),
            }
        }
    }

    /// Confirms every pending transition that has persisted for the full
    /// debounce window as of `now`, returning them as events ordered by
    /// (onset cycle, link).
    pub fn poll(&mut self, now: Cycle) -> Vec<LinkEvent> {
        let mut confirmed = Vec::new();
        for (&link, entry) in self.links.iter_mut() {
            if let Some((at, down)) = entry.pending {
                if now.saturating_sub(at) >= self.debounce {
                    entry.confirmed_down = down;
                    entry.pending = None;
                    confirmed.push(LinkEvent { link, at, down });
                }
            }
        }
        confirmed.sort_by_key(|e| (e.at, e.link.index()));
        confirmed
    }

    /// `true` if `link` is confirmed down.
    pub fn is_down(&self, link: LinkId) -> bool {
        self.links
            .get(&link)
            .is_some_and(|entry| entry.confirmed_down)
    }

    /// Every link currently confirmed down, in id order.
    pub fn confirmed_down(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .filter(|(_, entry)| entry.confirmed_down)
            .map(|(&link, _)| link)
            .collect()
    }

    /// `true` while any transition is still inside its debounce window.
    pub fn has_pending(&self) -> bool {
        self.links.values().any(|entry| entry.pending.is_some())
    }

    /// Every excursion still inside its debounce window, in link order:
    /// `(link, onset cycle, raw state)`. Together with
    /// [`FabricHealth::confirmed_down`] this is the view's full state —
    /// a crash-recovery snapshot serializes both and rebuilds the view
    /// with [`FabricHealth::restore`].
    pub fn pending(&self) -> Vec<(LinkId, Cycle, bool)> {
        self.links
            .iter()
            .filter_map(|(&link, entry)| entry.pending.map(|(at, down)| (link, at, down)))
            .collect()
    }

    /// Rebuilds a view from snapshot state: the confirmed-down set plus
    /// the in-flight excursions of [`FabricHealth::pending`]. The result
    /// is byte-identical to the view the snapshot was taken from —
    /// subsequent `observe`/`poll` sequences behave exactly as they would
    /// have on the original.
    pub fn restore(
        debounce: Cycle,
        confirmed_down: &[LinkId],
        pending: &[(LinkId, Cycle, bool)],
    ) -> Self {
        let mut links = BTreeMap::new();
        for &link in confirmed_down {
            links.insert(
                link,
                LinkHealth {
                    confirmed_down: true,
                    pending: None,
                },
            );
        }
        for &(link, at, down) in pending {
            links
                .entry(link)
                .or_insert(LinkHealth {
                    confirmed_down: false,
                    pending: None,
                })
                .pending = Some((at, down));
        }
        FabricHealth { debounce, links }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(link: usize, at: Cycle, down: bool) -> LinkEvent {
        LinkEvent {
            link: LinkId::from(link),
            at,
            down,
        }
    }

    #[test]
    fn stable_outage_confirms_after_window() {
        let mut h = FabricHealth::new(50);
        h.observe(ev(3, 100, true));
        assert!(h.poll(120).is_empty(), "inside the window");
        assert!(!h.is_down(LinkId::from(3usize)));
        let confirmed = h.poll(150);
        assert_eq!(confirmed, vec![ev(3, 100, true)]);
        assert!(h.is_down(LinkId::from(3usize)));
        assert_eq!(h.confirmed_down(), vec![LinkId::from(3usize)]);
    }

    #[test]
    fn transient_inside_window_is_absorbed() {
        let mut h = FabricHealth::new(50);
        h.observe(ev(1, 100, true));
        h.observe(ev(1, 130, false)); // back up 30 cycles later
        assert!(h.poll(200).is_empty(), "blip must never surface");
        assert!(!h.is_down(LinkId::from(1usize)));
        assert!(!h.has_pending());
    }

    #[test]
    fn heal_confirms_like_an_outage() {
        let mut h = FabricHealth::new(20);
        h.observe(ev(2, 10, true));
        assert_eq!(h.poll(30).len(), 1);
        h.observe(ev(2, 100, false));
        assert!(h.is_down(LinkId::from(2usize)), "heal not yet confirmed");
        let confirmed = h.poll(120);
        assert_eq!(confirmed, vec![ev(2, 100, false)]);
        assert!(!h.is_down(LinkId::from(2usize)));
        assert!(h.confirmed_down().is_empty());
    }

    #[test]
    fn duplicate_events_keep_earliest_onset() {
        let mut h = FabricHealth::new(50);
        h.observe(ev(4, 100, true));
        h.observe(ev(4, 140, true)); // duplicate down (e.g. two windows)
        let confirmed = h.poll(151);
        assert_eq!(
            confirmed,
            vec![ev(4, 100, true)],
            "confirmation counts from the first onset"
        );
    }

    #[test]
    fn multiple_links_confirm_in_onset_order() {
        let mut h = FabricHealth::new(10);
        h.observe(ev(7, 20, true));
        h.observe(ev(2, 15, true));
        let confirmed = h.poll(100);
        assert_eq!(confirmed, vec![ev(2, 15, true), ev(7, 20, true)]);
    }

    #[test]
    fn zero_debounce_confirms_immediately() {
        let mut h = FabricHealth::new(0);
        h.observe(ev(0, 5, true));
        assert_eq!(h.poll(5).len(), 1);
        assert!(h.is_down(LinkId::from(0usize)));
    }
}
