//! Agreement between the extracted pure transition cores
//! (`switches::semantics`) and the live switches that now call them.
//!
//! Two layers, both randomized (hand-rolled property tests over
//! `netsim::rng::SimRng` — the container has no proptest, and the seeded
//! generator keeps every failure reproducible from its case number):
//!
//! * **live agreement** — a real `CentralBufferSwitch` runs random
//!   contended traffic with its semantic trace armed; every recorded
//!   reservation/release is re-executed through [`cq_step`] from the same
//!   pre-state, and the live switch's observed outcome (grant verdict,
//!   free count) must match the pure model's, state for state. This is
//!   the same refinement check `mdw-analysis::replay` performs on full
//!   system runs, here pinned at the single-switch level.
//! * **wrapper agreement** — the mutating wrappers the switches call
//!   (`CqState::try_reserve`/`release_chunk`, `IbHeadState::grant`/
//!   `read_flit`/`read_lockstep`/`recycle`, `ReplState` ops) must remain
//!   exactly the pure step applied to a clone, for random single-step
//!   inputs from random reachable states. Today they delegate by
//!   construction; this pins the equivalence against later "optimization"
//!   of either side.

use mintopo::route::RouteTables;
use mintopo::topology::TopologyBuilder;
use netsim::engine::{Component, Engine, PortIo};
use netsim::flit::Flit;
use netsim::ids::{NodeId, PacketId};
use netsim::packet::{Packet, PacketBuilder};
use netsim::rng::SimRng;
use netsim::trace::{SemEvent, SemTrace};
use netsim::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;
use switches::semantics::{cq_step, ib_step, repl_step};
use switches::semantics::{CqEffect, CqEvent, IbEffect, IbEvent, ReplEvent};
use switches::{CentralBufferSwitch, CqState, IbHeadState, ReplState, SwitchConfig, SwitchStats};

/// Injects queued packets flit-by-flit at link rate.
struct Source {
    queue: VecDeque<Rc<Packet>>,
    cur: Option<(Rc<Packet>, u16)>,
}

impl Component for Source {
    fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
        if self.cur.is_none() {
            self.cur = self.queue.pop_front().map(|p| (p, 0));
        }
        if let Some((pkt, idx)) = &mut self.cur {
            if io.can_send(0) {
                io.send(0, Flit::new(pkt.clone(), *idx));
                *idx += 1;
                if *idx == pkt.total_flits() {
                    self.cur = None;
                }
            }
        }
    }
}

/// Consumes flits, withholding each credit for a per-sink fixed delay so
/// different runs exercise different backpressure shapes.
struct SlowSink {
    flits: Rc<Cell<usize>>,
    delay: u64,
    pending: VecDeque<u64>,
}

impl Component for SlowSink {
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        if io.recv(0).is_some() {
            self.flits.set(self.flits.get() + 1);
            self.pending.push_back(now + self.delay);
        }
        while self.pending.front().is_some_and(|&t| t <= now) {
            self.pending.pop_front();
            io.return_credit(0);
        }
    }
}

/// One random single-switch world: 4 hosts on a 4-port central-buffer
/// switch with a small central queue (so reservations contend), random
/// unicast/multicast mix, random sink slowness. Returns the semantic
/// trace and the sink flit counts.
fn run_cb_case(rng: &mut SimRng) -> (Vec<(Cycle, SemEvent)>, usize) {
    let n_hosts = 4;
    let cfg = SwitchConfig {
        ports: n_hosts,
        cq_chunks: 16,
        chunk_flits: 4,
        max_packet_flits: 32,
        input_buf_flits: 32,
        staging_flits: 8,
        // Force even unicasts through the central queue.
        bypass_crossbar: rng.chance(0.5),
        ..SwitchConfig::default()
    };

    let mut b = TopologyBuilder::new(n_hosts);
    let sw = b.add_switch(cfg.ports, 0);
    for h in 0..n_hosts {
        b.attach_host(NodeId::from(h), sw, h);
    }
    let topo = b.build();
    let tables = Rc::new(RouteTables::build(&topo));
    let stats = Rc::new(RefCell::new(SwitchStats::default()));

    let mut engine = Engine::new();
    let to_switch: Vec<_> = (0..cfg.ports)
        .map(|_| engine.add_link(1, cfg.staging_flits))
        .collect();
    let to_host: Vec<_> = (0..cfg.ports).map(|_| engine.add_link(1, 4)).collect();

    let sem = SemTrace::handle();
    sem.borrow_mut().set_enabled(true);
    let mut switch = CentralBufferSwitch::new(sw, cfg.clone(), tables, stats);
    switch.set_sem_trace(sem.clone());
    engine.add_component(Box::new(switch), to_switch.clone(), to_host.clone());

    let mut expected = 0usize;
    let sinks: Vec<Rc<Cell<usize>>> = (0..n_hosts).map(|_| Rc::new(Cell::new(0))).collect();
    for h in 0..n_hosts {
        let mut queue = VecDeque::new();
        for p in 0..2 + rng.below(3) {
            let src = NodeId::from(h);
            let payload = 1 + rng.below(24) as u16;
            let pkt = if rng.chance(0.6) {
                let k = 1 + rng.below(n_hosts - 1);
                let dests = rng.dest_set(n_hosts, k, src);
                expected += dests.count() * (payload as usize + 2);
                PacketBuilder::multicast(src, dests, payload)
            } else {
                let dst = rng.other_node(n_hosts, src);
                expected += payload as usize + 2;
                PacketBuilder::unicast(src, dst, payload, n_hosts)
            };
            queue.push_back(Rc::new(pkt.id(PacketId((h * 100 + p) as u64 + 1)).build()));
        }
        engine.add_component(
            Box::new(Source { queue, cur: None }),
            vec![],
            vec![to_switch[h]],
        );
        engine.add_component(
            Box::new(SlowSink {
                flits: sinks[h].clone(),
                delay: rng.below(4) as u64,
                pending: VecDeque::new(),
            }),
            vec![to_host[h]],
            vec![],
        );
    }

    engine.run_for(4_000);
    let delivered: usize = sinks.iter().map(|s| s.get()).sum();
    assert_eq!(delivered, expected, "world failed to drain");
    let events = sem.borrow().events().to_vec();
    (events, delivered)
}

/// Live `CentralBufferSwitch` vs pure [`cq_step`]: replay every semantic
/// event of a random contended run through the pure core and demand the
/// same grant verdict and the same free-chunk count after every step.
#[test]
fn live_central_buffer_agrees_with_pure_steps() {
    let root = SimRng::new(0xC05E_u64 ^ 0xA9);
    let cfg = SwitchConfig {
        cq_chunks: 16,
        chunk_flits: 4,
        max_packet_flits: 32,
        ..SwitchConfig::default()
    };
    let mut replayed = 0usize;
    for case in 0..24u64 {
        let mut rng = root.fork(case);
        let (events, _) = run_cb_case(&mut rng);
        let mut model = CqState::new(cfg.cq_chunks, cfg.cq_down_reserve());
        for (i, (_, ev)) in events.iter().enumerate() {
            match *ev {
                SemEvent::CqReserve {
                    input,
                    need,
                    descending,
                    granted,
                    free_after,
                    ..
                } => {
                    let (next, effect) = cq_step(
                        &model,
                        CqEvent::Reserve {
                            input,
                            need,
                            descending,
                        },
                    );
                    assert_eq!(
                        effect == CqEffect::Granted,
                        granted,
                        "case {case} event {i}: grant verdict diverged"
                    );
                    assert_eq!(
                        next.free(),
                        free_after,
                        "case {case} event {i}: free count diverged"
                    );
                    model = next;
                }
                SemEvent::CqRelease { free_after, .. } => {
                    let (next, _) = cq_step(&model, CqEvent::Release);
                    assert_eq!(
                        next.free(),
                        free_after,
                        "case {case} event {i}: release free count diverged"
                    );
                    model = next;
                }
                SemEvent::CqPurge { .. } => {
                    model = CqState::new(cfg.cq_chunks, cfg.cq_down_reserve());
                }
            }
            replayed += 1;
        }
        assert_eq!(
            model.free(),
            cfg.cq_chunks,
            "case {case}: chunks leaked at quiescence"
        );
    }
    assert!(replayed > 200, "worlds too idle to prove anything");
}

/// `CqState`'s mutating wrappers vs [`cq_step`] on a random walk of
/// single-step inputs: identical resulting state, matching effect.
#[test]
fn cq_wrappers_agree_with_pure_step() {
    let root = SimRng::new(0x5E_11A6);
    for case in 0..64u64 {
        let mut rng = root.fork(case);
        let reserve = rng.below(4);
        let capacity = 2 * reserve + 1 + rng.below(12);
        let mut wrapped = CqState::new(capacity, reserve);
        let mut stepped = wrapped.clone();
        for op in 0..200 {
            if rng.chance(0.6) {
                let input = rng.below(4);
                let need = 1 + rng.below(capacity);
                let descending = rng.chance(0.5);
                let granted = wrapped.try_reserve(input, need, descending);
                let (next, effect) = cq_step(
                    &stepped,
                    CqEvent::Reserve {
                        input,
                        need,
                        descending,
                    },
                );
                stepped = next;
                assert_eq!(granted, effect == CqEffect::Granted, "case {case} op {op}");
            } else {
                if wrapped.used() == 0 {
                    continue; // nothing allocated: Release would underflow
                }
                wrapped.release_chunk();
                let (next, effect) = cq_step(&stepped, CqEvent::Release);
                stepped = next;
                assert_eq!(effect, CqEffect::Released, "case {case} op {op}");
            }
            assert_eq!(wrapped, stepped, "case {case} op {op}: states diverged");
            assert_eq!(
                wrapped.used() + wrapped.free() + wrapped.waiter_held(),
                capacity,
                "case {case} op {op}: chunk conservation"
            );
        }
    }
}

/// `IbHeadState`'s mutating wrappers vs [`ib_step`] on random legal
/// single-step inputs, with the credit ledger checked throughout.
#[test]
fn ib_wrappers_agree_with_pure_step() {
    let root = SimRng::new(0x1B_A6);
    for case in 0..64u64 {
        let mut rng = root.fork(case);
        let total = 1 + rng.below(24) as u16;
        let n_branches = 1 + rng.below(4);
        let ports: Vec<usize> = (0..n_branches).collect();
        let lockstep = rng.chance(0.5);
        let mut wrapped = IbHeadState::new(total, ports.iter().copied());
        let mut stepped = wrapped.clone();
        let mut credits_seen = 0u16;

        loop {
            // Pick a random legal event from the current state.
            let ungranted: Vec<usize> = (0..n_branches)
                .filter(|&b| !wrapped.branches[b].granted && !wrapped.branches[b].done)
                .collect();
            let readable: Vec<usize> = (0..n_branches)
                .filter(|&b| wrapped.branches[b].granted && !wrapped.branches[b].done)
                .collect();
            let all_granted_equal = readable.len() == n_branches
                && readable
                    .iter()
                    .all(|&b| wrapped.branches[b].read == wrapped.branches[0].read);

            if !ungranted.is_empty() && (readable.is_empty() || rng.chance(0.4)) {
                let b = ungranted[rng.below(ungranted.len())];
                wrapped.grant(b);
                let (next, effect) = ib_step(&stepped, IbEvent::Grant { branch: b });
                stepped = next;
                assert_eq!(effect, IbEffect::None, "case {case}: grant effect");
            } else if lockstep && all_granted_equal {
                let done = wrapped.read_lockstep();
                let (next, effect) = ib_step(&stepped, IbEvent::ReadLockStep);
                stepped = next;
                match effect {
                    IbEffect::BranchesDone(d) => assert_eq!(d, done, "case {case}"),
                    IbEffect::None => assert!(done.is_empty(), "case {case}"),
                    e => panic!("case {case}: unexpected lockstep effect {e:?}"),
                }
            } else if !readable.is_empty() {
                let b = readable[rng.below(readable.len())];
                let finished = wrapped.read_flit(b);
                let (next, effect) = ib_step(&stepped, IbEvent::ReadFlit { branch: b });
                stepped = next;
                match effect {
                    IbEffect::BranchesDone(d) => {
                        assert_eq!(d, vec![b], "case {case}");
                        assert!(finished, "case {case}");
                    }
                    IbEffect::None => assert!(!finished, "case {case}"),
                    e => panic!("case {case}: unexpected read effect {e:?}"),
                }
            } else {
                break; // every branch done
            }

            // Recycle whatever the min-read frontier has freed so far.
            let freed = wrapped.recycle();
            let (next, effect) = ib_step(&stepped, IbEvent::Recycle);
            stepped = next;
            assert_eq!(effect, IbEffect::Credits(freed), "case {case}: recycle");
            credits_seen += freed;

            assert_eq!(wrapped, stepped, "case {case}: states diverged");
            assert!(wrapped.min_read() <= total, "case {case}");
        }
        assert!(wrapped.all_done(), "case {case}: walk must finish the worm");
        credits_seen += wrapped.recycle();
        assert_eq!(
            credits_seen, total,
            "case {case}: credit ledger must return exactly the packet"
        );
    }
}

/// `ReplState`'s mutating wrappers vs [`repl_step`] on random legal
/// single-step inputs: write-side chunk demand and refcounted release.
#[test]
fn repl_wrappers_agree_with_pure_step() {
    let root = SimRng::new(0x2E_71);
    for case in 0..64u64 {
        let mut rng = root.fork(case);
        let chunk_flits = 1 + rng.below(8) as u16;
        let total = 1 + rng.below(32) as u16;
        let n_branches = 1 + rng.below(4);
        let mut wrapped = ReplState::new(total, chunk_flits);
        let mut stepped = wrapped.clone();

        wrapped.set_branches(n_branches);
        let (next, _) = repl_step(&stepped, ReplEvent::SetBranches(n_branches));
        stepped = next;
        assert_eq!(wrapped, stepped, "case {case}: set_branches");

        while wrapped.written < total {
            assert_eq!(
                wrapped.needs_chunk(),
                wrapped.written.is_multiple_of(chunk_flits),
                "case {case}: chunk demand at flit {}",
                wrapped.written
            );
            wrapped.write_flit();
            let (next, _) = repl_step(&stepped, ReplEvent::WriteFlit);
            stepped = next;
            assert_eq!(wrapped, stepped, "case {case}: write diverged");
        }

        // Release every chunk from every branch in random order; exactly
        // the last reference to each chunk must report it freed.
        let n_chunks = wrapped.refs.len();
        let mut order: Vec<usize> = (0..n_chunks)
            .flat_map(|c| std::iter::repeat_n(c, n_branches))
            .collect();
        rng.shuffle(&mut order);
        let mut freed = 0usize;
        for (i, &chunk) in order.iter().enumerate() {
            let last = wrapped.release(chunk);
            let (next, effect) = repl_step(&stepped, ReplEvent::ReleaseChunk(chunk));
            stepped = next;
            assert_eq!(
                effect == switches::semantics::ReplEffect::ChunkFreed,
                last,
                "case {case} release {i}"
            );
            assert_eq!(wrapped, stepped, "case {case} release {i}");
            freed += usize::from(last);
        }
        assert_eq!(freed, n_chunks, "case {case}: every chunk freed once");
    }
}

/// The replicated-read path of the live world: multicasts in
/// [`run_cb_case`] replicate inside the switch, so the replay in
/// [`live_central_buffer_agrees_with_pure_steps`] covers reservation
/// under replication too. This case pins that the random worlds do
/// exercise replication (otherwise the live test proves less than it
/// claims).
#[test]
fn random_worlds_exercise_replication() {
    let mut rng = SimRng::new(0xC05E_u64 ^ 0xA9).fork(0);
    let (events, delivered) = run_cb_case(&mut rng);
    assert!(delivered > 0);
    assert!(
        events
            .iter()
            .any(|(_, e)| matches!(e, SemEvent::CqReserve { need, .. } if *need > 1)),
        "no multi-chunk reservation ever happened"
    );
}
