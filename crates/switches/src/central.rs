//! The central-buffer switch architecture (paper §4).
//!
//! Modeled on the IBM SP2 High Performance Switch / SP Switch: each of the
//! `P` input ports has a small receiver staging FIFO; an unbuffered *bypass
//! crossbar* cuts unicast worms through to idle outputs; everything else
//! flows through a dynamically shared **central queue** organized as
//! fixed-size chunks chained into per-output lists.
//!
//! Multidestination enhancements (the paper's contribution):
//!
//! * a multidestination worm is **admitted only when the central queue can
//!   guarantee buffering the whole packet** — chunks are reserved up front,
//!   which realizes the deadlock-freedom condition "a packet accepted for
//!   transmission can eventually be completely buffered";
//! * its chunks are stored **once** and appended to *every* requested
//!   output's list; a per-chunk **reference count** frees a chunk when the
//!   slowest branch has drained it (asynchronous replication: granted
//!   branches stream while blocked branches wait, with no cross-branch
//!   dependence);
//! * the header is **rewritten per branch** at transmit time — each branch
//!   carries the original bit-string ANDed with its port's reachability
//!   string.
//!
//! Because the central queue is shared by all ports, the up*/down*
//! acyclicity of the routes alone does not prevent store-and-forward
//! deadlock between neighboring switches. Space accounting therefore
//! distinguishes *descending* packets (arriving from a parent; guaranteed
//! to drain toward hosts) from *ascending* ones: one maximum packet's worth
//! of chunks is reserved for descending traffic, and reservations are
//! granted through per-class accumulators ([`crate::semantics::CqState`],
//! the pure accounting core shared with the bounded model checker) so
//! streams of small packets cannot starve a large worm and partial
//! reservations can never block each other.

use crate::config::SwitchConfig;
use crate::ctl::SwitchCtl;
use crate::decode::{resolve_branches, HeaderClock};
use crate::semantics::{CqState, ReplState};
use crate::stats::{header_dests, BlockedWormSnap, SwitchSnapshot, SwitchStats};
use mintopo::reach::PortClass;
use mintopo::route::RouteTables;
use netsim::destset::DestSet;
use netsim::engine::{Component, PortIo};
use netsim::flit::Flit;
use netsim::header::RoutingHeader;
use netsim::ids::{MessageId, NodeId, PacketId, SwitchId, SWITCH_MSG_BIT};
use netsim::packet::{Packet, PacketBuilder};
use netsim::trace::{SemEvent, SemHandle};
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// One output branch of a packet stored in the central queue.
///
/// The shared writer-side state ([`ReplState`]) lives in
/// [`crate::semantics`]: branch readers never overtake `written`
/// (cut-through at flit granularity) and per-chunk reference counts free a
/// chunk when the slowest branch has drained it.
#[derive(Debug)]
struct CqBranch {
    /// Branch-rewritten packet descriptor (restricted bit-string header).
    pkt: Rc<Packet>,
    read: u16,
    write: Rc<RefCell<ReplState>>,
}

/// Per-input receiver state.
#[derive(Debug)]
enum InState {
    /// Waiting for a packet head at the staging front.
    Idle,
    /// Multidestination worm waiting for its full-packet reservation.
    AwaitReservation { pkt: Rc<Packet> },
    /// Unicast worm waiting for the routing decision.
    AwaitDecision { pkt: Rc<Packet>, entered: Cycle },
    /// Routed unicast worm waiting for its full-packet reservation.
    AwaitCqSpace { pkt: Rc<Packet>, port: usize },
    /// Streaming flits into the central queue.
    Absorbing {
        pkt: Rc<Packet>,
        write: Rc<RefCell<ReplState>>,
        entered: Cycle,
        decided: bool,
    },
    /// Streaming flits straight through the bypass crossbar.
    Bypass {
        pkt: Rc<Packet>,
        port: usize,
        sent: u16,
    },
    /// Consuming a barrier-gather worm (combined at this switch, not
    /// routed).
    ConsumeGather { pkt: Rc<Packet> },
}

#[derive(Debug)]
struct InputPort {
    staging: VecDeque<Flit>,
    clock: HeaderClock,
    state: InState,
}

#[derive(Debug)]
enum TxState {
    Idle,
    Stream(CqBranch),
    /// Held by an input streaming through the bypass crossbar.
    Bypass {
        input: usize,
    },
}

#[derive(Debug)]
struct OutputPort {
    queue: VecDeque<CqBranch>,
    state: TxState,
}

/// Per-switch barrier-gather combining state (the hardware-barrier
/// extension: §9 outlook / companion work \[34\]).
///
/// Gather worms arriving for a round are counted; once all `expected`
/// contributors (attached hosts plus child switches) have reported, the
/// switch emits — after the decode delay — one merged gather through its
/// first up port, or, at the combining root, the release broadcast to
/// every host.
#[derive(Debug)]
struct BarrierCombiner {
    expected: usize,
    n_hosts: usize,
    bits_per_flit: usize,
    counts: HashMap<u32, usize>,
    /// Emissions waiting for their combine delay and central-queue space.
    ready: VecDeque<(Cycle, u32)>,
    seq: u64,
}

impl BarrierCombiner {
    fn on_gather(&mut self, round: u32, emit_at: Cycle) {
        let c = self.counts.entry(round).or_insert(0);
        *c += 1;
        if *c == self.expected {
            self.counts.remove(&round);
            self.ready.push_back((emit_at, round));
        }
    }
}

/// A central-buffer switch with multidestination-worm support.
pub struct CentralBufferSwitch {
    id: SwitchId,
    cfg: SwitchConfig,
    tables: Rc<RouteTables>,
    inputs: Vec<InputPort>,
    outputs: Vec<OutputPort>,
    cq: CqState,
    barrier: Option<BarrierCombiner>,
    stats: Rc<RefCell<SwitchStats>>,
    ctl: Option<Rc<SwitchCtl>>,
    sem: Option<SemHandle>,
    rr: usize,
    /// Cycle of the last executed tick — the skip-invariance watermark.
    /// The compiled engine may skip ticks while the switch is quiescent;
    /// the gap since `last_tick` replays exactly what those ticks would
    /// have done (advance `rr`, observe zero occupancy).
    last_tick: Cycle,
}

impl CentralBufferSwitch {
    /// Creates the switch.
    ///
    /// `io` port `i` of the engine binding must be the link arriving at /
    /// leaving switch port `i`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SwitchConfig::validate`] or its
    /// port count disagrees with the routing table.
    pub fn new(
        id: SwitchId,
        cfg: SwitchConfig,
        tables: Rc<RouteTables>,
        stats: Rc<RefCell<SwitchStats>>,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid switch config: {e}"));
        assert_eq!(
            tables.table(id).n_ports(),
            cfg.ports,
            "routing table port count mismatch for {id}"
        );
        CentralBufferSwitch {
            id,
            cq: CqState::new(cfg.cq_chunks, cfg.cq_down_reserve()),
            barrier: None,
            inputs: (0..cfg.ports)
                .map(|_| InputPort {
                    staging: VecDeque::new(),
                    clock: HeaderClock::default(),
                    state: InState::Idle,
                })
                .collect(),
            outputs: (0..cfg.ports)
                .map(|_| OutputPort {
                    queue: VecDeque::new(),
                    state: TxState::Idle,
                })
                .collect(),
            cfg,
            tables,
            stats,
            ctl: None,
            sem: None,
            rr: 0,
            last_tick: 0,
        }
    }

    /// Replays the per-cycle bookkeeping of `n` skipped idle ticks: each
    /// would have advanced the allocation round-robin by one and observed
    /// zero central-queue occupancy (quiescence guarantees the queue was
    /// empty throughout). Keeps skipped runs bit-identical to ticked ones.
    fn replay_idle_cycles(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.rr = (self.rr + (n % self.cfg.ports as u64) as usize) % self.cfg.ports;
        self.stats.borrow_mut().cq_used_chunks.observe_n(0, n);
    }

    /// Attaches the out-of-band control cell (see [`SwitchCtl`]) through
    /// which the fault-response orchestrator requests purges and stages
    /// routing-table swaps.
    pub fn set_ctl(&mut self, ctl: Rc<SwitchCtl>) {
        self.ctl = Some(ctl);
    }

    /// Attaches a semantic trace buffer: every central-queue reservation
    /// attempt, chunk release, and purge is recorded as a structured
    /// [`SemEvent`] for the trace-conformance replay (refinement check
    /// against the pure [`CqState`] machine).
    pub fn set_sem_trace(&mut self, sem: SemHandle) {
        self.sem = Some(sem);
    }

    /// No staged flits, no resident worms, every chunk free, no pending
    /// barrier emission: safe to swap routing tables.
    fn empty_now(&self) -> bool {
        self.inputs
            .iter()
            .all(|inp| inp.staging.is_empty() && matches!(inp.state, InState::Idle))
            && self
                .outputs
                .iter()
                .all(|o| o.queue.is_empty() && matches!(o.state, TxState::Idle))
            && self.cq.free() == self.cfg.cq_chunks
            && self.barrier.as_ref().is_none_or(|b| b.ready.is_empty())
    }

    /// Kills every resident worm: staged flits are dropped with one credit
    /// returned upstream each (link-level conservation holds), output
    /// branches and accumulated reservations are discarded, and the chunk
    /// pool is reset to pristine. Also swallows the at-most-one flit
    /// arriving this cycle, so in-flight link stragglers cannot wedge a
    /// half-dead worm back into the receiver FSM.
    fn purge(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        let mut flits = 0u64;
        let mut worms = 0u64;
        for (i, input) in self.inputs.iter_mut().enumerate() {
            if io.recv(i).is_some() {
                io.return_credit(i);
                flits += 1;
            }
            while input.staging.pop_front().is_some() {
                io.return_credit(i);
                flits += 1;
            }
            if !matches!(input.state, InState::Idle) {
                worms += 1;
                input.state = InState::Idle;
            }
            input.clock = HeaderClock::default();
        }
        for out in self.outputs.iter_mut() {
            worms += out.queue.len() as u64;
            out.queue.clear();
            if matches!(out.state, TxState::Stream(_)) {
                worms += 1;
            }
            out.state = TxState::Idle;
        }
        if let Some(bar) = self.barrier.as_mut() {
            worms += bar.ready.len() as u64;
            bar.ready.clear();
        }
        self.cq = CqState::new(self.cfg.cq_chunks, self.cfg.cq_down_reserve());
        if let Some(t) = &self.sem {
            t.borrow_mut().log(now, SemEvent::CqPurge { sw: self.id.0 });
        }
        if flits + worms > 0 {
            let mut st = self.stats.borrow_mut();
            st.purged_flits += flits;
            st.purged_worms += worms;
        }
    }

    /// Switch identity.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Chunks currently free (not holding data, not reserved).
    pub fn free_chunks(&self) -> usize {
        self.cq.free()
    }

    /// Enables barrier-gather combining at this switch: it will consume
    /// arriving gather worms and, once `expected` contributors of a round
    /// have reported, emit one merged gather upward — or, if this switch
    /// has no up ports (the combining root), a release broadcast to all
    /// `n_hosts` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `expected == 0`.
    pub fn enable_barrier_combining(
        &mut self,
        expected: usize,
        n_hosts: usize,
        bits_per_flit: usize,
    ) {
        assert!(expected > 0, "combining switch must expect gathers");
        self.barrier = Some(BarrierCombiner {
            expected,
            n_hosts,
            bits_per_flit,
            counts: HashMap::new(),
            ready: VecDeque::new(),
            seq: 0,
        });
    }
}

impl Component for CentralBufferSwitch {
    #[allow(clippy::needless_range_loop)] // index loops enable split borrows across ports
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        // Catch up cycles the compiled engine skipped while this switch
        // slept (always zero when ticked every cycle). A sleeping switch
        // is never purging, so the skipped ticks were plain idle ticks.
        self.replay_idle_cycles(now - self.last_tick - 1);
        self.last_tick = now;
        if let Some(ctl) = self.ctl.clone() {
            if ctl.purging() {
                self.purge(now, io);
                ctl.set_empty(true);
                let mut st = self.stats.borrow_mut();
                st.cq_used_chunks.observe(self.cq.used() as u64);
                st.cq_free_now = self.cq.free();
                return;
            }
            if ctl.tables_pending() && self.empty_now() {
                let (_epoch, tables) = ctl.take_committed().expect("pending checked");
                assert_eq!(
                    tables.table(self.id).n_ports(),
                    self.cfg.ports,
                    "swapped routing table port count mismatch for {}",
                    self.id
                );
                self.tables = tables;
            }
        }
        let ports = self.cfg.ports;
        let chunk_flits = self.cfg.chunk_flits;
        let CentralBufferSwitch {
            cfg,
            tables,
            inputs,
            outputs,
            cq,
            barrier,
            stats,
            ctl,
            sem,
            rr,
            id,
            ..
        } = self;
        let table = tables.table(*id);

        // --- Transmitters first: they observe last cycle's write progress,
        // modeling one cycle of latency through the central queue RAM.
        for p in 0..ports {
            let out = &mut outputs[p];
            if matches!(out.state, TxState::Idle) {
                if let Some(branch) = out.queue.pop_front() {
                    out.state = TxState::Stream(branch);
                }
            }
            if let TxState::Stream(branch) = &mut out.state {
                if io.can_send(p) {
                    let written = branch.write.borrow().written;
                    if branch.read < written {
                        io.send(p, Flit::new(branch.pkt.clone(), branch.read));
                        branch.read += 1;
                        let mut st = stats.borrow_mut();
                        st.flits_sent += 1;
                        drop(st);
                        let total = branch.pkt.total_flits();
                        if branch.read % chunk_flits == 0 || branch.read == total {
                            let idx = usize::from((branch.read - 1) / chunk_flits);
                            if branch.write.borrow_mut().release(idx) {
                                cq.release_chunk();
                                if let Some(t) = sem {
                                    t.borrow_mut().log(
                                        now,
                                        SemEvent::CqRelease {
                                            sw: id.0,
                                            free_after: cq.free(),
                                        },
                                    );
                                }
                            }
                        }
                        if branch.read == total {
                            out.state = TxState::Idle;
                        }
                    }
                }
            }
        }

        // --- Barrier-combiner emissions: merged gathers / the release
        //     broadcast, subject to the usual full-packet reservation. The
        //     virtual input id `cfg.ports` keeps the reservation
        //     accumulator slots distinct from real inputs.
        if let Some(bar) = barrier.as_mut() {
            while let Some(&(at, round)) = bar.ready.front() {
                if at > now {
                    break;
                }
                let is_root = table.up_ports().is_empty();
                let header = if is_root {
                    RoutingHeader::BitString {
                        dests: DestSet::full(bar.n_hosts),
                    }
                } else {
                    RoutingHeader::BarrierGather { round }
                };
                let total = header.header_flits(bar.n_hosts, bar.bits_per_flit) as u16;
                let need = cfg.chunks_for(total);
                let granted = cq.try_reserve(cfg.ports, need, true);
                if let Some(t) = sem {
                    t.borrow_mut().log(
                        now,
                        SemEvent::CqReserve {
                            sw: id.0,
                            input: cfg.ports,
                            need,
                            descending: true,
                            granted,
                            free_after: cq.free(),
                        },
                    );
                }
                if !granted {
                    break; // retry next cycle; order within the queue holds
                }
                bar.ready.pop_front();
                bar.seq += 1;
                let tag = SWITCH_MSG_BIT | (u64::from(id.0) << 32) | (bar.seq & 0xFFFF_FFFF);
                let pkt = Rc::new(
                    PacketBuilder::new(NodeId(0), header, 0, bar.n_hosts)
                        .bits_per_flit(bar.bits_per_flit)
                        .id(PacketId(tag))
                        .msg(MessageId(tag))
                        .created(now)
                        .build(),
                );
                let branches = if is_root {
                    let metrics: Vec<u64> = outputs
                        .iter()
                        .map(|o| {
                            o.queue.len() as u64 * 4
                                + match o.state {
                                    TxState::Idle => 0,
                                    _ => 2,
                                }
                        })
                        .collect();
                    resolve_branches(&pkt, table, cfg.policy, cfg.up_select, |p| metrics[p])
                } else {
                    vec![(table.up_ports()[0], pkt.clone())]
                };
                let write = Rc::new(RefCell::new(ReplState::synthesized(
                    total,
                    chunk_flits,
                    branches.len(),
                )));
                let mut st = stats.borrow_mut();
                st.branches_created += branches.len() as u64;
                if branches.len() > 1 {
                    st.packets_replicated += 1;
                }
                drop(st);
                for (port, bpkt) in branches {
                    outputs[port].queue.push_back(CqBranch {
                        pkt: bpkt,
                        read: 0,
                        write: write.clone(),
                    });
                }
            }
        }

        // --- Inputs, starting at a rotating offset for fairness.
        for k in 0..ports {
            let i = (k + *rr) % ports;
            let InputPort {
                staging,
                clock,
                state,
            } = &mut inputs[i];

            // Accept at most one arriving flit (link bandwidth).
            if let Some(flit) = io.recv(i) {
                clock.on_arrival(&flit, now);
                staging.push_back(flit);
                debug_assert!(
                    staging.len() <= cfg.staging_flits as usize,
                    "staging overflow: credit window violated"
                );
            }

            // Idle -> start processing the packet at the staging front.
            if matches!(state, InState::Idle) {
                if let Some(front) = staging.front() {
                    assert!(front.is_head(), "staging front must be a packet head");
                    let pkt = front.packet().clone();
                    assert!(
                        pkt.total_flits() <= cfg.max_packet_flits,
                        "packet {} exceeds the configured max packet size",
                        pkt.id()
                    );
                    *state = if matches!(pkt.header(), RoutingHeader::BarrierGather { .. }) {
                        assert!(
                            barrier.is_some(),
                            "barrier gather arrived at non-combining switch {id}"
                        );
                        InState::ConsumeGather { pkt }
                    } else if pkt.header().is_multidestination() {
                        InState::AwaitReservation { pkt }
                    } else {
                        InState::AwaitDecision { pkt, entered: now }
                    };
                }
            }

            // Barrier gathers are combined, not routed: swallow the flits
            // and bump the round counter at the tail.
            if let InState::ConsumeGather { pkt } = state {
                let belongs = staging.front().is_some_and(|f| f.packet().id() == pkt.id());
                if belongs {
                    let flit = staging.pop_front().expect("front present");
                    io.return_credit(i);
                    if flit.is_tail() {
                        let RoutingHeader::BarrierGather { round } = pkt.header() else {
                            unreachable!("ConsumeGather holds a gather packet");
                        };
                        barrier
                            .as_mut()
                            .expect("checked at interception")
                            .on_gather(*round, now + u64::from(cfg.route_delay));
                        clock.forget(pkt.id());
                        *state = InState::Idle;
                    }
                }
            }

            // Reservation for multidestination worms.
            if let InState::AwaitReservation { pkt } = state {
                let need = cfg.chunks_for(pkt.total_flits());
                let descending = table.port(i).class == PortClass::Up;
                let granted = cq.try_reserve(i, need, descending);
                if let Some(t) = sem {
                    t.borrow_mut().log(
                        now,
                        SemEvent::CqReserve {
                            sw: id.0,
                            input: i,
                            need,
                            descending,
                            granted,
                            free_after: cq.free(),
                        },
                    );
                }
                if granted {
                    let write =
                        Rc::new(RefCell::new(ReplState::new(pkt.total_flits(), chunk_flits)));
                    *state = InState::Absorbing {
                        pkt: pkt.clone(),
                        write,
                        entered: now,
                        decided: false,
                    };
                } else {
                    stats.borrow_mut().reservation_wait_cycles += 1;
                }
            }

            // Unicast routing decision: bypass or central queue.
            if let InState::AwaitDecision { pkt, entered } = state {
                let ready = clock
                    .done_at(pkt.id())
                    .is_some_and(|t| now >= t.max(*entered) + u64::from(cfg.route_delay));
                if ready {
                    let metrics: Vec<u64> = outputs
                        .iter()
                        .map(|o| {
                            o.queue.len() as u64 * 4
                                + match o.state {
                                    TxState::Idle => 0,
                                    _ => 2,
                                }
                        })
                        .collect();
                    let branches =
                        resolve_branches(pkt, table, cfg.policy, cfg.up_select, |p| metrics[p]);
                    debug_assert_eq!(branches.len(), 1, "unicast has one branch");
                    let (port, bpkt) = branches.into_iter().next().expect("one branch");
                    stats.borrow_mut().branches_created += 1;
                    let out = &mut outputs[port];
                    let can_bypass = cfg.bypass_crossbar
                        && out.queue.is_empty()
                        && matches!(out.state, TxState::Idle);
                    if can_bypass {
                        out.state = TxState::Bypass { input: i };
                        *state = InState::Bypass {
                            pkt: bpkt,
                            port,
                            sent: 0,
                        };
                    } else {
                        *state = InState::AwaitCqSpace { pkt: bpkt, port };
                    }
                }
            }

            // Unicast central-queue admission: the same full-packet
            // reservation multidestination worms get — the paper's
            // "accepted implies completely bufferable" condition applied
            // uniformly, which is what keeps the shared queue live (a
            // partially absorbed packet stalling mid-write could otherwise
            // wedge an upstream bypass and cycle between stages).
            if let InState::AwaitCqSpace { pkt, port } = state {
                let need = cfg.chunks_for(pkt.total_flits());
                let descending = table.port(i).class == PortClass::Up;
                let granted = cq.try_reserve(i, need, descending);
                if let Some(t) = sem {
                    t.borrow_mut().log(
                        now,
                        SemEvent::CqReserve {
                            sw: id.0,
                            input: i,
                            need,
                            descending,
                            granted,
                            free_after: cq.free(),
                        },
                    );
                }
                if granted {
                    let write =
                        Rc::new(RefCell::new(ReplState::new(pkt.total_flits(), chunk_flits)));
                    write.borrow_mut().set_branches(1);
                    outputs[*port].queue.push_back(CqBranch {
                        pkt: pkt.clone(),
                        read: 0,
                        write: write.clone(),
                    });
                    *state = InState::Absorbing {
                        pkt: pkt.clone(),
                        write,
                        entered: now,
                        decided: true,
                    };
                } else {
                    stats.borrow_mut().reservation_wait_cycles += 1;
                }
            }

            // Absorption into the central queue (and the deferred
            // replication decision for multidestination worms).
            if let InState::Absorbing {
                pkt,
                write,
                entered,
                decided,
            } = state
            {
                if !*decided {
                    let ready = clock
                        .done_at(pkt.id())
                        .is_some_and(|t| now >= t.max(*entered) + u64::from(cfg.route_delay));
                    if ready {
                        let metrics: Vec<u64> = outputs
                            .iter()
                            .map(|o| {
                                o.queue.len() as u64 * 4
                                    + match o.state {
                                        TxState::Idle => 0,
                                        _ => 2,
                                    }
                            })
                            .collect();
                        let branches =
                            resolve_branches(pkt, table, cfg.policy, cfg.up_select, |p| metrics[p]);
                        write.borrow_mut().set_branches(branches.len());
                        let mut st = stats.borrow_mut();
                        st.branches_created += branches.len() as u64;
                        if branches.len() > 1 {
                            st.packets_replicated += 1;
                        }
                        drop(st);
                        for (port, bpkt) in branches {
                            outputs[port].queue.push_back(CqBranch {
                                pkt: bpkt,
                                read: 0,
                                write: write.clone(),
                            });
                        }
                        *decided = true;
                    }
                }
                // Move one flit staging -> central queue.
                let belongs = staging.front().is_some_and(|f| f.packet().id() == pkt.id());
                if belongs {
                    // Chunk space is guaranteed: every packet reserved its
                    // full chunk demand at admission.
                    write.borrow_mut().write_flit();
                    staging.pop_front();
                    io.return_credit(i);
                }
                // Retire only once fully absorbed AND the replication
                // decision has been made — a short worm can finish
                // absorbing before its header-decode delay elapses, and
                // leaving early would orphan it in the central queue.
                let complete = {
                    let w = write.borrow();
                    w.written == w.total
                };
                if *decided && complete {
                    clock.forget(pkt.id());
                    *state = InState::Idle;
                }
            }

            // Bypass streaming: staging straight onto the output link.
            if let InState::Bypass { pkt, port, sent } = state {
                let belongs = staging.front().is_some_and(|f| f.packet().id() == pkt.id());
                if belongs && io.can_send(*port) {
                    let flit = staging.pop_front().expect("front present");
                    io.send(*port, flit);
                    io.return_credit(i);
                    *sent += 1;
                    let mut st = stats.borrow_mut();
                    st.flits_sent += 1;
                    st.bypass_flits += 1;
                    drop(st);
                    if *sent == pkt.total_flits() {
                        if let TxState::Bypass { input } = outputs[*port].state {
                            debug_assert_eq!(input, i, "bypass owner mismatch");
                        }
                        outputs[*port].state = TxState::Idle;
                        clock.forget(pkt.id());
                        *state = InState::Idle;
                    }
                }
            }
        }

        *rr = (*rr + 1) % ports;

        if stats.borrow().forensics_requested {
            let snap_worm = |input: Option<usize>,
                             pkt: &Rc<Packet>,
                             state: &'static str,
                             holds: Vec<usize>,
                             waits: Vec<usize>| BlockedWormSnap {
                input,
                packet: pkt.id().0,
                msg: pkt.msg().0,
                src: pkt.src().0,
                state,
                remaining_dests: header_dests(pkt),
                holds_outputs: holds,
                waits_outputs: waits,
            };
            // Worms waiting on central-queue space block until these outputs
            // drain the chunks they hold.
            let drain_outputs: Vec<usize> = (0..ports)
                .filter(|&p| {
                    !outputs[p].queue.is_empty() || !matches!(outputs[p].state, TxState::Idle)
                })
                .collect();
            let mut blocked = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                match &input.state {
                    InState::Idle | InState::ConsumeGather { .. } => {}
                    InState::AwaitReservation { pkt } => blocked.push(snap_worm(
                        Some(i),
                        pkt,
                        "await-cq-reservation",
                        Vec::new(),
                        drain_outputs.clone(),
                    )),
                    InState::AwaitDecision { pkt, .. } => blocked.push(snap_worm(
                        Some(i),
                        pkt,
                        "await-route-decision",
                        Vec::new(),
                        Vec::new(),
                    )),
                    InState::AwaitCqSpace { pkt, .. } => blocked.push(snap_worm(
                        Some(i),
                        pkt,
                        "await-cq-space",
                        Vec::new(),
                        drain_outputs.clone(),
                    )),
                    InState::Absorbing { pkt, .. } => {
                        blocked.push(snap_worm(Some(i), pkt, "absorbing", Vec::new(), Vec::new()))
                    }
                    InState::Bypass { pkt, port, .. } => blocked.push(snap_worm(
                        Some(i),
                        pkt,
                        "bypass-blocked",
                        vec![*port],
                        vec![*port],
                    )),
                }
            }
            for (p, out) in outputs.iter().enumerate() {
                if let TxState::Stream(b) = &out.state {
                    if !io.can_send(p) {
                        blocked.push(snap_worm(
                            None,
                            &b.pkt,
                            "cq-stream-blocked",
                            Vec::new(),
                            vec![p],
                        ));
                    }
                }
                for b in &out.queue {
                    blocked.push(snap_worm(None, &b.pkt, "cq-queued", Vec::new(), vec![p]));
                }
            }
            let mut st = stats.borrow_mut();
            st.forensics_requested = false;
            st.forensics = Some(SwitchSnapshot {
                cq_used_chunks: cq.used(),
                cq_free_chunks: cq.free(),
                input_occupancy: inputs.iter().map(|i| i.staging.len() as u32).collect(),
                blocked,
            });
        }

        let mut st = stats.borrow_mut();
        st.cq_used_chunks.observe(cq.used() as u64);
        st.cq_free_now = cq.free();
        drop(st);

        if let Some(ctl) = ctl {
            let empty = inputs
                .iter()
                .all(|inp| inp.staging.is_empty() && matches!(inp.state, InState::Idle))
                && outputs
                    .iter()
                    .all(|o| o.queue.is_empty() && matches!(o.state, TxState::Idle))
                && cq.free() == cfg.cq_chunks
                && barrier.as_ref().is_none_or(|b| b.ready.is_empty());
            ctl.set_empty(empty);
        }
    }

    /// An empty switch with no control-plane work pending does nothing
    /// per tick beyond the idle bookkeeping `replay_idle_cycles` replays —
    /// safe for the compiled engine to skip until traffic or a wake
    /// arrives. Purging and pending table swaps keep it awake because
    /// those act on every tick.
    fn quiescent(&self) -> bool {
        self.empty_now()
            && self
                .ctl
                .as_ref()
                .is_none_or(|c| !c.purging() && !c.tables_pending())
    }

    /// End-of-run catch-up for skipped idle ticks (see [`Component::flush`]).
    fn flush(&mut self, now: Cycle) {
        self.replay_idle_cycles(now - self.last_tick);
        self.last_tick = now;
    }

    /// Reports the two-phase install state off the control cell so the
    /// engine's torn-install audit can compare epochs across the fabric.
    fn epoch_status(&self) -> Option<netsim::engine::EpochStatus> {
        self.ctl.as_ref().map(|c| netsim::engine::EpochStatus {
            committed: c.committed_epoch(),
            pending: c.pending_commit(),
        })
    }
}

impl std::fmt::Debug for CentralBufferSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CentralBufferSwitch({}, {} ports, {}/{} chunks free)",
            self.id,
            self.cfg.ports,
            self.cq.free(),
            self.cfg.cq_chunks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{single_switch_world, sink_flits, TestWorld};
    use mintopo::route::ReplicatePolicy;
    use netsim::destset::DestSet;
    use netsim::ids::NodeId;
    use netsim::packet::PacketBuilder;

    fn world(cfg: SwitchConfig) -> TestWorld {
        let credits = cfg.staging_flits;
        single_switch_world(4, cfg, credits, |id, cfg, tables, stats| {
            Box::new(CentralBufferSwitch::new(id, cfg, tables, stats))
        })
    }

    #[test]
    fn unicast_delivery_via_bypass() {
        let mut w = world(SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        });
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(2), 16, 4)
            .id(netsim::ids::PacketId(1))
            .build();
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2), 18); // 2 header + 16 payload
        assert_eq!(sink_flits(&w, 1), 0);
        let st = w.stats.borrow();
        assert!(st.bypass_flits > 0, "idle output should use the bypass");
    }

    #[test]
    fn unicast_without_bypass_goes_through_cq() {
        let mut w = world(SwitchConfig {
            ports: 4,
            bypass_crossbar: false,
            ..SwitchConfig::default()
        });
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(2), 16, 4).build();
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2), 18);
        assert_eq!(w.stats.borrow().bypass_flits, 0);
        assert!(w.stats.borrow().cq_used_chunks.max() > 0);
    }

    #[test]
    fn multicast_replicates_to_all_destinations() {
        let mut w = world(SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        });
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 32).build();
        let total = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(200);
        for h in 1..4 {
            assert_eq!(sink_flits(&w, h), total, "host {h}");
        }
        assert_eq!(sink_flits(&w, 0), 0, "source gets no copy");
        let st = w.stats.borrow();
        assert_eq!(st.packets_replicated, 1);
        assert_eq!(st.branches_created, 3);
    }

    #[test]
    fn chunks_are_all_freed_after_multicast() {
        let cfg = SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        };
        let total_chunks = cfg.cq_chunks;
        let mut w = world(cfg);
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        w.inject(0, PacketBuilder::multicast(NodeId(0), dests, 40).build());
        w.engine.run_for(300);
        assert_eq!(
            w.stats.borrow().cq_free_now,
            total_chunks,
            "all chunks returned to the pool"
        );
    }

    #[test]
    fn tiny_central_queue_still_delivers_multicast() {
        // Queue barely fits one packet: reservation must serialize worms,
        // not deadlock.
        let cfg = SwitchConfig {
            ports: 4,
            cq_chunks: 12,
            chunk_flits: 8,
            max_packet_flits: 48,
            input_buf_flits: 48,
            ..SwitchConfig::default()
        };
        let mut w = world(cfg);
        let d1 = DestSet::from_nodes(4, [2, 3].map(NodeId));
        let d2 = DestSet::from_nodes(4, [0, 3].map(NodeId));
        let p1 = PacketBuilder::multicast(NodeId(0), d1, 32)
            .id(netsim::ids::PacketId(1))
            .build();
        let p2 = PacketBuilder::multicast(NodeId(1), d2, 32)
            .id(netsim::ids::PacketId(2))
            .build();
        let (t1, t2) = (p1.total_flits() as usize, p2.total_flits() as usize);
        w.inject(0, p1);
        w.inject(1, p2);
        w.engine.run_for(600);
        assert_eq!(sink_flits(&w, 2), t1);
        assert_eq!(sink_flits(&w, 3), t1 + t2);
        assert_eq!(sink_flits(&w, 0), t2);
        assert!(w.stats.borrow().reservation_wait_cycles > 0);
    }

    #[test]
    fn forward_and_return_policy_accepted() {
        let mut w = world(SwitchConfig {
            ports: 4,
            policy: ReplicatePolicy::ForwardAndReturn,
            ..SwitchConfig::default()
        });
        let dests = DestSet::from_nodes(4, [1, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 8).build();
        let total = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 1), total);
        assert_eq!(sink_flits(&w, 3), total);
    }

    #[test]
    fn barrier_combining_single_switch_round_trip() {
        // Four hosts on one combining switch (it has no up ports, so it is
        // the combining root): four gather worms in, one broadcast release
        // out to every host.
        use netsim::header::RoutingHeader;
        let cfg = SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        };
        let credits = cfg.staging_flits;
        let mut w = single_switch_world(4, cfg, credits, |id, cfg, tables, stats| {
            let mut sw = CentralBufferSwitch::new(id, cfg, tables, stats);
            sw.enable_barrier_combining(4, 4, 8);
            Box::new(sw)
        });
        for h in 0..4u32 {
            let pkt =
                PacketBuilder::new(NodeId(h), RoutingHeader::BarrierGather { round: 0 }, 0, 4)
                    .id(netsim::ids::PacketId(u64::from(h) + 1))
                    .build();
            w.inject(h as usize, pkt);
        }
        w.engine.run_for(200);
        // Release = BitString to 4 hosts over a 4-node universe: 1 control
        // + 1 bit-string flit = 2 flits per copy; gathers are consumed.
        for h in 0..4 {
            assert_eq!(sink_flits(&w, h), 2, "host {h} got exactly the release");
        }
        let st = w.stats.borrow();
        assert_eq!(st.packets_replicated, 1, "one release broadcast");
        assert_eq!(st.cq_free_now, 128, "all chunks recycled");
    }

    #[test]
    fn gathers_of_distinct_rounds_do_not_mix() {
        use netsim::header::RoutingHeader;
        let cfg = SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        };
        let credits = cfg.staging_flits;
        let mut w = single_switch_world(4, cfg, credits, |id, cfg, tables, stats| {
            let mut sw = CentralBufferSwitch::new(id, cfg, tables, stats);
            sw.enable_barrier_combining(4, 4, 8);
            Box::new(sw)
        });
        // Three gathers of round 0 and one of round 1: no release yet.
        for (i, round) in [(0u32, 0u32), (1, 0), (2, 0), (3, 1)] {
            let pkt = PacketBuilder::new(NodeId(i), RoutingHeader::BarrierGather { round }, 0, 4)
                .id(netsim::ids::PacketId(u64::from(i) + 10))
                .build();
            w.inject(i as usize, pkt);
        }
        w.engine.run_for(200);
        for h in 0..4 {
            assert_eq!(sink_flits(&w, h), 0, "no round completed");
        }
        // The missing round-0 gather completes round 0 only.
        let pkt = PacketBuilder::new(NodeId(3), RoutingHeader::BarrierGather { round: 0 }, 0, 4)
            .id(netsim::ids::PacketId(99))
            .build();
        w.inject(3, pkt);
        w.engine.run_for(200);
        for h in 0..4 {
            assert_eq!(sink_flits(&w, h), 2, "round 0 released once");
        }
    }

    #[test]
    fn two_unicasts_to_same_output_serialize() {
        let mut w = world(SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        });
        let a = PacketBuilder::unicast(NodeId(0), NodeId(3), 24, 4)
            .id(netsim::ids::PacketId(10))
            .build();
        let b = PacketBuilder::unicast(NodeId(1), NodeId(3), 24, 4)
            .id(netsim::ids::PacketId(11))
            .build();
        let per = a.total_flits() as usize;
        w.inject(0, a);
        w.inject(1, b);
        w.engine.run_for(300);
        assert_eq!(sink_flits(&w, 3), 2 * per);
    }

    fn ctl_world(cfg: SwitchConfig) -> (Rc<SwitchCtl>, TestWorld) {
        let credits = cfg.staging_flits;
        let ctl = SwitchCtl::new();
        let c = ctl.clone();
        let w = single_switch_world(4, cfg, credits, move |id, cfg, tables, stats| {
            let mut sw = CentralBufferSwitch::new(id, cfg, tables, stats);
            sw.set_ctl(c);
            Box::new(sw)
        });
        (ctl, w)
    }

    #[test]
    fn purge_kills_resident_worm_and_restores_credits() {
        let cfg = SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        };
        let total_chunks = cfg.cq_chunks;
        let (ctl, mut w) = ctl_world(cfg);
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 40).build();
        let total = pkt.total_flits() as u64;
        w.inject(0, pkt);
        // Let the worm get partially absorbed, then purge. The source keeps
        // streaming the rest of the packet; swallow mode must absorb every
        // straggler (each one earns a credit back, so the source drains).
        w.engine.run_for(10);
        ctl.begin_purge();
        w.engine.run_for(total + 20);
        ctl.end_purge();
        assert!(ctl.is_empty(), "purged switch reports empty");
        {
            let st = w.stats.borrow();
            assert!(st.purged_flits > 0, "staged/straggler flits were killed");
            assert!(st.purged_worms >= 1, "the resident worm was killed");
            assert_eq!(st.cq_free_now, total_chunks, "chunk pool reset");
        }
        // Fresh traffic proves every upstream credit came back.
        let before = sink_flits(&w, 2);
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(2), 16, 4)
            .id(netsim::ids::PacketId(77))
            .build();
        let t2 = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2) - before, t2, "post-purge delivery");
    }

    #[test]
    fn pending_table_swap_waits_for_empty_then_reroutes() {
        use mintopo::reach::{PortClass, PortInfo};
        use mintopo::route::SwitchTable;
        let (ctl, mut w) = ctl_world(SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        });
        // Occupy the switch with a long multicast, then stage a swap in
        // which ports 1 and 2 trade reach strings.
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        w.inject(0, PacketBuilder::multicast(NodeId(0), dests, 60).build());
        w.engine.run_for(10);
        let down = |n: u32| PortInfo {
            class: PortClass::Down,
            reach: DestSet::singleton(4, NodeId(n)),
        };
        let swapped = RouteTables::from_tables(
            vec![SwitchTable::from_ports(
                vec![down(0), down(2), down(1), down(3)],
                4,
            )],
            4,
        );
        ctl.install_tables(Rc::new(swapped));
        w.engine.run_for(3);
        assert!(ctl.tables_pending(), "switch is busy; swap must wait");
        w.engine.run_for(400);
        assert!(!ctl.tables_pending(), "swap applied once empty");
        assert!(ctl.is_empty());
        // Traffic for host 1 now leaves through port 2.
        let before = sink_flits(&w, 2);
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(1), 8, 4)
            .id(netsim::ids::PacketId(9))
            .build();
        let t = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2) - before, t, "rerouted by the new table");
    }
}
