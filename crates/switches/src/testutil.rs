//! Test harness shared by the switch architecture unit tests: a single
//! switch with simple flit sources and sinks attached to every port.

#![cfg(test)]

use crate::config::SwitchConfig;
use crate::stats::SwitchStats;
use mintopo::route::RouteTables;
use mintopo::topology::TopologyBuilder;
use netsim::engine::{Component, Engine, PortIo};
use netsim::flit::Flit;
use netsim::ids::{NodeId, SwitchId};
use netsim::packet::Packet;
use netsim::Cycle;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Injects queued packets flit-by-flit at link rate.
struct TestSource {
    queue: Rc<RefCell<VecDeque<Rc<Packet>>>>,
    cur: Option<(Rc<Packet>, u16)>,
}

impl Component for TestSource {
    fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
        if self.cur.is_none() {
            self.cur = self.queue.borrow_mut().pop_front().map(|p| (p, 0));
        }
        if let Some((pkt, idx)) = &mut self.cur {
            if io.can_send(0) {
                io.send(0, Flit::new(pkt.clone(), *idx));
                *idx += 1;
                if *idx == pkt.total_flits() {
                    self.cur = None;
                }
            }
        }
    }
}

/// Counts received flits, returning credits immediately.
struct TestSink {
    flits: Rc<Cell<usize>>,
}

impl Component for TestSink {
    fn tick(&mut self, _now: Cycle, io: &mut PortIo<'_>) {
        if io.recv(0).is_some() {
            io.return_credit(0);
            self.flits.set(self.flits.get() + 1);
        }
    }
}

/// A one-switch world: `n_hosts` sources/sinks on ports `0..n_hosts`.
pub(crate) struct TestWorld {
    pub(crate) engine: Engine,
    queues: Vec<Rc<RefCell<VecDeque<Rc<Packet>>>>>,
    sinks: Vec<Rc<Cell<usize>>>,
    pub(crate) stats: Rc<RefCell<SwitchStats>>,
}

impl TestWorld {
    /// Queues a packet for injection at `host`.
    pub(crate) fn inject(&mut self, host: usize, pkt: Packet) {
        self.queues[host].borrow_mut().push_back(Rc::new(pkt));
    }
}

/// Flits received so far by `host`'s sink.
pub(crate) fn sink_flits(w: &TestWorld, host: usize) -> usize {
    w.sinks[host].get()
}

/// Builds the world around a switch produced by `factory`. `input_credits`
/// is the credit window of the host→switch links (the receiver buffer the
/// architecture exposes).
pub(crate) fn single_switch_world(
    n_hosts: usize,
    cfg: SwitchConfig,
    input_credits: u32,
    factory: impl FnOnce(
        SwitchId,
        SwitchConfig,
        Rc<RouteTables>,
        Rc<RefCell<SwitchStats>>,
    ) -> Box<dyn Component>,
) -> TestWorld {
    assert!(n_hosts <= cfg.ports);
    let mut b = TopologyBuilder::new(n_hosts);
    let sw = b.add_switch(cfg.ports, 0);
    for h in 0..n_hosts {
        b.attach_host(NodeId::from(h), sw, h);
    }
    let topo = b.build();
    let tables = Rc::new(RouteTables::build(&topo));
    let stats = Rc::new(RefCell::new(SwitchStats::default()));

    let mut engine = Engine::new();
    // Links: host h -> switch port h, and switch port h -> host h.
    let to_switch: Vec<_> = (0..cfg.ports)
        .map(|_| engine.add_link(1, input_credits))
        .collect();
    let to_host: Vec<_> = (0..cfg.ports).map(|_| engine.add_link(1, 8)).collect();

    let switch = factory(sw, cfg, tables, stats.clone());
    engine.add_component(switch, to_switch.clone(), to_host.clone());

    let mut queues = Vec::new();
    let mut sinks = Vec::new();
    for h in 0..n_hosts {
        let q = Rc::new(RefCell::new(VecDeque::new()));
        queues.push(q.clone());
        engine.add_component(
            Box::new(TestSource {
                queue: q,
                cur: None,
            }),
            vec![],
            vec![to_switch[h]],
        );
        let flits = Rc::new(Cell::new(0));
        sinks.push(flits.clone());
        engine.add_component(Box::new(TestSink { flits }), vec![to_host[h]], vec![]);
    }
    TestWorld {
        engine,
        queues,
        sinks,
        stats,
    }
}
