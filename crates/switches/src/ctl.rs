//! Out-of-band switch control for the online fault-response protocol
//! (DESIGN.md §10, §15): quiesce purges and epoch-versioned two-phase
//! routing-table installs.
//!
//! A [`SwitchCtl`] is a small shared cell created per switch by the system
//! builder and held by both the switch (which polls it at the top of every
//! tick) and the fault-response orchestrator (which flips it from outside
//! the engine). This models the SP2-style service interface — switches
//! take management commands over a path separate from the data network —
//! without threading new parameters through [`netsim::engine::Engine`].
//!
//! Three commands exist:
//!
//! * **purge** — while raised, the switch kills every resident worm
//!   (returning one credit upstream per buffered flit, so link-level
//!   credit conservation holds) and swallows arriving stragglers. The
//!   orchestrator raises it only after a drain grace period, so whatever
//!   a purge kills was wedged against a dead link; the end-to-end
//!   retransmission ledger re-sends the payload later.
//! * **prepare / commit / abort** — the two-phase table install. Every
//!   table set carries a monotonically increasing *epoch*.
//!   [`SwitchCtl::prepare`] stages `(epoch, tables)` without activating
//!   anything; [`SwitchCtl::commit`] arms the staged epoch for
//!   activation; [`SwitchCtl::abort`] discards an unarmed stage. The
//!   switch swaps an armed set in on the first tick it finds itself
//!   completely empty, stamping [`SwitchCtl::committed_epoch`]. A
//!   coordinator that crashes between prepare and commit therefore
//!   leaves the fabric on the old epoch everywhere — never on a mix —
//!   and its journal replay can re-drive the commit (DESIGN.md §15).
//! * **legacy one-shot install** — [`SwitchCtl::install_tables`] is
//!   prepare + commit fused under an auto-allocated epoch, kept for
//!   callers that do not coordinate across switches (single-switch
//!   tests and tools).
//!
//! Swapping only-when-empty means no in-flight worm ever decodes against
//! a mix of old and new tables; epoch stamps make the complementary
//! cross-switch property auditable (no cycle may see two switches on
//! diverging committed epochs unless the laggard has an armed commit
//! pending — see `netsim::engine::Engine::enable_epoch_audit`).

use mintopo::route::RouteTables;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Shared control cell between one switch and the fault-response
/// orchestrator.
#[derive(Debug, Default)]
pub struct SwitchCtl {
    purging: Cell<bool>,
    empty: Cell<bool>,
    /// Epoch of the table set the switch currently decodes against
    /// (0 = the build-time tables).
    committed: Cell<u64>,
    /// Staged-but-inactive table set from a `prepare`.
    staged: RefCell<Option<(u64, Rc<RouteTables>)>>,
    /// Epoch armed for activation by a `commit`; always matches the
    /// staged epoch while `Some`.
    armed: Cell<Option<u64>>,
}

impl SwitchCtl {
    /// Creates a control cell (no purge raised, nothing staged, epoch 0).
    pub fn new() -> Rc<Self> {
        Rc::new(SwitchCtl::default())
    }

    /// Raises the purge command; the switch clears itself on its next tick
    /// and keeps swallowing arrivals until [`SwitchCtl::end_purge`].
    pub fn begin_purge(&self) {
        self.purging.set(true);
    }

    /// Lowers the purge command; the switch resumes normal operation.
    pub fn end_purge(&self) {
        self.purging.set(false);
    }

    /// `true` while the purge command is raised.
    pub fn purging(&self) -> bool {
        self.purging.get()
    }

    /// Phase one: stages `(epoch, tables)` without activating anything.
    /// Overwrites any earlier stage that has not been activated yet — the
    /// newer epoch supersedes it, even if it was already armed (a wedged
    /// switch may sit on an armed swap across a whole response episode;
    /// the next episode's decision subsumes it). Re-preparing the
    /// currently armed epoch is an idempotent no-op, so a recovering
    /// coordinator can blindly re-drive its prepare sequence.
    ///
    /// # Panics
    ///
    /// Panics if `epoch` does not advance past the committed epoch or
    /// regresses below an armed epoch — either way the coordinator has
    /// lost track of its own protocol.
    pub fn prepare(&self, epoch: u64, tables: Rc<RouteTables>) {
        assert!(
            epoch > self.committed.get(),
            "prepare epoch {epoch} must exceed committed epoch {}",
            self.committed.get()
        );
        if let Some(armed) = self.armed.get() {
            assert!(
                epoch >= armed,
                "prepare({epoch}) regresses below armed epoch {armed}"
            );
            if epoch == armed {
                return; // idempotent re-prepare of an armed epoch
            }
            self.armed.set(None); // newer epoch supersedes the armed swap
        }
        *self.staged.borrow_mut() = Some((epoch, tables));
    }

    /// Phase two: arms the staged `epoch` for activation; the switch swaps
    /// it in on the first tick it is completely empty. Idempotent: a
    /// commit of an epoch already armed or already committed is a no-op,
    /// so a recovering coordinator can re-drive commits it may or may not
    /// have issued before crashing. Returns `true` if the commit armed
    /// (or had already armed/activated) the epoch, `false` if nothing
    /// matching was staged.
    pub fn commit(&self, epoch: u64) -> bool {
        if self.committed.get() >= epoch || self.armed.get() == Some(epoch) {
            return true; // already done (or in flight)
        }
        let staged = self.staged.borrow();
        match &*staged {
            Some((e, _)) if *e == epoch => {
                self.armed.set(Some(epoch));
                true
            }
            _ => false,
        }
    }

    /// Discards an unarmed stage of `epoch`. Returns `true` if a stage
    /// was discarded; `false` if nothing matching was staged or the epoch
    /// was already armed (a commit is a point of no return).
    pub fn abort(&self, epoch: u64) -> bool {
        if self.armed.get() == Some(epoch) {
            return false;
        }
        let mut staged = self.staged.borrow_mut();
        match &*staged {
            Some((e, _)) if *e == epoch => {
                *staged = None;
                true
            }
            _ => false,
        }
    }

    /// Legacy one-shot install: prepare + commit fused under the next
    /// free epoch. Overwrites any earlier uncommitted stage.
    pub fn install_tables(&self, tables: Rc<RouteTables>) {
        let epoch = self
            .committed
            .get()
            .max(self.staged.borrow().as_ref().map_or(0, |(e, _)| *e))
            + 1;
        self.prepare(epoch, tables);
        self.commit(epoch);
    }

    /// `true` while an armed table swap has not been activated — the
    /// switch must keep ticking until it finds itself empty and swaps.
    pub fn tables_pending(&self) -> bool {
        self.armed.get().is_some()
    }

    /// Epoch of a staged (prepared, possibly armed) table set.
    pub fn prepared_epoch(&self) -> Option<u64> {
        self.staged.borrow().as_ref().map(|(e, _)| *e)
    }

    /// Epoch armed for activation but not yet swapped in.
    pub fn pending_commit(&self) -> Option<u64> {
        self.armed.get()
    }

    /// Epoch of the active table set (0 until a first swap activates).
    pub fn committed_epoch(&self) -> u64 {
        self.committed.get()
    }

    /// Hands the armed table set to the switch, stamping the committed
    /// epoch. `None` while nothing is armed.
    pub(crate) fn take_committed(&self) -> Option<(u64, Rc<RouteTables>)> {
        let epoch = self.armed.get()?;
        let (e, tables) = self
            .staged
            .borrow_mut()
            .take()
            .expect("armed implies staged");
        debug_assert_eq!(e, epoch);
        self.armed.set(None);
        self.committed.set(epoch);
        Some((epoch, tables))
    }

    /// `true` if the switch reported itself completely empty (no staged
    /// flits, no resident worms, all buffer space free) at the end of its
    /// most recent tick. `false` before the first tick.
    ///
    /// The quiesce orchestrator polls this after a purge to confirm the
    /// fabric has drained before activating new tables.
    pub fn is_empty(&self) -> bool {
        self.empty.get()
    }

    pub(crate) fn set_empty(&self, empty: bool) {
        self.empty.set(empty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::reach::{PortClass, PortInfo};
    use mintopo::route::SwitchTable;
    use netsim::destset::DestSet;
    use netsim::ids::NodeId;

    fn tables() -> Rc<RouteTables> {
        let port = |n: u32| PortInfo {
            class: PortClass::Down,
            reach: DestSet::singleton(4, NodeId(n)),
        };
        Rc::new(RouteTables::from_tables(
            vec![SwitchTable::from_ports(
                vec![port(0), port(1), port(2), port(3)],
                4,
            )],
            4,
        ))
    }

    #[test]
    fn purge_flag_toggles() {
        let ctl = SwitchCtl::new();
        assert!(!ctl.purging());
        ctl.begin_purge();
        assert!(ctl.purging());
        ctl.end_purge();
        assert!(!ctl.purging());
    }

    #[test]
    fn prepare_commit_activates_only_after_both_phases() {
        let ctl = SwitchCtl::new();
        assert_eq!(ctl.committed_epoch(), 0);
        ctl.prepare(1, tables());
        assert_eq!(ctl.prepared_epoch(), Some(1));
        assert!(!ctl.tables_pending(), "prepare alone must not arm");
        assert!(ctl.take_committed().is_none(), "unarmed stage stays put");
        assert!(ctl.commit(1));
        assert!(ctl.tables_pending());
        let (e, _) = ctl.take_committed().expect("armed swap hands over");
        assert_eq!(e, 1);
        assert_eq!(ctl.committed_epoch(), 1);
        assert!(!ctl.tables_pending());
    }

    #[test]
    fn abort_discards_unarmed_stage_only() {
        let ctl = SwitchCtl::new();
        ctl.prepare(1, tables());
        assert!(ctl.abort(1));
        assert_eq!(ctl.prepared_epoch(), None);
        assert!(!ctl.commit(1), "aborted stage cannot commit");

        ctl.prepare(2, tables());
        assert!(ctl.commit(2));
        assert!(!ctl.abort(2), "commit is a point of no return");
        assert!(ctl.take_committed().is_some());
    }

    #[test]
    fn commit_is_idempotent_across_a_redrive() {
        let ctl = SwitchCtl::new();
        ctl.prepare(1, tables());
        assert!(ctl.commit(1));
        // A recovering coordinator re-prepares and re-commits blindly.
        ctl.prepare(1, tables());
        assert!(ctl.commit(1));
        assert!(ctl.take_committed().is_some());
        assert_eq!(ctl.committed_epoch(), 1);
        // ...and a late duplicate commit after activation is a no-op.
        assert!(ctl.commit(1));
        assert!(ctl.take_committed().is_none());
    }

    #[test]
    fn newer_prepare_supersedes_unarmed_stage() {
        let ctl = SwitchCtl::new();
        ctl.prepare(1, tables());
        ctl.prepare(2, tables());
        assert_eq!(ctl.prepared_epoch(), Some(2));
        assert!(!ctl.commit(1), "superseded epoch is gone");
        assert!(ctl.commit(2));
    }

    #[test]
    fn newer_prepare_supersedes_wedged_armed_swap() {
        // A switch that never found itself empty still holds an armed
        // swap when the next episode decides; the newer epoch replaces it.
        let ctl = SwitchCtl::new();
        ctl.prepare(1, tables());
        ctl.commit(1);
        ctl.prepare(2, tables());
        assert!(!ctl.tables_pending(), "superseded arm is cleared");
        assert!(ctl.commit(2));
        assert_eq!(ctl.take_committed().map(|(e, _)| e), Some(2));
    }

    #[test]
    fn legacy_install_allocates_fresh_epochs() {
        let ctl = SwitchCtl::new();
        ctl.install_tables(tables());
        assert!(ctl.tables_pending());
        assert_eq!(ctl.take_committed().map(|(e, _)| e), Some(1));
        ctl.install_tables(tables());
        assert_eq!(ctl.take_committed().map(|(e, _)| e), Some(2));
        assert_eq!(ctl.committed_epoch(), 2);
    }

    #[test]
    #[should_panic(expected = "must exceed committed epoch")]
    fn prepare_must_advance_the_epoch() {
        let ctl = SwitchCtl::new();
        ctl.prepare(1, tables());
        ctl.commit(1);
        ctl.take_committed();
        ctl.prepare(1, tables());
    }
}
