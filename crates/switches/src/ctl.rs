//! Out-of-band switch control for the online fault-response protocol
//! (DESIGN.md §10): quiesce purges and pending routing-table swaps.
//!
//! A [`SwitchCtl`] is a small shared cell created per switch by the system
//! builder and held by both the switch (which polls it at the top of every
//! tick) and the fault-response orchestrator (which flips it from outside
//! the engine). This models the SP2-style service interface — switches
//! take management commands over a path separate from the data network —
//! without threading new parameters through [`netsim::engine::Engine`].
//!
//! Two commands exist:
//!
//! * **purge** — while raised, the switch kills every resident worm
//!   (returning one credit upstream per buffered flit, so link-level
//!   credit conservation holds) and swallows arriving stragglers. The
//!   orchestrator raises it only after a drain grace period, so whatever
//!   a purge kills was wedged against a dead link; the end-to-end
//!   retransmission ledger re-sends the payload later.
//! * **table swap** — a pending `Rc<RouteTables>` the switch installs the
//!   first tick it finds itself completely empty. Swapping only-when-empty
//!   means no in-flight worm ever decodes against a mix of old and new
//!   tables.

use mintopo::route::RouteTables;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// Shared control cell between one switch and the fault-response
/// orchestrator.
#[derive(Debug, Default)]
pub struct SwitchCtl {
    purging: Cell<bool>,
    empty: Cell<bool>,
    pending_tables: RefCell<Option<Rc<RouteTables>>>,
}

impl SwitchCtl {
    /// Creates a control cell (no purge raised, no pending tables).
    pub fn new() -> Rc<Self> {
        Rc::new(SwitchCtl::default())
    }

    /// Raises the purge command; the switch clears itself on its next tick
    /// and keeps swallowing arrivals until [`SwitchCtl::end_purge`].
    pub fn begin_purge(&self) {
        self.purging.set(true);
    }

    /// Lowers the purge command; the switch resumes normal operation.
    pub fn end_purge(&self) {
        self.purging.set(false);
    }

    /// `true` while the purge command is raised.
    pub fn purging(&self) -> bool {
        self.purging.get()
    }

    /// Stages `tables` for installation; the switch swaps them in on the
    /// first tick it is completely empty. Overwrites any earlier pending
    /// swap that has not been picked up yet.
    pub fn install_tables(&self, tables: Rc<RouteTables>) {
        *self.pending_tables.borrow_mut() = Some(tables);
    }

    /// `true` while a staged table swap has not been picked up.
    pub fn tables_pending(&self) -> bool {
        self.pending_tables.borrow().is_some()
    }

    pub(crate) fn take_tables(&self) -> Option<Rc<RouteTables>> {
        self.pending_tables.borrow_mut().take()
    }

    /// `true` if the switch reported itself completely empty (no staged
    /// flits, no resident worms, all buffer space free) at the end of its
    /// most recent tick. `false` before the first tick.
    ///
    /// The quiesce orchestrator polls this after a purge to confirm the
    /// fabric has drained before activating new tables.
    pub fn is_empty(&self) -> bool {
        self.empty.get()
    }

    pub(crate) fn set_empty(&self, empty: bool) {
        self.empty.set(empty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purge_flag_toggles() {
        let ctl = SwitchCtl::new();
        assert!(!ctl.purging());
        ctl.begin_purge();
        assert!(ctl.purging());
        ctl.end_purge();
        assert!(!ctl.purging());
    }
}
