//! Reach-encoding seam between routing metadata and the header decode.
//!
//! The production decode ([`crate::decode`]) consumes dense `N`-bit
//! destination strings, but the static-analysis path increasingly carries
//! *compressed* destination sets (interval runs over the fat-tree host
//! space) that only materialize a dense string when a header must actually
//! be built. This trait is the boundary: any encoding that can state its
//! universe, emptiness, and an exact dense expansion can be fed to the
//! round-trip verifier without the caller committing to a representation.
//!
//! The contract is exactness, not efficiency: `to_dense` must produce the
//! same `DestSet` the encoding logically denotes, bit for bit, because the
//! decode cross-validation downstream compares branch headers against it.

use mintopo::route::{ReplicatePolicy, SwitchTable};
use netsim::destset::DestSet;

/// An exact, losslessly dense-expandable destination-set encoding.
pub trait ReachEncoding {
    /// Total number of addressable hosts (the bit-string length `N`).
    fn universe(&self) -> usize;

    /// `true` when the encoding denotes the empty set.
    fn is_empty(&self) -> bool;

    /// Exact dense expansion: the `N`-bit string this encoding denotes.
    fn to_dense(&self) -> DestSet;
}

impl ReachEncoding for DestSet {
    fn universe(&self) -> usize {
        DestSet::universe(self)
    }

    fn is_empty(&self) -> bool {
        DestSet::is_empty(self)
    }

    fn to_dense(&self) -> DestSet {
        self.clone()
    }
}

/// Round-trips an arbitrarily encoded destination set through the
/// production bit-string decode: expands `dests` to its dense form and
/// delegates to [`crate::verify_bitstring_roundtrip`].
///
/// # Errors
///
/// Propagates the verifier's description of the first decode
/// inconsistency (non-partitioning branch headers, duplicated or escaped
/// destinations).
pub fn verify_roundtrip_encoded<R: ReachEncoding>(
    table: &SwitchTable,
    dests: &R,
    policy: ReplicatePolicy,
) -> Result<Vec<(usize, DestSet)>, String> {
    crate::verify_bitstring_roundtrip(table, &dests.to_dense(), policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::route::RouteTables;
    use mintopo::topology::TopologyBuilder;
    use netsim::ids::{NodeId, SwitchId};

    #[test]
    fn dense_encoding_is_the_identity() {
        let s = DestSet::from_nodes(8, [1, 3, 4].map(NodeId));
        assert_eq!(ReachEncoding::universe(&s), 8);
        assert!(!ReachEncoding::is_empty(&s));
        assert_eq!(ReachEncoding::to_dense(&s), s);
    }

    #[test]
    fn encoded_roundtrip_matches_direct_call() {
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 3, s2, 0);
        b.connect(s1, 3, s2, 1);
        let tables = RouteTables::build(&b.build());
        let dests = DestSet::full(4);
        let table = tables.table(SwitchId(2));
        let direct = crate::verify_bitstring_roundtrip(table, &dests, ReplicatePolicy::ReturnOnly);
        let encoded = verify_roundtrip_encoded(table, &dests, ReplicatePolicy::ReturnOnly);
        assert_eq!(direct, encoded);
    }
}
