//! # switches — the paper's two multidestination-capable switch
//! architectures
//!
//! Implements the architectural alternatives of Stunkel, Sivaram & Panda
//! (ISCA '97) as [`netsim::engine::Component`]s:
//!
//! * [`central::CentralBufferSwitch`] — the SP2-style shared **central
//!   queue** organized in reference-counted chunks, with an unbuffered
//!   bypass crossbar for unicast and full-packet reservation for
//!   multidestination worms (paper §4);
//! * [`input_buffered::InputBufferedSwitch`] — per-input packet-deep FIFOs
//!   with asynchronous replication through per-branch read cursors (paper
//!   §5).
//!
//! Both decode unicast, bit-string and multiport headers through the shared
//! logic in `decode` (internal) and are parameterized by
//! [`config::SwitchConfig`]. Per-switch counters land in
//! [`stats::SwitchStats`]. The chunk-allocate / replicate / credit-return
//! step logic of both architectures is factored into pure
//! `step(state, event) -> (state, effect)` cores in [`semantics`], which
//! the `mdw-analysis` bounded model checker explores exhaustively and the
//! trace-conformance replay re-drives from recorded simulator events.
//!
//! Deadlock freedom rests on the paper's condition — *a packet accepted for
//! transmission can eventually be completely buffered* — enforced here by
//! construction: the central-buffer switch reserves a worm's full chunk
//! demand before absorbing it, and the input-buffer switch sizes each FIFO
//! to one maximum packet ([`config::SwitchConfig::validate`]).
#![deny(unreachable_pub, missing_debug_implementations)]

pub mod central;
pub mod config;
pub mod ctl;
mod decode;
pub mod input_buffered;
pub mod reachenc;
pub mod semantics;
pub mod stats;
mod testutil;

pub use central::CentralBufferSwitch;
pub use config::{ConfigError, ReplicationMode, SwitchConfig, UpSelect};
pub use ctl::SwitchCtl;
pub use decode::verify_bitstring_roundtrip;
pub use input_buffered::InputBufferedSwitch;
pub use reachenc::{verify_roundtrip_encoded, ReachEncoding};
pub use semantics::{CqEffect, CqEvent, CqState, IbHeadState, ReplState};
pub use stats::{BlockedWormSnap, SwitchSnapshot, SwitchStats};
