//! The input-buffer switch architecture (paper §5).
//!
//! Each input port owns a private FIFO at least one maximum-size packet
//! deep (the paper gives both architectures the same *total* storage, so
//! the central queue's capacity is split evenly across inputs). A worm at
//! the buffer head decodes its header and requests its output set; under
//! **asynchronous replication** each granted branch streams out
//! independently through per-branch read cursors while blocked branches
//! simply wait — no cross-branch dependence. Buffer space is recycled in
//! FIFO order as the *slowest* branch advances, and because the head packet
//! always fits completely in its buffer, an accepted packet can always be
//! fully buffered: the paper's deadlock-freedom condition.
//!
//! Compared to the central-buffer switch this design statically partitions
//! storage and suffers head-of-line blocking (only the head packet of each
//! input can move) — the structural disadvantages the paper's evaluation
//! quantifies. Branch read-out is modeled optimistically (all branches may
//! read the buffer in the same cycle); even so the architecture loses to
//! the shared central buffer, which strengthens that conclusion.

use crate::config::{ReplicationMode, SwitchConfig};
use crate::ctl::SwitchCtl;
use crate::decode::{resolve_branches, HeaderClock};
use crate::semantics::IbHeadState;
use crate::stats::{header_dests, BlockedWormSnap, SwitchSnapshot, SwitchStats};
use mintopo::route::RouteTables;
use netsim::engine::{Component, PortIo};
use netsim::flit::Flit;
use netsim::ids::SwitchId;
use netsim::packet::Packet;
use netsim::Cycle;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One packet resident in (or arriving into) an input buffer.
#[derive(Debug)]
struct IbPacket {
    pkt: Rc<Packet>,
    received: u16,
}

/// The decoded head packet: branch-rewritten descriptors side by side
/// with the pure progress core ([`IbHeadState`], shared with the bounded
/// model checker). `pkts[b]` is the packet branch `b` streams;
/// `sem.branches[b]` is its read cursor, grant, and done flag.
#[derive(Debug)]
struct IbHead {
    pkts: Vec<(usize, Rc<Packet>)>,
    sem: IbHeadState,
}

#[derive(Debug)]
struct IbInput {
    packets: VecDeque<IbPacket>,
    clock: HeaderClock,
    /// Branch state of the head packet once its route is decided.
    head: Option<IbHead>,
    became_head: Cycle,
    occupied: u32,
}

#[derive(Debug, Default)]
struct IbOutput {
    /// Input index whose branch currently owns this transmitter.
    owner: Option<usize>,
    /// Round-robin pointer for grant arbitration.
    rr: usize,
}

/// An input-buffer switch with multidestination-worm support.
pub struct InputBufferedSwitch {
    id: SwitchId,
    cfg: SwitchConfig,
    tables: Rc<RouteTables>,
    inputs: Vec<IbInput>,
    outputs: Vec<IbOutput>,
    stats: Rc<RefCell<SwitchStats>>,
    ctl: Option<Rc<SwitchCtl>>,
    /// Cycle of the last executed tick — the skip-invariance watermark.
    /// The compiled engine may skip ticks while the switch is quiescent;
    /// the gap since `last_tick` replays the occupancy samples those idle
    /// ticks would have taken (output round-robins only move on grants,
    /// so an idle tick mutates nothing else).
    last_tick: Cycle,
}

impl InputBufferedSwitch {
    /// Creates the switch. The host/neighbor links feeding each input must
    /// use a credit window equal to `cfg.input_buf_flits` — the credit loop
    /// *is* the input buffer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SwitchConfig::validate`] or its
    /// port count disagrees with the routing table.
    pub fn new(
        id: SwitchId,
        cfg: SwitchConfig,
        tables: Rc<RouteTables>,
        stats: Rc<RefCell<SwitchStats>>,
    ) -> Self {
        cfg.validate()
            .unwrap_or_else(|e| panic!("invalid switch config: {e}"));
        assert_eq!(
            tables.table(id).n_ports(),
            cfg.ports,
            "routing table port count mismatch for {id}"
        );
        InputBufferedSwitch {
            id,
            inputs: (0..cfg.ports)
                .map(|_| IbInput {
                    packets: VecDeque::new(),
                    clock: HeaderClock::default(),
                    head: None,
                    became_head: 0,
                    occupied: 0,
                })
                .collect(),
            outputs: (0..cfg.ports).map(|_| IbOutput::default()).collect(),
            cfg,
            tables,
            stats,
            ctl: None,
            last_tick: 0,
        }
    }

    /// Replays the per-cycle bookkeeping of `n` skipped idle ticks: each
    /// would have observed zero buffer occupancy (quiescence guarantees
    /// the buffers were empty throughout).
    fn replay_idle_cycles(&mut self, n: u64) {
        if n > 0 {
            self.stats.borrow_mut().ib_used_flits.observe_n(0, n);
        }
    }

    /// Switch identity.
    pub fn id(&self) -> SwitchId {
        self.id
    }

    /// Attaches the out-of-band control cell (see [`SwitchCtl`]) through
    /// which the fault-response orchestrator requests purges and stages
    /// routing-table swaps.
    pub fn set_ctl(&mut self, ctl: Rc<SwitchCtl>) {
        self.ctl = Some(ctl);
    }

    /// No buffered flits, no resident packets, no owned transmitters: safe
    /// to swap routing tables.
    fn empty_now(&self) -> bool {
        self.inputs
            .iter()
            .all(|inp| inp.packets.is_empty() && inp.occupied == 0 && inp.head.is_none())
            && self.outputs.iter().all(|o| o.owner.is_none())
    }

    /// Kills every resident worm: one credit is returned upstream per
    /// buffered flit (the credit loop *is* the input buffer, so this makes
    /// the upstream sender whole), transmitter ownership is dropped, and
    /// the at-most-one flit arriving this cycle is swallowed so in-flight
    /// link stragglers cannot land a body flit with no head packet.
    fn purge(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        let mut flits = 0u64;
        let mut worms = 0u64;
        for (i, input) in self.inputs.iter_mut().enumerate() {
            if io.recv(i).is_some() {
                io.return_credit(i);
                flits += 1;
            }
            for _ in 0..input.occupied {
                io.return_credit(i);
            }
            flits += u64::from(input.occupied);
            worms += input.packets.len() as u64;
            input.occupied = 0;
            input.packets.clear();
            input.head = None;
            input.became_head = now;
            input.clock = HeaderClock::default();
        }
        for out in self.outputs.iter_mut() {
            out.owner = None;
        }
        if flits + worms > 0 {
            let mut st = self.stats.borrow_mut();
            st.purged_flits += flits;
            st.purged_worms += worms;
        }
    }
}

impl Component for InputBufferedSwitch {
    #[allow(clippy::needless_range_loop)] // index loops enable split borrows across ports
    fn tick(&mut self, now: Cycle, io: &mut PortIo<'_>) {
        // Catch up cycles the compiled engine skipped while this switch
        // slept (always zero when ticked every cycle). A sleeping switch
        // is never purging, so the skipped ticks were plain idle ticks.
        self.replay_idle_cycles(now - self.last_tick - 1);
        self.last_tick = now;
        if let Some(ctl) = self.ctl.clone() {
            if ctl.purging() {
                self.purge(now, io);
                ctl.set_empty(true);
                self.stats.borrow_mut().ib_used_flits.observe(0);
                return;
            }
            if ctl.tables_pending() && self.empty_now() {
                let (_epoch, tables) = ctl.take_committed().expect("pending checked");
                assert_eq!(
                    tables.table(self.id).n_ports(),
                    self.cfg.ports,
                    "swapped routing table port count mismatch for {}",
                    self.id
                );
                self.tables = tables;
            }
        }
        let ports = self.cfg.ports;
        let InputBufferedSwitch {
            cfg,
            tables,
            inputs,
            outputs,
            stats,
            ctl,
            id,
            ..
        } = self;
        let table = tables.table(*id);

        // --- 1. Receive one flit per input.
        for (i, input) in inputs.iter_mut().enumerate() {
            if let Some(flit) = io.recv(i) {
                input.clock.on_arrival(&flit, now);
                input.occupied += 1;
                debug_assert!(
                    input.occupied <= cfg.input_buf_flits,
                    "input buffer overflow: credit window violated"
                );
                if flit.is_head() {
                    let pkt = flit.packet().clone();
                    assert!(
                        pkt.total_flits() <= cfg.max_packet_flits,
                        "packet {} exceeds the configured max packet size",
                        pkt.id()
                    );
                    if input.packets.is_empty() {
                        input.became_head = now;
                    }
                    input.packets.push_back(IbPacket { pkt, received: 1 });
                } else {
                    input
                        .packets
                        .back_mut()
                        .expect("body flit without head")
                        .received += 1;
                }
            }
        }

        // --- 2. Decode the head packet where the header has arrived.
        for i in 0..ports {
            let needs_decode = inputs[i].head.is_none() && !inputs[i].packets.is_empty();
            if !needs_decode {
                continue;
            }
            let pkt = inputs[i].packets.front().expect("head exists").pkt.clone();
            let ready = inputs[i]
                .clock
                .done_at(pkt.id())
                .is_some_and(|t| now >= t.max(inputs[i].became_head) + u64::from(cfg.route_delay));
            if !ready {
                continue;
            }
            let metrics: Vec<u64> = outputs
                .iter()
                .map(|o| if o.owner.is_some() { 2 } else { 0 })
                .collect();
            let branches = resolve_branches(&pkt, table, cfg.policy, cfg.up_select, |p| metrics[p]);
            let mut st = stats.borrow_mut();
            st.branches_created += branches.len() as u64;
            if branches.len() > 1 {
                st.packets_replicated += 1;
            }
            drop(st);
            let total = pkt.total_flits();
            inputs[i].head = Some(IbHead {
                sem: IbHeadState::new(total, branches.iter().map(|&(port, _)| port)),
                pkts: branches,
            });
        }

        // --- 3. Grant free transmitters round-robin among requesting inputs.
        for p in 0..ports {
            if outputs[p].owner.is_some() {
                continue;
            }
            let start = outputs[p].rr;
            for k in 0..ports {
                let i = (start + k) % ports;
                let request = inputs[i].head.as_ref().and_then(|h| {
                    h.sem
                        .branches
                        .iter()
                        .position(|b| b.port == p && !b.granted && !b.done)
                });
                if let Some(b) = request {
                    outputs[p].owner = Some(i);
                    outputs[p].rr = (i + 1) % ports;
                    inputs[i].head.as_mut().expect("checked").sem.grant(b);
                    break;
                }
            }
        }

        // --- 4. Transmit.
        match cfg.replication {
            // Asynchronous replication (the paper's choice): one flit per
            // owned output; branches advance independently.
            ReplicationMode::Asynchronous => {
                for p in 0..ports {
                    let Some(i) = outputs[p].owner else { continue };
                    let received = inputs[i].packets.front().expect("owner has head").received;
                    let head = inputs[i].head.as_mut().expect("owner has branches");
                    let b = head
                        .sem
                        .branches
                        .iter()
                        .position(|b| b.port == p && b.granted && !b.done)
                        .expect("owner has an active branch");
                    if io.can_send(p) && head.sem.branches[b].read < received {
                        let read = head.sem.branches[b].read;
                        io.send(p, Flit::new(head.pkts[b].1.clone(), read));
                        stats.borrow_mut().flits_sent += 1;
                        if head.sem.read_flit(b) {
                            outputs[p].owner = None;
                        }
                    }
                }
            }
            // Synchronous replication (the rejected alternative): a worm
            // moves only once *every* branch holds its output, and flits
            // advance in lock-step across all branches. Partially granted
            // worms hold their outputs while waiting — the hold-and-wait
            // that deadlocks without an extra avoidance protocol [6].
            ReplicationMode::Synchronous => {
                for input in inputs.iter_mut() {
                    let Some(head) = &mut input.head else {
                        continue;
                    };
                    if head.sem.branches.iter().any(|b| !b.granted || b.done) {
                        continue;
                    }
                    let received = input.packets.front().expect("head exists").received;
                    let read = head.sem.branches[0].read;
                    let can =
                        read < received && head.sem.branches.iter().all(|b| io.can_send(b.port));
                    if can {
                        for (port, pkt) in &head.pkts {
                            io.send(*port, Flit::new(pkt.clone(), read));
                        }
                        for port in head.sem.read_lockstep() {
                            outputs[port].owner = None;
                        }
                        stats.borrow_mut().flits_sent += head.pkts.len() as u64;
                    }
                }
            }
        }

        // --- 5. Recycle buffer space as the slowest branch advances;
        //        retire fully drained head packets.
        let mut occupancy_sum = 0u64;
        for (i, input) in inputs.iter_mut().enumerate() {
            if let Some(head) = &mut input.head {
                let newly = head.sem.recycle();
                for _ in 0..newly {
                    io.return_credit(i);
                }
                input.occupied -= u32::from(newly);
                if head.sem.all_done() {
                    let retired = input.packets.pop_front().expect("head exists");
                    input.clock.forget(retired.pkt.id());
                    input.head = None;
                    input.became_head = now;
                }
            }
            occupancy_sum += u64::from(input.occupied);
        }

        if stats.borrow().forensics_requested {
            let mut blocked = Vec::new();
            for (i, input) in inputs.iter().enumerate() {
                let mut queued = input.packets.iter();
                let Some(head) = queued.next() else { continue };
                let snap_worm =
                    |pkt: &Rc<Packet>,
                     state: &'static str,
                     holds: Vec<usize>,
                     waits: Vec<usize>| BlockedWormSnap {
                        input: Some(i),
                        packet: pkt.id().0,
                        msg: pkt.msg().0,
                        src: pkt.src().0,
                        state,
                        remaining_dests: header_dests(pkt),
                        holds_outputs: holds,
                        waits_outputs: waits,
                    };
                match &input.head {
                    None => {
                        blocked.push(snap_worm(&head.pkt, "await-decode", Vec::new(), Vec::new()))
                    }
                    Some(h) => {
                        let holds: Vec<usize> = h
                            .sem
                            .branches
                            .iter()
                            .filter(|b| b.granted && !b.done)
                            .map(|b| b.port)
                            .collect();
                        // A branch waits if it has no grant yet, or holds
                        // its transmitter but the downstream link has no
                        // credit. Under synchronous replication any
                        // ungranted branch stalls the granted ones too.
                        let waits: Vec<usize> = h
                            .sem
                            .branches
                            .iter()
                            .filter(|b| !b.done && (!b.granted || !io.can_send(b.port)))
                            .map(|b| b.port)
                            .collect();
                        if !waits.is_empty() {
                            blocked.push(snap_worm(&head.pkt, "head-blocked", holds, waits));
                        }
                    }
                }
                // Packets behind the head: head-of-line blocked.
                for q in queued {
                    blocked.push(snap_worm(&q.pkt, "hol-queued", Vec::new(), Vec::new()));
                }
            }
            let mut st = stats.borrow_mut();
            st.forensics_requested = false;
            st.forensics = Some(SwitchSnapshot {
                cq_used_chunks: 0,
                cq_free_chunks: 0,
                input_occupancy: inputs.iter().map(|i| i.occupied).collect(),
                blocked,
            });
        }

        stats.borrow_mut().ib_used_flits.observe(occupancy_sum);

        if let Some(ctl) = ctl {
            let empty = inputs
                .iter()
                .all(|inp| inp.packets.is_empty() && inp.occupied == 0 && inp.head.is_none())
                && outputs.iter().all(|o| o.owner.is_none());
            ctl.set_empty(empty);
        }
    }

    /// An empty switch with no control-plane work pending does nothing
    /// per tick beyond the occupancy sample `replay_idle_cycles` replays —
    /// safe for the compiled engine to skip until traffic or a wake
    /// arrives. Purging and pending table swaps keep it awake because
    /// those act on every tick.
    fn quiescent(&self) -> bool {
        self.empty_now()
            && self
                .ctl
                .as_ref()
                .is_none_or(|c| !c.purging() && !c.tables_pending())
    }

    /// End-of-run catch-up for skipped idle ticks (see [`Component::flush`]).
    fn flush(&mut self, now: Cycle) {
        self.replay_idle_cycles(now - self.last_tick);
        self.last_tick = now;
    }

    /// Reports the two-phase install state off the control cell so the
    /// engine's torn-install audit can compare epochs across the fabric.
    fn epoch_status(&self) -> Option<netsim::engine::EpochStatus> {
        self.ctl.as_ref().map(|c| netsim::engine::EpochStatus {
            committed: c.committed_epoch(),
            pending: c.pending_commit(),
        })
    }
}

impl std::fmt::Debug for InputBufferedSwitch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "InputBufferedSwitch({}, {} ports, {} flits/input)",
            self.id, self.cfg.ports, self.cfg.input_buf_flits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{single_switch_world, sink_flits, TestWorld};
    use netsim::destset::DestSet;
    use netsim::ids::{NodeId, PacketId};
    use netsim::packet::PacketBuilder;

    fn world(cfg: SwitchConfig) -> TestWorld {
        let credits = cfg.input_buf_flits;
        single_switch_world(4, cfg, credits, |id, cfg, tables, stats| {
            Box::new(InputBufferedSwitch::new(id, cfg, tables, stats))
        })
    }

    fn cfg4() -> SwitchConfig {
        SwitchConfig {
            ports: 4,
            ..SwitchConfig::default()
        }
    }

    #[test]
    fn unicast_delivery() {
        let mut w = world(cfg4());
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(2), 16, 4).build();
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2), 18);
        assert_eq!(sink_flits(&w, 3), 0);
    }

    #[test]
    fn multicast_replicates_to_all_destinations() {
        let mut w = world(cfg4());
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 32).build();
        let total = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(200);
        for h in 1..4 {
            assert_eq!(sink_flits(&w, h), total, "host {h}");
        }
        assert_eq!(sink_flits(&w, 0), 0);
        let st = w.stats.borrow();
        assert_eq!(st.packets_replicated, 1);
        assert_eq!(st.branches_created, 3);
    }

    #[test]
    fn two_unicasts_to_same_output_serialize() {
        let mut w = world(cfg4());
        let a = PacketBuilder::unicast(NodeId(0), NodeId(3), 24, 4)
            .id(PacketId(1))
            .build();
        let b = PacketBuilder::unicast(NodeId(1), NodeId(3), 24, 4)
            .id(PacketId(2))
            .build();
        let per = a.total_flits() as usize;
        w.inject(0, a);
        w.inject(1, b);
        w.engine.run_for(300);
        assert_eq!(sink_flits(&w, 3), 2 * per);
    }

    #[test]
    fn head_of_line_blocking_delays_second_packet() {
        // Input 0 queues p1 -> host2 then p2 -> host3. Even though host3 is
        // idle, p2 cannot start until p1 fully drains: HOL blocking.
        let mut w = world(cfg4());
        let p1 = PacketBuilder::unicast(NodeId(0), NodeId(2), 40, 4)
            .id(PacketId(1))
            .build();
        let p2 = PacketBuilder::unicast(NodeId(0), NodeId(3), 4, 4)
            .id(PacketId(2))
            .build();
        w.inject(0, p1);
        w.inject(0, p2);
        // After 30 cycles p1 (42 flits) is still draining, so host3 has
        // nothing yet.
        w.engine.run_for(30);
        assert_eq!(sink_flits(&w, 3), 0, "HOL blocking holds p2 back");
        w.engine.run_for(200);
        assert_eq!(sink_flits(&w, 3), 6);
    }

    #[test]
    fn buffer_occupancy_recycles_fully() {
        let mut w = world(cfg4());
        let dests = DestSet::from_nodes(4, [1, 2].map(NodeId));
        w.inject(3, PacketBuilder::multicast(NodeId(3), dests, 50).build());
        w.engine.run_for(300);
        // After everything drained the occupancy gauge must have returned
        // to zero; its mean is therefore below its max.
        let st = w.stats.borrow();
        assert!(st.ib_used_flits.max() > 0);
        assert_eq!(sink_flits(&w, 1), sink_flits(&w, 2));
    }

    #[test]
    fn synchronous_replication_works_uncontended() {
        let mut w = world(SwitchConfig {
            ports: 4,
            replication: ReplicationMode::Synchronous,
            ..SwitchConfig::default()
        });
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 32).build();
        let total = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(200);
        for h in 1..4 {
            assert_eq!(sink_flits(&w, h), total, "host {h}");
        }
    }

    #[test]
    fn synchronous_replication_deadlocks_on_crossed_grants() {
        // The paper's §3 argument for asynchronous replication, staged
        // deterministically: a warm-up unicast rotates output 3's grant
        // pointer past input 0, so when two overlapping multicasts decode
        // together, m1 (input 0) wins output 2 while m2 (input 2) wins
        // output 3. Under lock-step replication each holds what the other
        // needs: classic hold-and-wait, forever.
        let run_mode = |mode: ReplicationMode| -> (usize, usize) {
            let mut w = world(SwitchConfig {
                ports: 4,
                replication: mode,
                ..SwitchConfig::default()
            });
            // Warm-up: input 1 -> output 3 (advances out3.rr to 2).
            w.inject(
                1,
                PacketBuilder::unicast(NodeId(1), NodeId(3), 8, 4)
                    .id(PacketId(1))
                    .build(),
            );
            w.engine.run_for(40);
            let d = DestSet::from_nodes(4, [2, 3].map(NodeId));
            w.inject(
                0,
                PacketBuilder::multicast(NodeId(0), d.clone(), 32)
                    .id(PacketId(2))
                    .build(),
            );
            w.inject(
                2,
                PacketBuilder::multicast(NodeId(2), d, 32)
                    .id(PacketId(3))
                    .build(),
            );
            w.engine.run_for(2_000);
            (sink_flits(&w, 2), sink_flits(&w, 3))
        };
        let (h2_async, h3_async) = run_mode(ReplicationMode::Asynchronous);
        // Asynchronous: both 34-flit multicasts complete; host 3 also got
        // the 10-flit warm-up unicast.
        assert_eq!(h2_async, 2 * 34, "async host2");
        assert_eq!(h3_async, 2 * 34 + 10, "async host3");
        let (h2_sync, h3_sync) = run_mode(ReplicationMode::Synchronous);
        // Synchronous: neither multicast delivers a single flit.
        assert_eq!(h2_sync, 0, "sync multicasts must be deadlocked");
        assert_eq!(h3_sync, 10, "only the warm-up unicast got through");
    }

    #[test]
    #[should_panic(expected = "exceeds the configured max packet")]
    fn oversized_packet_is_rejected() {
        let mut w = world(cfg4());
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(1), 200, 4).build();
        w.inject(0, pkt);
        w.engine.run_for(50);
    }

    fn ctl_world(cfg: SwitchConfig) -> (Rc<SwitchCtl>, TestWorld) {
        let credits = cfg.input_buf_flits;
        let ctl = SwitchCtl::new();
        let c = ctl.clone();
        let w = single_switch_world(4, cfg, credits, move |id, cfg, tables, stats| {
            let mut sw = InputBufferedSwitch::new(id, cfg, tables, stats);
            sw.set_ctl(c);
            Box::new(sw)
        });
        (ctl, w)
    }

    #[test]
    fn purge_kills_resident_worm_and_restores_credits() {
        let (ctl, mut w) = ctl_world(cfg4());
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        let pkt = PacketBuilder::multicast(NodeId(0), dests, 40).build();
        let total = pkt.total_flits() as u64;
        w.inject(0, pkt);
        // Purge mid-replication; the source streams the rest into the
        // swallow (one credit back per straggler keeps it draining).
        w.engine.run_for(10);
        ctl.begin_purge();
        w.engine.run_for(total + 20);
        ctl.end_purge();
        assert!(ctl.is_empty(), "purged switch reports empty");
        {
            let st = w.stats.borrow();
            assert!(st.purged_flits > 0, "buffered/straggler flits were killed");
            assert!(st.purged_worms >= 1, "the resident worm was killed");
        }
        // Fresh traffic proves the credit loop (= the input buffer) is whole.
        let before = sink_flits(&w, 3);
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(3), 16, 4)
            .id(PacketId(50))
            .build();
        let t = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 3) - before, t, "post-purge delivery");
    }

    #[test]
    fn pending_table_swap_waits_for_empty_then_reroutes() {
        use mintopo::reach::{PortClass, PortInfo};
        use mintopo::route::{RouteTables, SwitchTable};
        let (ctl, mut w) = ctl_world(cfg4());
        let dests = DestSet::from_nodes(4, [1, 2, 3].map(NodeId));
        w.inject(0, PacketBuilder::multicast(NodeId(0), dests, 40).build());
        w.engine.run_for(10);
        let down = |n: u32| PortInfo {
            class: PortClass::Down,
            reach: DestSet::singleton(4, NodeId(n)),
        };
        let swapped = RouteTables::from_tables(
            vec![SwitchTable::from_ports(
                vec![down(0), down(2), down(1), down(3)],
                4,
            )],
            4,
        );
        ctl.install_tables(Rc::new(swapped));
        w.engine.run_for(3);
        assert!(ctl.tables_pending(), "switch is busy; swap must wait");
        w.engine.run_for(400);
        assert!(!ctl.tables_pending(), "swap applied once empty");
        let before = sink_flits(&w, 2);
        let pkt = PacketBuilder::unicast(NodeId(0), NodeId(1), 8, 4)
            .id(PacketId(9))
            .build();
        let t = pkt.total_flits() as usize;
        w.inject(0, pkt);
        w.engine.run_for(100);
        assert_eq!(sink_flits(&w, 2) - before, t, "rerouted by the new table");
    }

    #[test]
    fn concurrent_multicasts_from_all_inputs() {
        let mut w = world(cfg4());
        let mut totals = [0usize; 4];
        for src in 0..4u32 {
            let mut dests = DestSet::full(4);
            dests.remove(NodeId(src));
            let pkt = PacketBuilder::multicast(NodeId(src), dests, 16)
                .id(PacketId(100 + u64::from(src)))
                .build();
            for (h, total) in totals.iter_mut().enumerate() {
                if h != src as usize {
                    *total += pkt.total_flits() as usize;
                }
            }
            w.inject(src as usize, pkt);
        }
        w.engine.run_for(600);
        for (h, total) in totals.iter().enumerate() {
            assert_eq!(sink_flits(&w, h), *total, "host {h}");
        }
    }
}
