//! Switch configuration shared by both architectures.

use mintopo::route::ReplicatePolicy;

/// A configuration constraint violation, with a human-readable description
/// of the offending parameter and the rule it breaks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ConfigError {}

macro_rules! ensure {
    ($cond:expr, $($msg:tt)+) => {
        if !$cond {
            return Err(ConfigError(format!($($msg)+)));
        }
    };
}

/// How worm branches advance relative to each other (paper §3).
///
/// The paper argues for **asynchronous** replication: a branch that has
/// acquired its output port streams independently; blocked branches don't
/// stall granted ones. **Synchronous** replication — flits advance on all
/// branches in lock-step — is the rejected alternative: it needs feedback
/// circuitry and, worse, partial grants create grant-wait cycles between
/// worms that deadlock without an extra avoidance protocol (Chiang & Ni
/// \[6\]). The input-buffer switch implements both so the difference is
/// measurable (ablation E13); the central-buffer switch is inherently
/// asynchronous (branches are independent readers of shared chunks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicationMode {
    /// Independent branch progress (the paper's choice).
    #[default]
    Asynchronous,
    /// Lock-step branch progress; a worm transmits only once every branch
    /// has been granted, and only when every output can accept a flit.
    Synchronous,
}

/// How a switch picks among candidate up ports (paper §3: "one can decide to
/// deterministically route messages to the LCA stage or to make the choice
/// adaptively").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpSelect {
    /// Stateless hash of the flow (destination / packet id): each flow stays
    /// on one path.
    Deterministic,
    /// Pick the candidate with the least local congestion (shortest output
    /// queue / free transmitter), ties broken by flow hash.
    #[default]
    Adaptive,
}

/// Parameters of one switch (defaults follow the SP2-class switch the paper
/// bases its central-buffer architecture on; see DESIGN.md §5).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Number of ports (input/output pairs). SP2: 8.
    pub ports: usize,
    /// Cycles from "last header flit received" to the routing decision.
    pub route_delay: u32,
    /// Receiver staging FIFO per input port, in flits (= the link credit
    /// window for central-buffer switches).
    pub staging_flits: u32,
    /// Central-buffer chunk size in flits. SP2: 8.
    pub chunk_flits: u16,
    /// Central-queue capacity in chunks. SP2-class: 128 (1 KB of byte-wide
    /// flits).
    pub cq_chunks: usize,
    /// Input-buffer capacity per input port in flits (input-buffered
    /// architecture). The paper gives both architectures the same total
    /// storage: `cq_chunks * chunk_flits / ports`.
    pub input_buf_flits: u32,
    /// Maximum packet size (header + payload) in flits. Deadlock freedom
    /// requires every packet to be completely bufferable: this must not
    /// exceed the central queue, nor one input buffer.
    pub max_packet_flits: u16,
    /// Enables the unbuffered crossover path for unicast worms whose output
    /// is idle (SP2 behavior).
    pub bypass_crossbar: bool,
    /// Up-port selection discipline.
    pub up_select: UpSelect,
    /// When multidestination worms may begin replicating.
    pub policy: ReplicatePolicy,
    /// Branch progress discipline (input-buffer architecture only).
    pub replication: ReplicationMode,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            ports: 8,
            route_delay: 2,
            staging_flits: 16,
            chunk_flits: 8,
            cq_chunks: 128,
            input_buf_flits: 128,
            max_packet_flits: 128,
            bypass_crossbar: true,
            up_select: UpSelect::Adaptive,
            policy: ReplicatePolicy::ReturnOnly,
            replication: ReplicationMode::Asynchronous,
        }
    }
}

impl SwitchConfig {
    /// Central-queue capacity in flits.
    pub fn cq_flits(&self) -> u32 {
        self.cq_chunks as u32 * self.chunk_flits as u32
    }

    /// Chunks needed to hold a packet of `flits` flits.
    pub fn chunks_for(&self, flits: u16) -> usize {
        (flits as usize).div_ceil(self.chunk_flits as usize)
    }

    /// Central-queue chunks reserved for *descending* packets (those that
    /// arrived from a parent switch and therefore drain toward hosts).
    ///
    /// A shared central queue is a per-switch — not per-link — resource, so
    /// the up*/down* acyclicity argument alone does not rule out
    /// store-and-forward deadlock: ascending packets at one stage can fill
    /// the queue while waiting for the stage above, whose queue is full of
    /// descending packets waiting for the stage below. Reserving one
    /// maximum packet's worth of chunks that ascending traffic may never
    /// consume restores liveness: descending packets always eventually
    /// buffer and drain toward the hosts (induction down the stages), hence
    /// every queue keeps freeing space and ascending traffic eventually
    /// advances (induction up the stages).
    pub fn cq_down_reserve(&self) -> usize {
        self.chunks_for(self.max_packet_flits)
    }

    /// Checks the deadlock-freedom sizing rules (a packet must fit in the
    /// central queue and in one input buffer) and basic sanity bounds,
    /// returning a descriptive [`ConfigError`] on the first violation.
    pub fn validate(&self) -> Result<(), ConfigError> {
        ensure!(
            self.ports >= 2 && self.ports <= 16,
            "ports must be 2..=16, got {}",
            self.ports
        );
        ensure!(self.chunk_flits >= 1, "chunks must hold at least one flit");
        ensure!(self.cq_chunks >= 1, "central queue needs capacity");
        ensure!(
            self.max_packet_flits >= 2,
            "packets have at least a header; max_packet_flits {} is too small",
            self.max_packet_flits
        );
        ensure!(
            u32::from(self.max_packet_flits) <= self.cq_flits(),
            "max packet ({} flits) exceeds central queue ({} flits): \
             deadlock-freedom guarantee impossible",
            self.max_packet_flits,
            self.cq_flits()
        );
        ensure!(
            self.cq_chunks >= 2 * self.cq_down_reserve(),
            "central queue ({} chunks) must hold at least two max packets \
             ({} chunks each): one is reserved for descending traffic",
            self.cq_chunks,
            self.cq_down_reserve()
        );
        ensure!(
            u32::from(self.max_packet_flits) <= self.input_buf_flits,
            "max packet ({} flits) exceeds input buffer ({} flits): \
             deadlock-freedom guarantee impossible",
            self.max_packet_flits,
            self.input_buf_flits
        );
        ensure!(
            self.staging_flits >= 4,
            "staging of {} flits cannot cover decode latency (need >= 4)",
            self.staging_flits
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_sp2_sized() {
        let c = SwitchConfig::default();
        c.validate().expect("defaults are valid");
        assert_eq!(c.cq_flits(), 1024);
        assert_eq!(c.input_buf_flits, 128, "same total storage split 8 ways");
    }

    #[test]
    fn chunks_for_rounds_up() {
        let c = SwitchConfig::default();
        assert_eq!(c.chunks_for(1), 1);
        assert_eq!(c.chunks_for(8), 1);
        assert_eq!(c.chunks_for(9), 2);
        assert_eq!(c.chunks_for(128), 16);
    }

    #[test]
    fn oversized_packet_rejected() {
        let c = SwitchConfig {
            max_packet_flits: 2048,
            input_buf_flits: 4096,
            ..SwitchConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("exceeds central queue"), "{err}");
    }

    #[test]
    fn oversized_for_input_buffer_rejected() {
        let c = SwitchConfig {
            input_buf_flits: 64,
            ..SwitchConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("exceeds input buffer"), "{err}");
    }

    #[test]
    fn error_messages_name_the_offending_value() {
        let c = SwitchConfig {
            ports: 1,
            ..SwitchConfig::default()
        };
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("got 1"), "{err}");
    }
}
