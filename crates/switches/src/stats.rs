//! Per-switch statistics, shared with the experiment harness.

use netsim::stats::OccupancyStats;

/// Counters and gauges one switch exposes.
///
/// The harness holds a clone of the `Rc<RefCell<SwitchStats>>` given to each
/// switch at construction and reads it after the run.
#[derive(Debug, Default)]
pub struct SwitchStats {
    /// Central-queue occupancy in chunks, observed once per cycle
    /// (central-buffer architecture only).
    pub cq_used_chunks: OccupancyStats,
    /// Input-buffer occupancy in flits summed over inputs, observed once
    /// per cycle (input-buffer architecture only).
    pub ib_used_flits: OccupancyStats,
    /// Flits sent out of this switch.
    pub flits_sent: u64,
    /// Flits that used the unbuffered bypass crossbar.
    pub bypass_flits: u64,
    /// Packets that fanned out to more than one output here.
    pub packets_replicated: u64,
    /// Total output branches created (1 per unicast, fan-out for worms).
    pub branches_created: u64,
    /// Cycles some packet spent waiting for a central-queue reservation.
    pub reservation_wait_cycles: u64,
    /// Free central-queue chunks at the end of the last cycle (probe for
    /// leak tests; central-buffer architecture only).
    pub cq_free_now: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.flits_sent, 0);
        assert_eq!(s.cq_used_chunks.samples(), 0);
    }
}
