//! Per-switch statistics, shared with the experiment harness.

use netsim::stats::OccupancyStats;

/// One worm that could not make progress when a forensics snapshot was
/// taken, with the output resources it holds and the ones it waits for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedWormSnap {
    /// Input port the worm occupies (or arrived through); `None` for worms
    /// resident only in the central queue.
    pub input: Option<usize>,
    /// Raw packet id.
    pub packet: u64,
    /// Raw message id.
    pub msg: u64,
    /// Source node index.
    pub src: u32,
    /// FSM state label (architecture-specific).
    pub state: &'static str,
    /// Destination node indices still encoded in the (possibly rewritten)
    /// header.
    pub remaining_dests: Vec<u32>,
    /// Output ports this worm has acquired and not released.
    pub holds_outputs: Vec<usize>,
    /// Output ports this worm needs but cannot currently use.
    pub waits_outputs: Vec<usize>,
}

/// Destination node indices a packet's header still encodes. Multiport
/// masks are positional (the fan-out is not locally decidable), so they
/// report an empty list.
pub fn header_dests(pkt: &netsim::packet::Packet) -> Vec<u32> {
    use netsim::header::RoutingHeader;
    match pkt.header() {
        RoutingHeader::Unicast { dest } => vec![dest.0],
        RoutingHeader::BitString { dests } => dests.iter().map(|n| n.0).collect(),
        RoutingHeader::Multiport { .. } | RoutingHeader::BarrierGather { .. } => Vec::new(),
    }
}

/// State of one switch at the moment the deadlock watchdog fired.
///
/// Produced on demand: the harness sets [`SwitchStats::forensics_requested`]
/// and runs one more cycle; the switch fills [`SwitchStats::forensics`] at
/// the end of its tick (when nothing can move, one extra cycle changes no
/// state).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SwitchSnapshot {
    /// Central-queue chunks holding data (central-buffer only).
    pub cq_used_chunks: usize,
    /// Central-queue chunks free (central-buffer only).
    pub cq_free_chunks: usize,
    /// Buffered flits per input port (staging FIFO or input buffer).
    pub input_occupancy: Vec<u32>,
    /// Every worm that was unable to advance this cycle.
    pub blocked: Vec<BlockedWormSnap>,
}

/// Counters and gauges one switch exposes.
///
/// The harness holds a clone of the `Rc<RefCell<SwitchStats>>` given to each
/// switch at construction and reads it after the run.
#[derive(Debug, Default)]
pub struct SwitchStats {
    /// Central-queue occupancy in chunks, observed once per cycle
    /// (central-buffer architecture only).
    pub cq_used_chunks: OccupancyStats,
    /// Input-buffer occupancy in flits summed over inputs, observed once
    /// per cycle (input-buffer architecture only).
    pub ib_used_flits: OccupancyStats,
    /// Flits sent out of this switch.
    pub flits_sent: u64,
    /// Flits that used the unbuffered bypass crossbar.
    pub bypass_flits: u64,
    /// Packets that fanned out to more than one output here.
    pub packets_replicated: u64,
    /// Total output branches created (1 per unicast, fan-out for worms).
    pub branches_created: u64,
    /// Cycles some packet spent waiting for a central-queue reservation.
    pub reservation_wait_cycles: u64,
    /// Flits destroyed by a quiesce purge (their credits were returned
    /// upstream, so link-level conservation holds; the payload is the
    /// retransmission ledger's problem).
    pub purged_flits: u64,
    /// Resident worms and queued branches killed by a quiesce purge.
    pub purged_worms: u64,
    /// Free central-queue chunks at the end of the last cycle (probe for
    /// leak tests; central-buffer architecture only).
    pub cq_free_now: usize,
    /// Set by the harness to request a [`SwitchSnapshot`] at the end of the
    /// switch's next tick.
    pub forensics_requested: bool,
    /// The snapshot the switch produced in response.
    pub forensics: Option<SwitchSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SwitchStats::default();
        assert_eq!(s.flits_sent, 0);
        assert_eq!(s.cq_used_chunks.samples(), 0);
    }
}
