//! Header decode shared by both switch architectures.
//!
//! Turning an arriving worm's header into a set of `(output port,
//! branch-rewritten packet)` pairs is identical for the central-buffer and
//! input-buffer switches — only *where* the replicated flits are buffered
//! differs. This module implements that decode for all three encodings,
//! plus the small clock that models header-serialization latency (the
//! decision is available `route_delay` cycles after the last header flit
//! arrives).

use crate::config::UpSelect;
use mintopo::route::{pick_deterministic, ReplicatePolicy, SwitchTable, UnicastRoute};
use netsim::flit::Flit;
use netsim::header::RoutingHeader;
use netsim::ids::PacketId;
use netsim::packet::Packet;
use netsim::Cycle;
use std::collections::HashMap;
use std::rc::Rc;

/// Records when each packet's final header flit arrived at this input.
#[derive(Debug, Default)]
pub(crate) struct HeaderClock {
    done: HashMap<PacketId, Cycle>,
}

impl HeaderClock {
    /// Notes a flit arrival; remembers the cycle the header completed.
    pub(crate) fn on_arrival(&mut self, flit: &Flit, now: Cycle) {
        if flit.idx() + 1 == flit.packet().header_flits() {
            self.done.insert(flit.packet().id(), now);
        }
    }

    /// Cycle at which the packet's header finished arriving, if known.
    pub(crate) fn done_at(&self, id: PacketId) -> Option<Cycle> {
        self.done.get(&id).copied()
    }

    /// Drops bookkeeping for a finished packet.
    pub(crate) fn forget(&mut self, id: PacketId) {
        self.done.remove(&id);
    }
}

/// Resolves the output branches of a packet at a switch.
///
/// `metric(port)` supplies the adaptive congestion estimate (lower is
/// better) used to pick among up-port candidates when `up_select` is
/// [`UpSelect::Adaptive`]; ties and the deterministic mode fall back to a
/// stateless flow hash so a given flow keeps one path.
///
/// Returns `(port, packet-for-that-branch)` pairs. Bit-string branches get
/// their headers restricted by the port's reachability string (the header
/// rewrite of paper §4); multiport branches get the residual mask list.
///
/// # Panics
///
/// Panics if a multiport worm has run out of masks (malformed plan), or the
/// routing tables cannot cover a destination (disconnected topology).
pub(crate) fn resolve_branches(
    pkt: &Rc<Packet>,
    table: &SwitchTable,
    policy: ReplicatePolicy,
    up_select: UpSelect,
    metric: impl Fn(usize) -> u64,
) -> Vec<(usize, Rc<Packet>)> {
    let salt = pkt.id().0;
    let pick = |cands: &[usize]| -> usize {
        match up_select {
            UpSelect::Deterministic => pick_deterministic(cands, salt),
            UpSelect::Adaptive => {
                let best = cands.iter().map(|&p| metric(p)).min().expect("candidates");
                let tied: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&p| metric(p) == best)
                    .collect();
                pick_deterministic(&tied, salt)
            }
        }
    };
    match pkt.header() {
        RoutingHeader::Unicast { dest } => match table.route_unicast(*dest) {
            UnicastRoute::Down(p) => vec![(p, pkt.clone())],
            UnicastRoute::Up(cands) => vec![(pick(&cands), pkt.clone())],
        },
        RoutingHeader::BitString { dests } => {
            let route = table.route_bitstring(dests, policy);
            let mut out: Vec<(usize, Rc<Packet>)> = route
                .down
                .iter()
                .map(|(p, set)| {
                    (
                        *p,
                        Rc::new(pkt.with_header(RoutingHeader::BitString { dests: set.clone() })),
                    )
                })
                .collect();
            if let Some((cands, set)) = route.up {
                let p = pick(&cands);
                out.push((
                    p,
                    Rc::new(pkt.with_header(RoutingHeader::BitString { dests: set })),
                ));
            }
            out
        }
        RoutingHeader::Multiport { .. } => {
            let (mask, rest) = pkt
                .header()
                .advance_multiport()
                .expect("multiport worm ran out of masks");
            let residual = Rc::new(pkt.with_header(rest));
            mask.iter().map(|p| (p, residual.clone())).collect()
        }
        RoutingHeader::BarrierGather { .. } => {
            unreachable!("barrier gathers are combined at the switch, never routed")
        }
    }
}

/// Statically round-trips one reachability bit-string through this
/// switch's *actual* decode path and checks the branch headers it
/// produces are consistent with the routing tables.
///
/// `mintopo::reach` produces the per-port reachability strings and
/// `switches` consumes them through [`resolve_branches`]; the two crates
/// agree only by convention. This lint makes the convention checkable: a
/// synthetic bit-string worm carrying `dests` is decoded at `table`, and
/// every resulting branch must (a) still be a bit-string header, (b) land
/// on a port the tables classify as usable, (c) stay within a down port's
/// reachability string, and (d) partition `dests` exactly — every
/// destination on exactly one branch.
///
/// Returns the `(port, residual set)` branches on success, or a
/// description of the first inconsistency.
///
/// # Errors
///
/// Returns `Err` when the decoded branches violate any of the conditions
/// above — i.e. when the reach strings and the decode logic disagree.
pub fn verify_bitstring_roundtrip(
    table: &SwitchTable,
    dests: &netsim::destset::DestSet,
    policy: ReplicatePolicy,
) -> Result<Vec<(usize, netsim::destset::DestSet)>, String> {
    use mintopo::reach::PortClass;
    use netsim::destset::DestSet;
    use netsim::packet::PacketBuilder;

    if dests.is_empty() {
        return Err("empty destination set".to_string());
    }
    let src = netsim::ids::NodeId(0);
    let pkt = Rc::new(PacketBuilder::multicast(src, dests.clone(), 4).build());
    let branches = resolve_branches(&pkt, table, policy, UpSelect::Deterministic, |_| 0);
    if branches.is_empty() {
        return Err(format!("decode produced no branches for {dests:?}"));
    }
    let mut covered = DestSet::empty(dests.universe());
    let mut out = Vec::with_capacity(branches.len());
    for (port, bp) in &branches {
        let set = match bp.header() {
            RoutingHeader::BitString { dests } => dests.clone(),
            other => {
                return Err(format!(
                    "branch on port {port} decoded to non-bit-string header {other:?}"
                ))
            }
        };
        if set.is_empty() {
            return Err(format!("branch on port {port} carries an empty set"));
        }
        let info = table.port(*port);
        match info.class {
            PortClass::Down => {
                if !set.is_subset_of(&info.reach) {
                    return Err(format!(
                        "branch on down port {port} carries {set:?} outside its \
                         reachability string {:?}",
                        info.reach
                    ));
                }
            }
            PortClass::Up => {
                if !set.is_subset_of(dests) {
                    return Err(format!(
                        "up branch on port {port} carries {set:?} not within the \
                         original set {dests:?}"
                    ));
                }
            }
            PortClass::Unused => {
                return Err(format!("branch routed onto unused port {port}"));
            }
        }
        if covered.intersects(&set) {
            return Err(format!(
                "branch on port {port} duplicates destinations already covered \
                 ({:?} ∩ {set:?})",
                covered
            ));
        }
        covered.union_with(&set);
        out.push((*port, set));
    }
    if &covered != dests {
        return Err(format!(
            "branches cover {covered:?} but the worm carried {dests:?}"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mintopo::route::RouteTables;
    use mintopo::topology::TopologyBuilder;
    use netsim::destset::DestSet;
    use netsim::header::PortMask;
    use netsim::ids::{NodeId, SwitchId};
    use netsim::packet::PacketBuilder;

    fn tables() -> RouteTables {
        // Leaf s0 (hosts 0,1), leaf s1 (hosts 2,3), roots s2 and s3.
        let mut b = TopologyBuilder::new(4);
        let s0 = b.add_switch(4, 1);
        let s1 = b.add_switch(4, 1);
        let s2 = b.add_switch(4, 0);
        let s3 = b.add_switch(4, 0);
        for h in 0..2 {
            b.attach_host(NodeId(h), s0, h as usize);
            b.attach_host(NodeId(h + 2), s1, h as usize);
        }
        b.connect(s0, 2, s2, 0);
        b.connect(s0, 3, s3, 0);
        b.connect(s1, 2, s2, 1);
        b.connect(s1, 3, s3, 1);
        RouteTables::build(&b.build())
    }

    #[test]
    fn header_clock_marks_completion() {
        let pkt = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(3), 4, 4).build());
        let mut clock = HeaderClock::default();
        clock.on_arrival(&Flit::new(pkt.clone(), 0), 10);
        assert_eq!(clock.done_at(pkt.id()), None, "header not complete yet");
        clock.on_arrival(&Flit::new(pkt.clone(), 1), 11);
        assert_eq!(clock.done_at(pkt.id()), Some(11));
        clock.forget(pkt.id());
        assert_eq!(clock.done_at(pkt.id()), None);
    }

    #[test]
    fn unicast_down_branch() {
        let t = tables();
        let pkt = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(1), 4, 4).build());
        let branches = resolve_branches(
            &pkt,
            t.table(SwitchId(0)),
            ReplicatePolicy::ReturnOnly,
            UpSelect::Deterministic,
            |_| 0,
        );
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].0, 1);
    }

    #[test]
    fn adaptive_prefers_low_metric_up_port() {
        let t = tables();
        let pkt = Rc::new(PacketBuilder::unicast(NodeId(0), NodeId(3), 4, 4).build());
        // Port 2 congested, port 3 free -> adaptive must pick 3.
        let branches = resolve_branches(
            &pkt,
            t.table(SwitchId(0)),
            ReplicatePolicy::ReturnOnly,
            UpSelect::Adaptive,
            |p| if p == 2 { 100 } else { 0 },
        );
        assert_eq!(branches[0].0, 3);
    }

    #[test]
    fn bitstring_branches_get_restricted_headers() {
        let t = tables();
        let dests = DestSet::from_nodes(4, [0, 1, 3].map(NodeId));
        let pkt = Rc::new(PacketBuilder::multicast(NodeId(2), dests, 8).build());
        // At root s2 everything is below: three host-port branches via leafs.
        let branches = resolve_branches(
            &pkt,
            t.table(SwitchId(2)),
            ReplicatePolicy::ReturnOnly,
            UpSelect::Deterministic,
            |_| 0,
        );
        assert_eq!(branches.len(), 2, "one per leaf switch");
        for (_, bp) in &branches {
            match bp.header() {
                RoutingHeader::BitString { dests } => assert!(!dests.is_empty()),
                other => panic!("unexpected {other:?}"),
            }
        }
        let covered: usize = branches
            .iter()
            .map(|(_, bp)| bp.header().dest_count().unwrap())
            .sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn return_only_multicast_goes_up_whole() {
        let t = tables();
        let dests = DestSet::from_nodes(4, [1, 2].map(NodeId));
        let pkt = Rc::new(PacketBuilder::multicast(NodeId(0), dests.clone(), 8).build());
        let branches = resolve_branches(
            &pkt,
            t.table(SwitchId(0)),
            ReplicatePolicy::ReturnOnly,
            UpSelect::Deterministic,
            |_| 0,
        );
        assert_eq!(branches.len(), 1, "no early branching under ReturnOnly");
        assert_eq!(branches[0].1.header().dest_count(), Some(2));
    }

    #[test]
    fn roundtrip_accepts_consistent_tables() {
        let t = tables();
        for sw in 0..4 {
            let table = t.table(SwitchId(sw));
            for policy in [
                ReplicatePolicy::ReturnOnly,
                ReplicatePolicy::ForwardAndReturn,
            ] {
                let dests = DestSet::from_nodes(4, [0, 2, 3].map(NodeId));
                let branches = verify_bitstring_roundtrip(table, &dests, policy)
                    .unwrap_or_else(|e| panic!("switch {sw}, {policy:?}: {e}"));
                let total: usize = branches.iter().map(|(_, s)| s.count()).sum();
                assert_eq!(total, 3);
            }
        }
    }

    #[test]
    fn roundtrip_rejects_empty_set() {
        let t = tables();
        let err = verify_bitstring_roundtrip(
            t.table(SwitchId(0)),
            &DestSet::empty(4),
            ReplicatePolicy::ReturnOnly,
        )
        .unwrap_err();
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn multiport_fans_out_and_consumes_mask() {
        let t = tables();
        let header = RoutingHeader::Multiport {
            masks: vec![PortMask::from_ports([0, 1]), PortMask::single(0)],
        };
        let pkt = Rc::new(PacketBuilder::new(NodeId(2), header, 8, 4).build());
        let branches = resolve_branches(
            &pkt,
            t.table(SwitchId(2)),
            ReplicatePolicy::ReturnOnly,
            UpSelect::Deterministic,
            |_| 0,
        );
        assert_eq!(branches.len(), 2);
        for (_, bp) in &branches {
            match bp.header() {
                RoutingHeader::Multiport { masks } => assert_eq!(masks.len(), 1),
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
