//! Pure, side-effect-free transition cores of the switch protocols.
//!
//! The chunk-allocate / replicate / credit-return logic of both switch
//! architectures lives here as plain value types with explicit
//! `step(state, event) -> (state, effect)` functions:
//!
//! * [`CqState`] / [`cq_step`] — central-queue space accounting with the
//!   descending-traffic reserve and per-class single-waiter reservation
//!   accumulators (paper §4: "a packet accepted for transmission can
//!   eventually be completely buffered");
//! * [`ReplState`] / [`repl_step`] — the shared writer of a packet stored
//!   once in the central queue, with per-chunk reference counts freed by
//!   the slowest branch (asynchronous replication);
//! * [`IbHeadState`] / [`ib_step`] — per-branch read cursors, grants, and
//!   FIFO credit recycle of the input-buffered head packet (paper §5).
//!
//! The live simulators ([`crate::CentralBufferSwitch`],
//! [`crate::InputBufferedSwitch`]) drive these cores through the mutating
//! convenience wrappers; the bounded model checker (`mdw-analysis`'s
//! `model` module) explores the very same transition functions over
//! abstract fabrics, and the trace-conformance replay re-applies recorded
//! [`netsim::trace::SemEvent`]s through them. All three agree by
//! construction — that is the point of the extraction.
//!
//! Every state type derives `Clone + PartialEq + Eq + Hash` so the model
//! checker can use it directly as a canonical hash key.

/// A pending full-packet reservation accumulating freed chunks.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResvSlot {
    /// Input port (or virtual input) that owns the accumulator.
    pub input: usize,
    /// Chunks the reservation needs in total.
    pub need: usize,
    /// Chunks accumulated so far.
    pub got: usize,
}

/// Central-queue space accounting with a descending-traffic reserve and one
/// reservation accumulator per traffic class.
///
/// * `reserve` chunks can never be consumed by *ascending* packets (those
///   arriving from hosts or children), so a descending packet — which is
///   guaranteed to drain toward the hosts — can always eventually buffer
///   here. This breaks the store-and-forward cycles a shared queue would
///   otherwise allow (see [`crate::config::SwitchConfig::cq_down_reserve`]).
/// * Each class has a single-waiter accumulator: the first worm of a class
///   that cannot reserve immediately claims freed chunks (descending
///   waiters first; ascending waiters only above the reserve floor) until
///   its demand is met, so streams of small packets cannot starve a large
///   worm and two worms never hold mutually blocking partial reservations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CqState {
    /// Total chunk capacity.
    pub capacity: usize,
    /// Chunks neither allocated nor accumulated by a waiter.
    pub free: usize,
    /// Floor of free chunks ascending packets may never dip below.
    pub reserve: usize,
    /// Accumulator of the waiting descending reservation, if any.
    pub resv_desc: Option<ResvSlot>,
    /// Accumulator of the waiting ascending reservation, if any.
    pub resv_asc: Option<ResvSlot>,
}

/// One input event of the central-queue accounting machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqEvent {
    /// Input `input` asks for the full-packet reservation of `need` chunks
    /// in the given traffic class.
    Reserve {
        /// Requesting input port (or virtual input).
        input: usize,
        /// Chunks the whole packet occupies.
        need: usize,
        /// `true` if the packet arrived through an up port (descending).
        descending: bool,
    },
    /// One chunk's last reader finished; route it to a waiter or the pool.
    Release,
}

/// The observable outcome of one [`cq_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CqEffect {
    /// The reservation was granted; the caller may start absorbing.
    Granted,
    /// The reservation is not (yet) granted; the caller must retry.
    Denied,
    /// A released chunk was routed (to a waiter or back to the pool).
    Released,
}

/// The pure transition function of the central-queue accounting machine.
///
/// # Panics
///
/// Panics on chunk over-release (more [`CqEvent::Release`]s than allocated
/// chunks) — a protocol violation, not a reachable state.
pub fn cq_step(state: &CqState, event: CqEvent) -> (CqState, CqEffect) {
    let mut s = state.clone();
    match event {
        CqEvent::Release => {
            if let Some(r) = &mut s.resv_desc {
                if r.got < r.need {
                    r.got += 1;
                    return (s, CqEffect::Released);
                }
            }
            if s.free >= s.reserve {
                if let Some(r) = &mut s.resv_asc {
                    if r.got < r.need {
                        r.got += 1;
                        return (s, CqEffect::Released);
                    }
                }
            }
            s.free += 1;
            assert!(
                s.free <= s.capacity,
                "central-queue chunk over-released past capacity"
            );
            (s, CqEffect::Released)
        }
        CqEvent::Reserve {
            input,
            need,
            descending,
        } => {
            let avail = if descending {
                s.free
            } else {
                s.free.saturating_sub(s.reserve)
            };
            let slot = if descending {
                &mut s.resv_desc
            } else {
                &mut s.resv_asc
            };
            let effect = match slot {
                Some(r) if r.input == input => {
                    if r.got == r.need {
                        *slot = None;
                        CqEffect::Granted
                    } else {
                        CqEffect::Denied
                    }
                }
                Some(_) => CqEffect::Denied,
                None => {
                    if avail >= need {
                        s.free -= need;
                        CqEffect::Granted
                    } else {
                        s.free -= avail;
                        *slot = Some(ResvSlot {
                            input,
                            need,
                            got: avail,
                        });
                        CqEffect::Denied
                    }
                }
            };
            (s, effect)
        }
    }
}

impl CqState {
    /// A pristine pool.
    ///
    /// # Panics
    ///
    /// Panics unless `capacity >= 2 * reserve` (the sizing rule
    /// [`crate::config::SwitchConfig::validate`] enforces).
    pub fn new(capacity: usize, reserve: usize) -> Self {
        assert!(capacity >= 2 * reserve, "validated by SwitchConfig");
        CqState {
            capacity,
            free: capacity,
            reserve,
            resv_desc: None,
            resv_asc: None,
        }
    }

    /// Chunks neither allocated nor accumulated by a waiter.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Chunks accumulated by the waiting reservations.
    pub fn waiter_held(&self) -> usize {
        self.resv_desc.as_ref().map_or(0, |r| r.got) + self.resv_asc.as_ref().map_or(0, |r| r.got)
    }

    /// Chunks holding (or reserved for) packet data.
    pub fn used(&self) -> usize {
        self.capacity - self.free - self.waiter_held()
    }

    /// Routes a freed chunk: descending waiter first, then (above the
    /// reserve floor) the ascending waiter, then the pool. Mutating wrapper
    /// over [`cq_step`].
    pub fn release_chunk(&mut self) {
        let (next, _) = cq_step(self, CqEvent::Release);
        *self = next;
    }

    /// Attempts the full-packet reservation for input `i` needing `need`
    /// chunks of the given class, via the class's accumulator. Mutating
    /// wrapper over [`cq_step`]; returns `true` on grant.
    pub fn try_reserve(&mut self, i: usize, need: usize, descending: bool) -> bool {
        let (next, effect) = cq_step(
            self,
            CqEvent::Reserve {
                input: i,
                need,
                descending,
            },
        );
        *self = next;
        effect == CqEffect::Granted
    }
}

/// Shared writer-side state of one packet stored once in the central
/// queue.
///
/// Branch readers never overtake `written` (cut-through at flit
/// granularity); chunk reference counts start at the branch fan-out and
/// the last reader frees the chunk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReplState {
    /// Total flits of the packet.
    pub total: u16,
    /// Flits absorbed so far.
    pub written: u16,
    /// Flits per central-queue chunk.
    pub chunk_flits: u16,
    /// Branch fan-out (0 until the routing decision fixes it).
    pub n_branches: u8,
    /// Remaining readers per chunk sequence number.
    pub refs: Vec<u8>,
}

/// One input event of the shared-writer / replication machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplEvent {
    /// The routing decision fixed the branch fan-out at `n`; chunks already
    /// written (absorption may precede decision) are fixed up.
    SetBranches(usize),
    /// One flit moved from staging into the central queue, allocating a
    /// fresh chunk first when the previous one is full.
    WriteFlit,
    /// One branch finished reading chunk `idx`.
    ReleaseChunk(usize),
}

/// The observable outcome of one [`repl_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplEffect {
    /// State updated; nothing for the caller to propagate.
    None,
    /// The write allocated a fresh chunk (space was pre-reserved).
    ChunkAllocated,
    /// The released chunk's last reader left; return it to the pool
    /// (a [`CqEvent::Release`] on the owning queue).
    ChunkFreed,
}

/// The pure transition function of the shared-writer machine.
///
/// # Panics
///
/// Panics on protocol violations: fan-out not fitting `u8`, writing past
/// `total`, or over-releasing a chunk.
pub fn repl_step(state: &ReplState, event: ReplEvent) -> (ReplState, ReplEffect) {
    let mut s = state.clone();
    match event {
        ReplEvent::SetBranches(n) => {
            let n = u8::try_from(n).expect("fan-out fits in u8");
            s.n_branches = n;
            for r in &mut s.refs {
                *r = n;
            }
            (s, ReplEffect::None)
        }
        ReplEvent::WriteFlit => {
            assert!(s.written < s.total, "write past end of packet");
            let allocated = s.needs_chunk();
            if allocated {
                s.refs.push(s.n_branches);
            }
            s.written += 1;
            (
                s,
                if allocated {
                    ReplEffect::ChunkAllocated
                } else {
                    ReplEffect::None
                },
            )
        }
        ReplEvent::ReleaseChunk(idx) => {
            let r = &mut s.refs[idx];
            assert!(*r > 0, "chunk {idx} over-released");
            *r -= 1;
            let freed = *r == 0;
            (
                s,
                if freed {
                    ReplEffect::ChunkFreed
                } else {
                    ReplEffect::None
                },
            )
        }
    }
}

impl ReplState {
    /// A fresh writer for a packet of `total` flits.
    pub fn new(total: u16, chunk_flits: u16) -> Self {
        ReplState {
            total,
            written: 0,
            chunk_flits,
            n_branches: 0,
            refs: Vec::new(),
        }
    }

    /// Builds the write state of a switch-synthesized packet: fully
    /// written, ready for its branches to stream.
    pub fn synthesized(total: u16, chunk_flits: u16, n_branches: usize) -> Self {
        let mut w = ReplState::new(total, chunk_flits);
        w.set_branches(n_branches);
        while w.written < w.total {
            w.write_flit();
        }
        w
    }

    /// `true` when writing the next flit requires allocating a fresh chunk.
    pub fn needs_chunk(&self) -> bool {
        self.written < self.total && self.written.is_multiple_of(self.chunk_flits)
    }

    /// Absorbs one flit (allocating a chunk when needed; space is
    /// guaranteed by the admission reservation). Mutating wrapper over
    /// [`repl_step`].
    pub fn write_flit(&mut self) {
        let (next, _) = repl_step(self, ReplEvent::WriteFlit);
        *self = next;
    }

    /// Sets the branch fan-out once the routing decision is made. Mutating
    /// wrapper over [`repl_step`].
    pub fn set_branches(&mut self, n: usize) {
        let (next, _) = repl_step(self, ReplEvent::SetBranches(n));
        *self = next;
    }

    /// One branch finished reading chunk `idx`; returns `true` if the
    /// chunk is now free. Mutating wrapper over [`repl_step`].
    pub fn release(&mut self, idx: usize) -> bool {
        let (next, effect) = repl_step(self, ReplEvent::ReleaseChunk(idx));
        *self = next;
        effect == ReplEffect::ChunkFreed
    }
}

/// Progress of one output branch of an input-buffered head packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BranchState {
    /// Output port the branch streams through.
    pub port: usize,
    /// Flits read (sent) by this branch.
    pub read: u16,
    /// The branch holds its output transmitter.
    pub granted: bool,
    /// The branch has streamed the whole packet.
    pub done: bool,
}

/// Pure state of the input-buffered head packet: per-branch read cursors,
/// grants, and the FIFO credit-recycle watermark.
///
/// Buffer space is recycled as the *slowest* branch advances: the flits
/// every branch has passed can never be read again, so their credits go
/// back upstream. Because the head packet always fits completely in its
/// buffer, an accepted packet can always be fully buffered — the paper's
/// deadlock-freedom condition for this architecture.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IbHeadState {
    /// Total flits of the head packet.
    pub total: u16,
    /// One entry per output branch of the routing decision.
    pub branches: Vec<BranchState>,
    /// Flits already recycled upstream (the previous min-read watermark).
    pub freed: u16,
}

/// One input event of the input-buffered head machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IbEvent {
    /// Branch `branch` won its output-port arbitration.
    Grant {
        /// Index into [`IbHeadState::branches`].
        branch: usize,
    },
    /// Branch `branch` streams one flit (asynchronous replication).
    ReadFlit {
        /// Index into [`IbHeadState::branches`].
        branch: usize,
    },
    /// Every branch streams one flit in lock-step (synchronous
    /// replication — the rejected alternative the checker shows deadlocks).
    ReadLockStep,
    /// Advance the credit-recycle watermark to the slowest branch.
    Recycle,
}

/// The observable outcome of one [`ib_step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IbEffect {
    /// State updated; nothing for the caller to propagate.
    None,
    /// These output ports' branches just finished; their transmitters are
    /// released.
    BranchesDone(Vec<usize>),
    /// Return this many credits upstream (freshly recycled buffer flits).
    Credits(u16),
}

/// The pure transition function of the input-buffered head machine.
///
/// # Panics
///
/// Panics on protocol violations: granting a granted/done branch, reading
/// past `total` or without a grant, or lock-step reading with diverged
/// cursors.
pub fn ib_step(state: &IbHeadState, event: IbEvent) -> (IbHeadState, IbEffect) {
    let mut s = state.clone();
    match event {
        IbEvent::Grant { branch } => {
            let b = &mut s.branches[branch];
            assert!(!b.granted && !b.done, "grant to a granted or done branch");
            b.granted = true;
            (s, IbEffect::None)
        }
        IbEvent::ReadFlit { branch } => {
            let total = s.total;
            let b = &mut s.branches[branch];
            assert!(b.granted && !b.done, "read without an active grant");
            assert!(b.read < total, "read past end of packet");
            b.read += 1;
            let effect = if b.read == total {
                b.done = true;
                IbEffect::BranchesDone(vec![b.port])
            } else {
                IbEffect::None
            };
            (s, effect)
        }
        IbEvent::ReadLockStep => {
            assert!(
                s.branches.iter().all(|b| b.granted && !b.done),
                "lock-step read requires every branch granted and live"
            );
            let read = s.branches[0].read;
            assert!(
                s.branches.iter().all(|b| b.read == read),
                "lock-step branches diverged"
            );
            assert!(read < s.total, "read past end of packet");
            let total = s.total;
            let mut done_ports = Vec::new();
            for b in &mut s.branches {
                b.read += 1;
                if b.read == total {
                    b.done = true;
                    done_ports.push(b.port);
                }
            }
            let effect = if done_ports.is_empty() {
                IbEffect::None
            } else {
                IbEffect::BranchesDone(done_ports)
            };
            (s, effect)
        }
        IbEvent::Recycle => {
            let min_read = s
                .branches
                .iter()
                .map(|b| b.read)
                .min()
                .expect("at least one branch");
            let newly = min_read - s.freed;
            s.freed = min_read;
            (s, IbEffect::Credits(newly))
        }
    }
}

impl IbHeadState {
    /// A freshly decoded head packet with branches on `ports`.
    pub fn new(total: u16, ports: impl IntoIterator<Item = usize>) -> Self {
        IbHeadState {
            total,
            branches: ports
                .into_iter()
                .map(|port| BranchState {
                    port,
                    read: 0,
                    granted: false,
                    done: false,
                })
                .collect(),
            freed: 0,
        }
    }

    /// Grants branch `branch` its output. Mutating wrapper over [`ib_step`].
    pub fn grant(&mut self, branch: usize) {
        let (next, _) = ib_step(self, IbEvent::Grant { branch });
        *self = next;
    }

    /// Streams one flit on branch `branch`; returns `true` when the branch
    /// just finished. Mutating wrapper over [`ib_step`].
    pub fn read_flit(&mut self, branch: usize) -> bool {
        let (next, effect) = ib_step(self, IbEvent::ReadFlit { branch });
        *self = next;
        matches!(effect, IbEffect::BranchesDone(_))
    }

    /// Streams one flit on every branch in lock-step; returns the ports of
    /// branches that just finished. Mutating wrapper over [`ib_step`].
    pub fn read_lockstep(&mut self) -> Vec<usize> {
        let (next, effect) = ib_step(self, IbEvent::ReadLockStep);
        *self = next;
        match effect {
            IbEffect::BranchesDone(ports) => ports,
            _ => Vec::new(),
        }
    }

    /// Advances the recycle watermark; returns the credits to send
    /// upstream. Mutating wrapper over [`ib_step`].
    pub fn recycle(&mut self) -> u16 {
        let (next, effect) = ib_step(self, IbEvent::Recycle);
        *self = next;
        match effect {
            IbEffect::Credits(n) => n,
            _ => 0,
        }
    }

    /// Every branch has streamed the whole packet.
    pub fn all_done(&self) -> bool {
        self.branches.iter().all(|b| b.done)
    }

    /// The slowest branch's read cursor (flits no longer re-readable).
    pub fn min_read(&self) -> u16 {
        self.branches
            .iter()
            .map(|b| b.read)
            .min()
            .expect("at least one branch")
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::CqState;

    #[test]
    fn immediate_grant_when_space_allows() {
        let mut cq = CqState::new(32, 8);
        // Descending can take everything.
        assert!(cq.try_reserve(0, 32, true));
        assert_eq!(cq.free(), 0);
        assert_eq!(cq.used(), 32);
    }

    #[test]
    fn ascending_respects_the_reserve_floor() {
        let mut cq = CqState::new(32, 8);
        // Ascending can use at most capacity - reserve = 24.
        assert!(cq.try_reserve(0, 24, false));
        assert_eq!(cq.free(), 8);
        // Next ascending worm must wait even though 8 chunks are free...
        assert!(!cq.try_reserve(1, 4, false));
        // ...but a descending worm takes them immediately.
        assert!(cq.try_reserve(2, 8, true));
        assert_eq!(cq.free(), 0);
    }

    #[test]
    fn descending_waiter_accumulates_first() {
        let mut cq = CqState::new(32, 8);
        assert!(cq.try_reserve(0, 32, true));
        // Descending waiter for 4 chunks.
        assert!(!cq.try_reserve(1, 4, true));
        // Ascending waiter for 2 chunks queues behind in its own class.
        assert!(!cq.try_reserve(2, 2, false));
        // Four releases feed the descending waiter exclusively.
        for _ in 0..4 {
            cq.release_chunk();
        }
        assert!(cq.try_reserve(1, 4, true), "descending waiter satisfied");
        // Further releases first refill free up to the reserve, then feed
        // the ascending waiter.
        for _ in 0..8 {
            cq.release_chunk();
        }
        assert_eq!(cq.free(), 8, "reserve refilled");
        assert!(!cq.try_reserve(2, 2, false), "still accumulating");
        cq.release_chunk();
        cq.release_chunk();
        assert!(cq.try_reserve(2, 2, false), "ascending waiter satisfied");
    }

    #[test]
    fn waiter_slots_are_single_occupancy_per_class() {
        let mut cq = CqState::new(32, 8);
        assert!(cq.try_reserve(0, 24, false));
        assert!(!cq.try_reserve(1, 4, false), "input 1 takes the slot");
        assert!(!cq.try_reserve(2, 4, false), "input 2 must wait for it");
        for _ in 0..4 {
            cq.release_chunk();
        }
        assert!(
            !cq.try_reserve(2, 4, false),
            "slot still belongs to input 1"
        );
        assert!(cq.try_reserve(1, 4, false), "owner collects");
        assert!(!cq.try_reserve(2, 4, false), "input 2 now owns the slot");
    }

    #[test]
    fn used_counts_waiter_holdings_as_not_used_data() {
        let mut cq = CqState::new(16, 4);
        assert!(cq.try_reserve(0, 10, true));
        assert!(!cq.try_reserve(1, 8, true)); // waiter grabs the free 6
        assert_eq!(cq.free(), 0);
        assert_eq!(cq.used(), 10, "waiter holdings are held, not data");
        cq.release_chunk();
        assert_eq!(cq.used(), 9);
    }
}

#[cfg(test)]
mod step_tests {
    use super::*;

    #[test]
    fn cq_step_is_pure() {
        let s0 = CqState::new(8, 2);
        let (s1, e1) = cq_step(
            &s0,
            CqEvent::Reserve {
                input: 0,
                need: 4,
                descending: false,
            },
        );
        assert_eq!(e1, CqEffect::Granted);
        assert_eq!(s0.free(), 8, "input state untouched");
        assert_eq!(s1.free(), 4);
        // Replaying the same event from the same state gives the same
        // result.
        let (s1b, e1b) = cq_step(
            &s0,
            CqEvent::Reserve {
                input: 0,
                need: 4,
                descending: false,
            },
        );
        assert_eq!((s1, e1), (s1b, e1b));
    }

    #[test]
    fn repl_refcounts_free_on_last_reader() {
        let mut w = ReplState::new(16, 8); // 2 chunks
        w.set_branches(3);
        for _ in 0..16 {
            w.write_flit();
        }
        assert_eq!(w.refs, vec![3, 3]);
        assert!(!w.release(0));
        assert!(!w.release(0));
        assert!(w.release(0), "last reader frees the chunk");
        assert!(!w.release(1));
        assert!(!w.release(1));
        assert!(w.release(1));
    }

    #[test]
    fn repl_synthesized_is_fully_written() {
        let w = ReplState::synthesized(20, 8, 2);
        assert_eq!(w.written, 20);
        assert_eq!(w.refs, vec![2, 2, 2]);
        assert!(!w.needs_chunk());
    }

    #[test]
    fn ib_head_recycles_at_the_slowest_branch() {
        let mut h = IbHeadState::new(4, [1, 3]);
        h.grant(0);
        h.grant(1);
        assert!(!h.read_flit(0));
        assert!(!h.read_flit(0));
        assert_eq!(h.recycle(), 0, "slowest branch has not moved");
        assert!(!h.read_flit(1));
        assert_eq!(h.recycle(), 1, "watermark follows the minimum");
        assert_eq!(h.freed, 1);
        for _ in 0..2 {
            h.read_flit(0);
        }
        for _ in 0..3 {
            h.read_flit(1);
        }
        assert!(h.all_done());
        assert_eq!(h.recycle(), 3, "remaining flits recycled");
    }

    #[test]
    fn ib_lockstep_finishes_all_branches_together() {
        let mut h = IbHeadState::new(2, [0, 2, 3]);
        for b in 0..3 {
            h.grant(b);
        }
        assert!(h.read_lockstep().is_empty());
        let done = h.read_lockstep();
        assert_eq!(done, vec![0, 2, 3]);
        assert!(h.all_done());
    }

    #[test]
    #[should_panic(expected = "over-released")]
    fn repl_over_release_panics() {
        let mut w = ReplState::new(8, 8);
        w.set_branches(1);
        for _ in 0..8 {
            w.write_flit();
        }
        w.release(0);
        w.release(0);
    }
}
