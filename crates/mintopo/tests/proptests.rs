//! Property-based tests for topology generation and routing invariants
//! across all three topology classes.

use mintopo::irregular::Irregular;
use mintopo::karytree::KaryTree;
use mintopo::route::{trace_bitstring, trace_unicast, ReplicatePolicy, RouteTables};
use mintopo::unimin::UniMin;
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use proptest::collection::btree_set;
use proptest::prelude::*;

fn karytree_params() -> impl Strategy<Value = (usize, usize)> {
    prop_oneof![
        (2usize..=4, 2usize..=3),
        Just((2, 4)), // 16 hosts, 4 stages
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Unicast routing on any k-ary n-tree reaches the destination in
    /// exactly `2·lca_stage + 1` switch hops, for a random pair.
    #[test]
    fn karytree_unicast_hops_match_lca(
        (k, n) in karytree_params(),
        seed in 0u64..1000,
    ) {
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts();
        let tables = RouteTables::build(tree.topology());
        let src = NodeId((seed % hosts as u64) as u32);
        let dst = NodeId(((seed / 7 + 1 + u64::from(src.0)) % hosts as u64) as u32);
        prop_assume!(src != dst);
        let path = trace_unicast(&tables, tree.topology(), src, dst, 64).unwrap();
        prop_assert_eq!(path.len(), 2 * tree.lca_stage(src, dst) + 1);
    }

    /// Bit-string replication on any k-ary n-tree covers exactly the set
    /// under both policies, and ForwardAndReturn never uses more branch
    /// hops than ReturnOnly.
    #[test]
    fn karytree_multicast_covers_exactly(
        (k, n) in karytree_params(),
        raw in btree_set(0u32..256, 1..20),
        src_raw in 0u32..256,
    ) {
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts() as u32;
        let src = NodeId(src_raw % hosts);
        let dests: Vec<NodeId> = raw
            .into_iter()
            .map(|d| NodeId(d % hosts))
            .filter(|&d| d != src)
            .collect();
        prop_assume!(!dests.is_empty());
        let dests = DestSet::from_nodes(hosts as usize, dests);
        let tables = RouteTables::build(tree.topology());
        let ro = trace_bitstring(
            &tables, tree.topology(), src, &dests, ReplicatePolicy::ReturnOnly, 64,
        ).unwrap();
        let fr = trace_bitstring(
            &tables, tree.topology(), src, &dests, ReplicatePolicy::ForwardAndReturn, 64,
        ).unwrap();
        prop_assert_eq!(&ro.delivered, &dests);
        prop_assert_eq!(&fr.delivered, &dests);
        prop_assert!(fr.branch_hops <= ro.branch_hops);
    }

    /// Every unicast in a butterfly crosses exactly `n` switches.
    #[test]
    fn unimin_paths_cross_all_stages(
        k in 2usize..=4,
        n in 2usize..=3,
        seed in 0u64..1000,
    ) {
        let min = UniMin::new(k, n);
        let hosts = min.n_hosts() as u64;
        let tables = RouteTables::build(min.topology());
        let src = NodeId((seed % hosts) as u32);
        let dst = NodeId(((seed * 31 + 5) % hosts) as u32);
        let path = trace_unicast(&tables, min.topology(), src, dst, 16).unwrap();
        prop_assert_eq!(path.len(), n);
    }

    /// Random irregular networks route all pairs and replicate multicasts
    /// exactly once per destination.
    #[test]
    fn irregular_routes_and_replicates(
        seed in 0u64..500,
        raw in btree_set(0u32..12, 1..8),
        src_raw in 0u32..12,
    ) {
        let net = Irregular::new(6, 8, 12, 3, seed);
        let tables = RouteTables::build(net.topology());
        let src = NodeId(src_raw);
        let dests: Vec<NodeId> = raw.into_iter().map(NodeId).filter(|&d| d != src).collect();
        prop_assume!(!dests.is_empty());
        for &d in &dests {
            trace_unicast(&tables, net.topology(), src, d, 32).unwrap();
        }
        let set = DestSet::from_nodes(12, dests);
        for policy in [ReplicatePolicy::ReturnOnly, ReplicatePolicy::ForwardAndReturn] {
            let trace = trace_bitstring(&tables, net.topology(), src, &set, policy, 32).unwrap();
            prop_assert_eq!(&trace.delivered, &set);
        }
    }

    /// Down-port reachability strings of any switch in a k-ary tree are
    /// pairwise disjoint, and every host is reachable from every switch.
    #[test]
    fn karytree_reach_strings_are_sound((k, n) in karytree_params(), sw_seed in 0usize..64) {
        use mintopo::reach::PortClass;
        let tree = KaryTree::new(k, n);
        let tables = RouteTables::build(tree.topology());
        let sw = netsim::ids::SwitchId::from(sw_seed % tree.topology().n_switches());
        let table = tables.table(sw);
        let mut seen = DestSet::empty(tree.n_hosts());
        for p in 0..table.n_ports() {
            let info = table.port(p);
            if info.class == PortClass::Down {
                prop_assert!(!seen.intersects(&info.reach), "overlapping down reach");
                seen.union_with(&info.reach);
            }
        }
        // Down union plus up coverage spans the system.
        if table.up_ports().is_empty() {
            prop_assert_eq!(seen.count(), tree.n_hosts(), "top stage covers all");
        } else {
            prop_assert!(seen.count() < tree.n_hosts());
        }
    }
}
