//! Property-based tests for topology generation and routing invariants
//! across all three topology classes.
//!
//! Driven by hand-rolled seeded case loops over [`SimRng`] streams (no
//! external property-testing crate), so sampled inputs are reproducible
//! from the constants below.

use mintopo::irregular::Irregular;
use mintopo::karytree::KaryTree;
use mintopo::route::{trace_bitstring, trace_unicast, ReplicatePolicy, RouteTables};
use mintopo::unimin::UniMin;
use netsim::destset::DestSet;
use netsim::ids::NodeId;
use netsim::rng::SimRng;

const CASES: u64 = 32;

fn case_rng(test: u64, case: u64) -> SimRng {
    SimRng::new(0x3070_0000 ^ test).fork(case)
}

/// Samples tree parameters (k, n) from the small shapes the suite covers.
fn karytree_params(r: &mut SimRng) -> (usize, usize) {
    match r.below(7) {
        0 => (2, 4), // 16 hosts, 4 stages
        i => (2 + (i - 1) % 3, 2 + (i - 1) / 3),
    }
}

/// Non-empty random destination set over `0..hosts` excluding `src`.
fn random_dests(r: &mut SimRng, hosts: usize, src: NodeId, max: usize) -> DestSet {
    let k = 1 + r.below(max.min(hosts - 1));
    r.dest_set(hosts, k, src)
}

/// Unicast routing on any k-ary n-tree reaches the destination in
/// exactly `2·lca_stage + 1` switch hops, for a random pair.
#[test]
fn karytree_unicast_hops_match_lca() {
    for case in 0..CASES {
        let mut r = case_rng(1, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts();
        let tables = RouteTables::build(tree.topology());
        let src = NodeId(r.below(hosts) as u32);
        let dst = r.other_node(hosts, src);
        let path = trace_unicast(&tables, tree.topology(), src, dst, 64).unwrap();
        assert_eq!(
            path.len(),
            2 * tree.lca_stage(src, dst) + 1,
            "case {case} (k={k}, n={n})"
        );
    }
}

/// Bit-string replication on any k-ary n-tree covers exactly the set
/// under both policies, and ForwardAndReturn never uses more branch
/// hops than ReturnOnly.
#[test]
fn karytree_multicast_covers_exactly() {
    for case in 0..CASES {
        let mut r = case_rng(2, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let hosts = tree.n_hosts();
        let src = NodeId(r.below(hosts) as u32);
        let dests = random_dests(&mut r, hosts, src, 19);
        let tables = RouteTables::build(tree.topology());
        let ro = trace_bitstring(
            &tables,
            tree.topology(),
            src,
            &dests,
            ReplicatePolicy::ReturnOnly,
            64,
        )
        .unwrap();
        let fr = trace_bitstring(
            &tables,
            tree.topology(),
            src,
            &dests,
            ReplicatePolicy::ForwardAndReturn,
            64,
        )
        .unwrap();
        assert_eq!(&ro.delivered, &dests, "case {case}");
        assert_eq!(&fr.delivered, &dests, "case {case}");
        assert!(fr.branch_hops <= ro.branch_hops, "case {case}");
    }
}

/// Every unicast in a butterfly crosses exactly `n` switches.
#[test]
fn unimin_paths_cross_all_stages() {
    for case in 0..CASES {
        let mut r = case_rng(3, case);
        let k = 2 + r.below(3);
        let n = 2 + r.below(2);
        let min = UniMin::new(k, n);
        let hosts = min.n_hosts();
        let tables = RouteTables::build(min.topology());
        let src = NodeId(r.below(hosts) as u32);
        let dst = NodeId(r.below(hosts) as u32);
        let path = trace_unicast(&tables, min.topology(), src, dst, 16).unwrap();
        assert_eq!(path.len(), n, "case {case} (k={k}, n={n})");
    }
}

/// Random irregular networks route all pairs and replicate multicasts
/// exactly once per destination.
#[test]
fn irregular_routes_and_replicates() {
    for case in 0..CASES {
        let mut r = case_rng(4, case);
        let seed = r.below(500) as u64;
        let net = Irregular::new(6, 8, 12, 3, seed);
        let tables = RouteTables::build(net.topology());
        let src = NodeId(r.below(12) as u32);
        let dests = random_dests(&mut r, 12, src, 7);
        for d in dests.iter() {
            trace_unicast(&tables, net.topology(), src, d, 32).unwrap();
        }
        for policy in [
            ReplicatePolicy::ReturnOnly,
            ReplicatePolicy::ForwardAndReturn,
        ] {
            let trace = trace_bitstring(&tables, net.topology(), src, &dests, policy, 32).unwrap();
            assert_eq!(&trace.delivered, &dests, "case {case} (seed {seed})");
        }
    }
}

/// Down-port reachability strings of any switch in a k-ary tree are
/// pairwise disjoint, and every host is reachable from every switch.
#[test]
fn karytree_reach_strings_are_sound() {
    use mintopo::reach::PortClass;
    for case in 0..CASES {
        let mut r = case_rng(5, case);
        let (k, n) = karytree_params(&mut r);
        let tree = KaryTree::new(k, n);
        let tables = RouteTables::build(tree.topology());
        let sw = netsim::ids::SwitchId::from(r.below(tree.topology().n_switches()));
        let table = tables.table(sw);
        let mut seen = DestSet::empty(tree.n_hosts());
        for p in 0..table.n_ports() {
            let info = table.port(p);
            if info.class == PortClass::Down {
                assert!(
                    !seen.intersects(&info.reach),
                    "case {case}: overlapping down reach"
                );
                seen.union_with(&info.reach);
            }
        }
        // Down union plus up coverage spans the system.
        if table.up_ports().is_empty() {
            assert_eq!(
                seen.count(),
                tree.n_hosts(),
                "case {case}: top stage covers all"
            );
        } else {
            assert!(seen.count() < tree.n_hosts(), "case {case}");
        }
    }
}
